//! The four case studies of §4, end to end.
//!
//! Each case study pairs:
//!
//! * the paper's verbatim natural-language query,
//! * the scenario it is asked in (see `toolkit::scenarios`),
//! * the registry configuration (CS1 withholds Xaminer's high-level
//!   abstractions, exactly as the paper's controlled setup does),
//! * the expert baseline workflow and its arguments.
//!
//! [`run_case_study`] runs ArachNet's pipeline on the query, executes both
//! the generated and the expert workflow against the same scenario, and
//! returns everything needed for comparison.

use std::collections::BTreeMap;
use std::sync::Arc;

use arachnet::{DeterministicExpertModel, Engine, GeneratedSolution};
use baselines::expert::{expert_args, expert_cs1, expert_cs2, expert_cs3, expert_cs4};
use registry::Registry;
use toolkit::{catalog, scenarios};
use workflow::{execute, ExecutionReport, Value, Workflow};

/// The four case studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseStudy {
    /// Level 1 — expert solution replication: cable impact.
    Cs1CableImpact,
    /// Level 1 — expert solution replication: multi-disaster restraint.
    Cs2DisasterImpact,
    /// Level 2 — multi-framework orchestration: cascading failures.
    Cs3CascadingFailure,
    /// Level 3 — forensic root-cause investigation.
    Cs4ForensicRca,
}

impl CaseStudy {
    /// All four, in paper order.
    pub const ALL: [CaseStudy; 4] = [
        CaseStudy::Cs1CableImpact,
        CaseStudy::Cs2DisasterImpact,
        CaseStudy::Cs3CascadingFailure,
        CaseStudy::Cs4ForensicRca,
    ];

    /// The paper's verbatim query.
    pub fn query(&self) -> &'static str {
        match self {
            CaseStudy::Cs1CableImpact => {
                "Identify the impact at a country level due to SeaMeWe-5 cable failure"
            }
            CaseStudy::Cs2DisasterImpact => {
                "Identify the impact of severe earthquakes and hurricanes globally assuming a \
                 10% infra failure probability"
            }
            CaseStudy::Cs3CascadingFailure => {
                "Analyze the cascading effects of submarine cable failures between Europe and \
                 Asia"
            }
            CaseStudy::Cs4ForensicRca => {
                "A sudden increase in latency was observed from European probes to Asian \
                 destinations starting three days ago. Determine if a submarine cable failure \
                 caused this, and if so, identify the specific cable."
            }
        }
    }

    /// Paper-reported generated-solution size, for EXPERIMENTS.md.
    pub fn paper_loc(&self) -> usize {
        match self {
            CaseStudy::Cs1CableImpact => 250,
            CaseStudy::Cs2DisasterImpact => 300,
            CaseStudy::Cs3CascadingFailure => 525,
            CaseStudy::Cs4ForensicRca => 750,
        }
    }

    /// Case-study index (1–4).
    pub fn index(&self) -> usize {
        match self {
            CaseStudy::Cs1CableImpact => 1,
            CaseStudy::Cs2DisasterImpact => 2,
            CaseStudy::Cs3CascadingFailure => 3,
            CaseStudy::Cs4ForensicRca => 4,
        }
    }

    /// The scenario the query is asked in.
    pub fn scenario(&self) -> world::Scenario {
        match self {
            CaseStudy::Cs1CableImpact => scenarios::cs1_scenario(),
            CaseStudy::Cs2DisasterImpact => scenarios::cs2_scenario(),
            CaseStudy::Cs3CascadingFailure => scenarios::cs3_scenario(),
            CaseStudy::Cs4ForensicRca => scenarios::cs4_scenario(),
        }
    }

    /// The registry configuration: CS1 withholds Xaminer's high-level
    /// abstraction to test independent derivation (the paper's setup);
    /// the others get the full catalog.
    pub fn registry(&self) -> Registry {
        match self {
            CaseStudy::Cs1CableImpact => catalog::restricted_registry(&["xaminer.event_impact"]),
            _ => catalog::standard_registry(),
        }
    }

    /// The expert baseline workflow.
    pub fn expert_workflow(&self) -> Workflow {
        match self {
            CaseStudy::Cs1CableImpact => expert_cs1(),
            CaseStudy::Cs2DisasterImpact => expert_cs2(),
            CaseStudy::Cs3CascadingFailure => expert_cs3(),
            CaseStudy::Cs4ForensicRca => expert_cs4(),
        }
    }
}

/// Everything a case-study run produces.
pub struct CaseStudyRun {
    pub case: CaseStudy,
    /// ArachNet's generated solution.
    pub solution: GeneratedSolution,
    /// Execution of the generated workflow.
    pub report: ExecutionReport,
    /// The expert baseline and its execution.
    pub expert_workflow: Workflow,
    pub expert_report: ExecutionReport,
    /// The registry used for generation.
    pub registry: Registry,
}

impl CaseStudyRun {
    /// The generated workflow's single declared output, parsed as `T`.
    pub fn output_as<T: serde::de::DeserializeOwned + Clone + 'static>(&self) -> Option<T> {
        self.report.outputs.values().next()?.parse().ok()
    }

    /// The expert workflow's single declared output, parsed as `T`.
    pub fn expert_output_as<T: serde::de::DeserializeOwned + Clone + 'static>(&self) -> Option<T> {
        self.expert_report.outputs.values().next()?.parse().ok()
    }
}

/// Builds a serving engine for one case study: the case's registry as
/// epoch 0 and its scenario registered under `cs<index>`.
pub fn case_study_engine(case: CaseStudy) -> Engine {
    let engine = Engine::new(Arc::new(DeterministicExpertModel::new()), case.registry());
    engine.register_scenario(&format!("cs{}", case.index()), case.scenario());
    engine
}

/// Runs a full case study: generate, execute, run the expert baseline —
/// through an engine session, so the generated and the expert workflow
/// share one artifact store.
pub fn run_case_study(case: CaseStudy) -> CaseStudyRun {
    let engine = case_study_engine(case);
    let session = engine
        .session(&format!("cs{}", case.index()))
        .expect("scenario registered at engine build time");
    let scenario = session.scenario();
    let horizon_days = scenario.horizon.duration().as_seconds() / 86_400;
    let context = catalog::query_context(&scenario.world, scenario.now, horizon_days);

    let run = session
        .run(case.query(), &context)
        .unwrap_or_else(|e| panic!("case study {} generation failed: {e}", case.index()));

    // The expert runs with the full catalog (experts are never restricted)
    // but against the same session-shared artifacts.
    let full_registry = catalog::standard_registry();
    let expert_workflow = case.expert_workflow();
    let expert_args: BTreeMap<String, Value> =
        expert_args(case.index(), scenario.now.seconds_since_epoch());
    let expert_report =
        execute(&expert_workflow, &full_registry, &session.runtime(), &expert_args);

    CaseStudyRun {
        case,
        solution: run.solution,
        report: run.report,
        expert_workflow,
        expert_report,
        registry: case.registry(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_and_paper_locs_are_stable() {
        assert!(CaseStudy::Cs1CableImpact.query().contains("SeaMeWe-5"));
        assert_eq!(CaseStudy::Cs4ForensicRca.paper_loc(), 750);
        assert_eq!(CaseStudy::ALL.len(), 4);
    }

    #[test]
    fn cs1_registry_is_restricted() {
        let r = CaseStudy::Cs1CableImpact.registry();
        assert!(!r.contains(&registry::FunctionId::from("xaminer.event_impact")));
        let r2 = CaseStudy::Cs2DisasterImpact.registry();
        assert!(r2.contains(&registry::FunctionId::from("xaminer.event_impact")));
    }
}
