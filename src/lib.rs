//! # arachnet-repro — the assembled reproduction
//!
//! Ties every crate together: given one of the paper's four case-study
//! queries, this crate generates the workflow with ArachNet, executes it
//! against the measurement substrates, runs the corresponding expert
//! baseline, and compares the two — the full evaluation loop of the
//! paper's §4.

pub mod case_studies;

pub use case_studies::{case_study_engine, run_case_study, CaseStudy, CaseStudyRun};
