//! PR-8 acceptance: campaigns end to end.
//!
//! A campaign over a base family plus both composed families — Monte
//! Carlo swept — must serve every scenario-query through the engine's
//! session pool, reduce to a `ResilienceScorecard`, and stamp each
//! result with a `ProvenanceRecord`; and the whole report must be
//! bit-identical at 1, 2 and 8 campaign workers.

use std::sync::Arc;

use arachnet::{DeterministicExpertModel, Engine, FaultKind, FaultPlan};
use campaign::{
    CampaignReport, CampaignRunner, CampaignSpec, ComposedFamily, EnsembleSpec, Family,
    FamilyParams,
};

const FORENSICS_QUERY: &str =
    "Multiple origin ASes were observed announcing the same prefixes starting two days \
     ago. Determine whether a prefix hijack or a route leak caused this, and identify \
     the offending AS.";

fn spec() -> CampaignSpec {
    let params = FamilyParams { variants: 2, ..FamilyParams::default() };
    CampaignSpec::new(
        vec![
            EnsembleSpec::new(Family::TargetedPrefixHijack, params.clone()).with_draws(2),
            EnsembleSpec::new(ComposedFamily::HijackDuringCascade, params.clone()),
            EnsembleSpec::new(ComposedFamily::CensorshipWithLeak, params),
        ],
        vec![FORENSICS_QUERY.to_string()],
    )
}

fn run_campaign(workers: usize, plan: Option<FaultPlan>) -> CampaignReport {
    let mut engine = Engine::new(
        Arc::new(DeterministicExpertModel::new()),
        toolkit::standard_registry(),
    );
    if let Some(plan) = plan {
        engine = engine.with_fault_plan(plan);
    }
    CampaignRunner::new(&engine).with_workers(workers).run(&spec())
}

#[test]
fn campaign_serves_composed_ensembles_with_provenance() {
    let report = run_campaign(workflow::exec::default_workers(), None);

    // 2 hijack draws × 2 variants + 2 composed fleets × 2 variants.
    assert_eq!(report.scorecard.queries, 8);
    assert_eq!(report.scorecard.failed, 0, "outcomes: {:#?}", report.outcomes);
    assert_eq!(report.registration.fresh, 8);
    assert_eq!(report.registration.mismatched, 0);

    // The hijack-carrying majority of the fleet trips the detectors.
    assert!(report.scorecard.detector_hits >= 6, "scorecard: {:?}", report.scorecard);
    assert!(report.scorecard.impact.max > 0.0, "impact distribution is populated");

    let hashes = report.provenance_hashes();
    let unique: std::collections::BTreeSet<u64> = hashes.iter().copied().collect();
    assert_eq!(unique.len(), hashes.len(), "every scenario-query has its own identity");
    for outcome in &report.outcomes {
        let p = &outcome.provenance;
        assert!(p.scenario_key.starts_with(&format!("{}/d{}/", p.family, p.draw)));
        assert_eq!(p.fault_seed, None);
        assert_eq!(p.query_hash, report.outcomes[0].provenance.query_hash, "one query");
    }

    // Monte Carlo draws swept the world: draw 1 runs on a different
    // world than draw 0 of the same family.
    let world_of = |draw: u64| {
        report
            .outcomes
            .iter()
            .find(|o| o.provenance.family == "targeted-prefix-hijack" && o.provenance.draw == draw)
            .map(|o| o.provenance.world_hash)
    };
    assert_ne!(world_of(0), world_of(1), "reseeded draws decorrelate worlds");
}

#[test]
fn campaign_reports_are_worker_count_invariant() {
    let base = run_campaign(1, None);
    for workers in [2usize, 8] {
        let other = run_campaign(workers, None);
        assert_eq!(base.outcomes, other.outcomes, "{workers} workers: outcomes diverged");
        assert_eq!(base.scorecard, other.scorecard, "{workers} workers: scorecard diverged");
        assert_eq!(base.provenance_hashes(), other.provenance_hashes());
    }
}

#[test]
fn faulted_campaigns_degrade_deterministically() {
    let plan = || FaultPlan::new(7).with_fault("bgp.valley_violations", FaultKind::Persistent);
    let base = run_campaign(1, Some(plan()));

    // The outage degrades forensics runs instead of failing the campaign,
    // and the scorecard surfaces the blast radius.
    assert_eq!(base.scorecard.failed, 0, "scorecard: {:?}", base.scorecard);
    assert!(base.scorecard.degraded > 0, "scorecard: {:?}", base.scorecard);
    assert!(base.scorecard.degraded_rate > 0.0);
    for outcome in &base.outcomes {
        assert_eq!(outcome.provenance.fault_seed, Some(7));
    }

    // Degraded serving replays bit-identically across worker counts too.
    for workers in [2usize, 8] {
        let other = run_campaign(workers, Some(plan()));
        assert_eq!(base.outcomes, other.outcomes, "{workers} workers (faulted)");
        assert_eq!(base.scorecard, other.scorecard);
    }
}
