//! Cross-crate integration tests: the four case studies end to end —
//! generation, validation, execution, and comparison against the expert
//! baselines. These are the paper's §4 claims as assertions.

use arachnet_repro::{run_case_study, CaseStudy};
use baselines::metrics;
use toolkit::data::{CountryTableData, TimelineData, VerdictData};

#[test]
fn cs1_direct_pipeline_matches_expert_outputs() {
    let run = run_case_study(CaseStudy::Cs1CableImpact);

    // The controlled setup worked: the generated workflow avoids the
    // withheld high-level abstraction and derives the direct pipeline.
    let functions: Vec<&str> =
        run.solution.workflow.steps.iter().map(|s| s.function.0.as_str()).collect();
    assert!(!functions.contains(&"xaminer.event_impact"));
    for expected in [
        "nautilus.map_links",
        "nautilus.dependency_table",
        "nautilus.resolve_cable",
        "util.cable_failure_event",
        "xaminer.process_event",
        "xaminer.impact_report",
        "xaminer.country_aggregate",
    ] {
        assert!(functions.contains(&expected), "missing {expected}");
    }

    // Both workflows execute cleanly.
    assert!(run.report.all_ok(), "generated failed: {:?}", run.report.qa);
    assert!(run.expert_report.all_ok());

    // Similar impact metrics despite the architectural difference.
    let generated: CountryTableData = run.output_as().expect("table");
    let expert: CountryTableData = run.expert_output_as().expect("table");
    let sim = metrics::country_table_similarity(&generated, &expert);
    assert!(sim.jaccard > 0.8, "affected-country jaccard {:.2}", sim.jaccard);
    if let Some(rho) = sim.spearman {
        assert!(rho > 0.8, "rank correlation {rho:.2}");
    }
    assert!(sim.top5_overlap >= 0.6, "top-5 overlap {:.2}", sim.top5_overlap);
}

#[test]
fn cs2_restraint_single_capability() {
    let run = run_case_study(CaseStudy::Cs2DisasterImpact);
    assert!(run.report.all_ok());

    // Exactly one distinct analysis capability, from one framework,
    // despite the full multi-framework catalog being available.
    let mut analysis: Vec<&str> = run
        .solution
        .workflow
        .steps
        .iter()
        .map(|s| s.function.0.as_str())
        .filter(|f| {
            ["nautilus.", "xaminer.", "bgp.", "traceroute."]
                .iter()
                .any(|p| f.starts_with(p))
        })
        .collect();
    analysis.sort();
    analysis.dedup();
    assert_eq!(analysis, vec!["xaminer.event_impact"], "restraint violated");

    // Alternatives were actually explored (adaptive exploration ran).
    assert!(run.solution.architecture.alternatives_considered >= 2);

    // Output functionally identical to the expert's.
    let generated: CountryTableData = run.output_as().expect("table");
    let expert: CountryTableData = run.expert_output_as().expect("table");
    let sim = metrics::country_table_similarity(&generated, &expert);
    assert_eq!(sim.jaccard, 1.0, "CS2 outputs should be identical");
}

#[test]
fn cs3_four_framework_orchestration() {
    let run = run_case_study(CaseStudy::Cs3CascadingFailure);
    assert!(run.report.all_ok(), "qa: {:?}", run.report.qa);

    let frameworks: Vec<&str> = run
        .solution
        .frameworks
        .iter()
        .map(|s| s.as_str())
        .filter(|f| ["nautilus", "xaminer", "bgp", "traceroute"].contains(f))
        .collect();
    assert_eq!(frameworks.len(), 4, "got {frameworks:?}");

    // The unified timeline spans physical, routing and data-plane layers.
    let timeline: TimelineData = run.output_as().expect("timeline");
    assert!(timeline.events.len() >= 3);
    for layer in ["cable", "routing"] {
        assert!(
            timeline.layers.iter().any(|l| l == layer),
            "timeline misses layer {layer}: {:?}",
            timeline.layers
        );
    }

    // Strong structural agreement with the expert workflow.
    let overlap = metrics::function_overlap(&run.solution.workflow, &run.expert_workflow);
    assert!(overlap > 0.7, "function overlap {overlap:.2}");
}

#[test]
fn cs4_forensics_identify_the_culprit() {
    let run = run_case_study(CaseStudy::Cs4ForensicRca);
    assert!(run.report.all_ok(), "qa: {:?}", run.report.qa);

    let verdict: VerdictData = run.output_as().expect("verdict");
    assert!(verdict.cable_caused, "narrative: {}", verdict.narrative);
    assert_eq!(
        verdict.cable.as_deref(),
        Some(toolkit::scenarios::CS4_CULPRIT),
        "wrong culprit: {}",
        verdict.narrative
    );
    assert!(verdict.confidence > 0.5);

    // Expert agrees.
    let expert: VerdictData = run.expert_output_as().expect("verdict");
    assert_eq!(expert.cable, verdict.cable);
}

#[test]
fn cs4_negative_control_declines_to_blame() {
    use arachnet::{ArachNet, DeterministicExpertModel};
    use toolkit::{catalog, scenarios, StandardRuntime};

    let scenario = scenarios::cs4_negative_scenario();
    let registry = catalog::standard_registry();
    let context = catalog::query_context(&scenario.world, scenario.now, 14);
    let model = DeterministicExpertModel::new();
    let system = ArachNet::new(&model, registry.clone());
    let solution = system
        .generate(CaseStudy::Cs4ForensicRca.query(), &context)
        .expect("generation succeeds");
    let runtime = StandardRuntime::new(scenario);
    let report =
        workflow::execute(&solution.workflow, &registry, &runtime, &solution.query_args());
    let verdict: VerdictData = report
        .outputs
        .values()
        .next()
        .and_then(|v| v.parse().ok())
        .expect("verdict output");
    assert!(
        !verdict.cable_caused,
        "congestion must not be blamed on a cable: {}",
        verdict.narrative
    );
}

#[test]
fn generated_loc_ordering_tracks_the_paper() {
    // The paper's sizes: CS1 ≈250 < CS2 ≈300 < CS3 ≈525 < CS4 ≈750. Our
    // renderer is more compact, but complexity ordering must hold for the
    // multi-framework studies relative to the single-framework ones.
    let locs: Vec<usize> = CaseStudy::ALL
        .iter()
        .map(|&c| run_case_study(c).solution.loc)
        .collect();
    assert!(locs[2] > locs[0], "CS3 ({}) must exceed CS1 ({})", locs[2], locs[0]);
    assert!(locs[2] > locs[1], "CS3 ({}) must exceed CS2 ({})", locs[2], locs[1]);
    assert!(locs[3] > locs[1], "CS4 ({}) must exceed CS2 ({})", locs[3], locs[1]);
    for (i, &loc) in locs.iter().enumerate() {
        assert!(loc > 60, "CS{} rendered only {loc} lines", i + 1);
    }
}
