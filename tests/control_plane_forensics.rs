//! PR-5 acceptance: control-plane incidents end to end.
//!
//! A hijack scenario registered through `Engine::register_family` must
//! produce MOAS-conflict detections in a *session-served* forensics
//! query, with the execution bit-identical across 1/2/8 executor
//! workers (the routing sweep itself is pinned worker-invariant by
//! `crates/bgp-sim/tests/dense_equivalence.rs`).

use std::sync::Arc;

use arachnet::{DeterministicExpertModel, Engine, FamilyScenario, SessionRun};
use llm::protocol::QueryContext;
use toolkit::catalog;
use toolkit::data::{ControlPlaneReportData, CountryTableData};

const FORENSICS_QUERY: &str =
    "Multiple origin ASes were observed announcing the same prefixes starting two days \
     ago. Determine whether a prefix hijack or a route leak caused this, and identify \
     the offending AS.";

fn hijack_engine(workers: usize) -> (Engine, Vec<FamilyScenario>) {
    let engine = Engine::new(
        Arc::new(DeterministicExpertModel::new()),
        catalog::standard_registry(),
    )
    .with_exec_workers(workers);
    let fleet = engine.register_family(
        arachnet::Family::TargetedPrefixHijack,
        &arachnet::FamilyParams::default(),
    );
    (engine, fleet)
}

fn serve(workers: usize) -> (String, SessionRun) {
    let (engine, fleet) = hijack_engine(workers);
    let key = fleet[0].key.clone();
    let session = engine.session(&key).expect("fleet registered");
    let scenario = session.scenario();
    let horizon_days = scenario.horizon.duration().as_seconds() / 86_400;
    let context: QueryContext =
        catalog::query_context(&scenario.world, scenario.now, horizon_days);
    let run = session.run(FORENSICS_QUERY, &context).expect("forensics query serves");
    (key, run)
}

#[test]
fn family_registered_hijack_serves_a_forensics_query_with_moas_detections() {
    let (key, run) = serve(workflow::exec::default_workers());
    assert!(key.starts_with("targeted-prefix-hijack/"), "family key: {key}");
    assert!(run.report.all_ok(), "qa: {:?}", run.report.qa);

    // The generated workflow runs the control-plane detectors.
    let functions: Vec<&str> =
        run.solution.workflow.steps.iter().map(|s| s.function.0.as_str()).collect();
    assert!(functions.contains(&"bgp.detect_moas"), "workflow: {functions:?}");
    assert!(functions.contains(&"bgp.valley_violations"), "workflow: {functions:?}");
    assert!(functions.contains(&"util.attribute_control_plane"), "workflow: {functions:?}");

    // The MOAS detector found the hijack and the attribution names an
    // offender with a real capture cone.
    let moas = run
        .report
        .results
        .iter()
        .find(|(id, _)| id.0.contains("detect_moas"))
        .and_then(|(_, r)| r.value())
        .expect("moas step executed");
    let conflicts: Vec<bgp_sim::MoasConflict> = moas.parse().expect("conflicts parse");
    assert!(!conflicts.is_empty(), "the hijack must surface as MOAS conflicts");

    let report = run
        .report
        .results
        .iter()
        .find(|(id, _)| id.0.contains("attribute_control_plane"))
        .and_then(|(_, r)| r.value())
        .expect("attribution step executed");
    let attribution: ControlPlaneReportData = report.parse().expect("report parses");
    assert_eq!(attribution.kind, "prefix-hijack");
    assert!(attribution.offender.is_some(), "an offender is identified");
    assert!(attribution.confidence > 0.5);

    // The declared output is the misdirection impact table.
    let table: CountryTableData = run
        .report
        .outputs
        .values()
        .next()
        .expect("one declared output")
        .parse()
        .expect("impact table parses");
    assert!(!table.rows.is_empty(), "the capture cone touches some countries");
}

#[test]
fn forensics_serving_is_bit_identical_across_worker_counts() {
    let (_, base) = serve(1);
    for workers in [2usize, 8] {
        let (_, run) = serve(workers);
        assert_eq!(
            run.solution.source_code, base.solution.source_code,
            "{workers} workers: generated solution diverged"
        );
        assert_eq!(run.report, base.report, "{workers} workers: execution diverged");
    }
}
