//! Property-based tests on substrate invariants, spanning crates.

use proptest::prelude::*;

use net_model::{GeoPoint, Ipv4Addr, Ipv4Net, SimTime, TimeWindow};

proptest! {
    /// Haversine is a metric-like function: non-negative, symmetric, zero
    /// on identity, and bounded by half the Earth's circumference.
    #[test]
    fn haversine_metric_properties(
        lat1 in -90.0f64..90.0, lon1 in -180.0f64..180.0,
        lat2 in -90.0f64..90.0, lon2 in -180.0f64..180.0,
    ) {
        let a = GeoPoint::new(lat1, lon1).unwrap();
        let b = GeoPoint::new(lat2, lon2).unwrap();
        let d_ab = a.distance_km(&b);
        let d_ba = b.distance_km(&a);
        prop_assert!(d_ab >= 0.0);
        prop_assert!((d_ab - d_ba).abs() < 1e-6);
        prop_assert!(a.distance_km(&a) < 1e-6);
        prop_assert!(d_ab <= 20_039.0 + 1.0, "longer than half the circumference: {d_ab}");
        // Fiber latency is monotone in distance and above the physical floor.
        prop_assert!(a.fiber_latency_ms(&b) >= a.min_fiber_latency_ms(&b) - 1e-9);
    }

    /// Prefix containment and overlap are consistent: covering implies
    /// overlapping; containment of an address implies overlap with its /32.
    #[test]
    fn prefix_relations_consistent(addr in any::<u32>(), len1 in 0u8..=32, len2 in 0u8..=32) {
        let p1 = Ipv4Net::new(Ipv4Addr(addr), len1).unwrap();
        let p2 = Ipv4Net::new(Ipv4Addr(addr), len2).unwrap();
        // Same base address: the shorter prefix covers the longer.
        let (wide, narrow) = if len1 <= len2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(wide.covers(&narrow));
        prop_assert!(wide.overlaps(&narrow) && narrow.overlaps(&wide));
        prop_assert!(wide.contains(narrow.network()));
    }

    /// Time-window bucketing partitions the window exactly.
    #[test]
    fn window_buckets_partition(start in -1_000_000i64..1_000_000, len in 1i64..1_000_000, n in 1usize..50) {
        let w = TimeWindow::new(SimTime(start), SimTime(start + len));
        let buckets = w.buckets(n);
        prop_assert_eq!(buckets.len(), n);
        prop_assert_eq!(buckets[0].start, w.start);
        prop_assert_eq!(buckets[n - 1].end, w.end);
        for pair in buckets.windows(2) {
            prop_assert_eq!(pair[0].end, pair[1].start);
        }
    }

    /// Deterministic Bernoulli draws are monotone in probability: any asset
    /// failing at probability p also fails at every p' ≥ p... which holds
    /// because the draw compares one fixed hash against the threshold.
    #[test]
    fn failure_draws_monotone_in_probability(
        seed in any::<u64>(), event in any::<u64>(), asset in any::<u64>(),
        p1 in 0.0f64..1.0, p2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        if world::events::fails(seed, event, asset, lo) {
            prop_assert!(world::events::fails(seed, event, asset, hi));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// More failed cables can never shrink the failed-link set (cascade
    /// monotonicity at the scenario level).
    #[test]
    fn more_cuts_never_less_impact(extra in 0usize..3) {
        use net_model::SimDuration;
        use world::{generate, EventKind, Scenario, WorldConfig};
        let world = generate(&WorldConfig::default());
        let at = net_model::SimTime::EPOCH + SimDuration::days(1);
        let mut base = Scenario::quiet(world.clone(), 5);
        base.push_event(EventKind::CableCut { cable: world.cables[0].id }, at, None);
        let mut more = base.clone();
        for k in 0..extra {
            more.push_event(EventKind::CableCut { cable: world.cables[k + 1].id }, at, None);
        }
        let base_down = base.links_down_at(at);
        let more_down = more.links_down_at(at);
        prop_assert!(base_down.is_subset(&more_down));
    }

    /// Xaminer impact reports always carry normalized scores, regardless
    /// of which cable fails.
    #[test]
    fn impact_scores_always_normalized(cable_idx in 0usize..25) {
        use world::{generate, WorldConfig};
        use xaminer_sim::{FailureEvent, XaminerEngine};
        let world = generate(&WorldConfig::default());
        let engine = XaminerEngine::oracle(&world);
        let cable = world.cables[cable_idx].id;
        let report = engine.impact_report(&FailureEvent::CableFailure { cable });
        for c in &report.per_country {
            prop_assert!((0.0..=1.0).contains(&c.impact_score));
            prop_assert!((0.0..=1.0).contains(&c.link_fraction));
        }
        // Sorted by score, descending.
        for w in report.per_country.windows(2) {
            prop_assert!(w[0].impact_score >= w[1].impact_score);
        }
    }
}
