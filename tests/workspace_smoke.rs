//! Workspace bring-up smoke test: every paper case study (§4, CS1–CS4)
//! must run the full loop — generate with ArachNet, execute against the
//! measurement substrates, run the expert baseline — and come back with a
//! non-trivial, clean result. This is the "the 14-crate workspace
//! actually works end to end" gate.

use arachnet_repro::{run_case_study, CaseStudy};

#[test]
fn all_four_case_studies_run_end_to_end() {
    for case in CaseStudy::ALL {
        let run = run_case_study(case);
        let cs = case.index();

        // The generated workflow is non-empty and rendered to real source.
        assert!(
            !run.solution.workflow.steps.is_empty(),
            "CS{cs}: generated workflow has no steps"
        );
        assert!(
            run.solution.loc > 0,
            "CS{cs}: rendered solution has no source lines"
        );
        assert!(
            !run.solution.frameworks.is_empty(),
            "CS{cs}: solution integrates no frameworks"
        );

        // Both the generated and the expert workflow execute cleanly.
        assert!(
            run.report.all_ok(),
            "CS{cs}: generated workflow execution failed: {:?}",
            run.report.results
        );
        assert!(
            run.expert_report.all_ok(),
            "CS{cs}: expert workflow execution failed: {:?}",
            run.expert_report.results
        );

        // Execution produced at least one declared output.
        assert!(
            !run.report.outputs.is_empty(),
            "CS{cs}: generated workflow produced no outputs"
        );
        assert!(
            !run.expert_workflow.steps.is_empty(),
            "CS{cs}: expert baseline has no steps"
        );
    }
}

#[test]
fn case_study_generation_is_deterministic() {
    // Two independent runs of the same case study must agree exactly —
    // the whole reproduction is seeded and replayable.
    let a = run_case_study(CaseStudy::Cs1CableImpact);
    let b = run_case_study(CaseStudy::Cs1CableImpact);
    assert_eq!(a.solution.source_code, b.solution.source_code);
    assert_eq!(a.solution.loc, b.solution.loc);
    assert_eq!(
        a.report.outputs.keys().collect::<Vec<_>>(),
        b.report.outputs.keys().collect::<Vec<_>>()
    );
}
