//! Property-based tests on the pipeline's cross-crate invariants.

use std::collections::BTreeMap;

use proptest::prelude::*;

use arachnet::{ArachNet, DeterministicExpertModel};
use llm::protocol::QueryContext;
use toolkit::catalog;
use workflow::check;

/// Queries assembled from the domain vocabulary: whatever the user asks,
/// a generated workflow must always typecheck against the registry.
fn arbitrary_query() -> impl Strategy<Value = String> {
    let verbs = prop_oneof![
        Just("Identify the impact of"),
        Just("Analyze the cascading effects of"),
        Just("Determine if a submarine cable failure caused"),
        Just("Assess the resilience risk of"),
    ];
    let subjects = prop_oneof![
        Just("SeaMeWe-5 cable failure"),
        Just("AAE-1 cable failure"),
        Just("severe earthquakes globally assuming a 7% infra failure probability"),
        Just("hurricanes near coastal landing stations"),
        Just("submarine cable failures between Europe and Asia"),
        Just("a sudden increase in latency from European probes starting two days ago"),
    ];
    let scopes = prop_oneof![
        Just(" at a country level"),
        Just(" for major content providers"),
        Just(""),
    ];
    (verbs, subjects, scopes).prop_map(|(v, s, sc)| format!("{v} {s}{sc}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every successfully generated workflow passes static validation and
    /// renders to deterministic, non-trivial source.
    #[test]
    fn generated_workflows_always_typecheck(query in arbitrary_query()) {
        let registry = catalog::standard_registry();
        let context = QueryContext {
            cable_names: vec!["SeaMeWe-5".into(), "AAE-1".into(), "FALCON".into()],
            now: 10 * 86_400,
            horizon_days: 10,
        };
        let model = DeterministicExpertModel::new();
        let system = ArachNet::new(&model, registry.clone());
        // Some queries may be unplannable (that is a legitimate outcome);
        // the invariant applies to every solution that IS produced.
        if let Ok(solution) = system.generate(&query, &context) {
            let errors = check(&solution.workflow, &registry);
            prop_assert!(errors.is_empty(), "query {query:?}: {errors:?}");
            prop_assert!(solution.loc > 40);
            let again = system.generate(&query, &context).expect("deterministic");
            prop_assert_eq!(solution.source_code, again.source_code);
        }
    }

    /// Conflict resolution is total over non-empty claim sets with positive
    /// reliability, and confidence is a valid probability.
    #[test]
    fn conflict_resolution_is_total(
        verdicts in proptest::collection::vec(0u8..4, 1..8),
        reliabilities in proptest::collection::vec(0.05f64..1.0, 8),
    ) {
        use arachnet::conflict::{resolve, Claim};
        let claims: Vec<Claim> = verdicts
            .iter()
            .enumerate()
            .map(|(i, v)| Claim {
                source: format!("s{i}"),
                reliability: reliabilities[i % reliabilities.len()],
                verdict: format!("v{v}"),
            })
            .collect();
        let r = resolve(&claims).expect("non-empty positive claims resolve");
        prop_assert!(r.confidence > 0.0 && r.confidence <= 1.0);
        prop_assert_eq!(r.conflicted, claims.iter().any(|c| c.verdict != r.verdict));
    }
}

/// The registry JSON round-trip preserves every entry (serde stability of
/// the whole catalog, including curated composites).
#[test]
fn full_catalog_roundtrips_through_json() {
    let registry = catalog::standard_registry();
    let json = registry.to_json().expect("serializes");
    let back = registry::Registry::from_json(&json).expect("parses");
    assert_eq!(back.len(), registry.len());
    for entry in registry.iter() {
        let other = back.get(&entry.id).expect("entry survives");
        assert_eq!(other, entry);
    }
}

/// Query arguments resolved by QueryMind always satisfy the generated
/// workflow's declared argument set.
#[test]
fn provided_args_cover_workflow_requirements() {
    let registry = catalog::standard_registry();
    let context = QueryContext {
        cable_names: vec!["SeaMeWe-5".into()],
        now: 10 * 86_400,
        horizon_days: 10,
    };
    let model = DeterministicExpertModel::new();
    let system = ArachNet::new(&model, registry);
    let solution = system
        .generate(
            "Identify the impact at a country level due to SeaMeWe-5 cable failure",
            &context,
        )
        .expect("generation succeeds");
    let args: BTreeMap<_, _> = solution.query_args();
    for (name, _) in solution.workflow.query_args() {
        assert!(args.contains_key(&name), "unresolved query arg {name}");
    }
}
