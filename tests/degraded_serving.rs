//! PR-7 acceptance: resilient serving end to end.
//!
//! A session over `cs5_hijack_scenario` with an injected *persistent*
//! `bgp.valley_violations` failure must complete with
//! `health = Degraded` — the valley detector is non-critical enrichment
//! — and still return the MOAS detections that identify the hijack.
//! With a *transient* fault and a retry budget instead, the same query
//! must ride through to a healthy run. Both behaviors are bit-identical
//! across 1/2/8 executor workers.

use std::sync::Arc;

use arachnet::{
    DeterministicExpertModel, Engine, FaultKind, FaultPlan, RetryPolicy, RunHealth, SessionRun,
};
use llm::protocol::QueryContext;
use toolkit::{catalog, scenarios};
use workflow::StepResult;

const FORENSICS_QUERY: &str =
    "Multiple origin ASes were observed announcing the same prefixes starting two days \
     ago. Determine whether a prefix hijack or a route leak caused this, and identify \
     the offending AS.";

fn serve(workers: usize, plan: FaultPlan, retry: RetryPolicy) -> SessionRun {
    let engine = Engine::new(
        Arc::new(DeterministicExpertModel::new()),
        catalog::standard_registry(),
    )
    .with_exec_workers(workers)
    .with_fault_plan(plan)
    .with_retry_policy(retry);
    engine.register_scenario("cs5", scenarios::cs5_hijack_scenario());
    let session = engine.session("cs5").expect("cs5 registered");
    let scenario = session.scenario();
    let horizon_days = scenario.horizon.duration().as_seconds() / 86_400;
    let context: QueryContext =
        catalog::query_context(&scenario.world, scenario.now, horizon_days);
    session.run(FORENSICS_QUERY, &context).expect("query serves despite the fault")
}

fn valley_outage() -> FaultPlan {
    FaultPlan::new(1).with_fault("bgp.valley_violations", FaultKind::Persistent)
}

#[test]
fn persistent_valley_failure_degrades_but_keeps_moas_detections() {
    let run = serve(workflow::exec::default_workers(), valley_outage(), RetryPolicy::default());

    // The run degrades instead of failing: the only failed step is the
    // (non-critical) valley detector.
    assert!(run.health.is_degraded(), "health: {:?}", run.health);
    let failed = run.health.failed_steps();
    assert_eq!(failed.len(), 1, "failed steps: {failed:?}");
    assert!(failed[0].0.contains("valley"), "failed steps: {failed:?}");

    // MOAS detections survive — "detector unavailable" is not "no
    // anomaly".
    let moas = run
        .report
        .results
        .iter()
        .find(|(id, _)| id.0.contains("detect_moas"))
        .and_then(|(_, r)| r.value())
        .expect("moas step executed");
    let conflicts: Vec<bgp_sim::MoasConflict> = moas.parse().expect("conflicts parse");
    assert!(!conflicts.is_empty(), "the hijack still surfaces as MOAS conflicts");

    // Everything downstream of the valley detector is poisoned and
    // attributes its root cause to the valley step alone.
    for (id, result) in &run.report.results {
        if let StepResult::Poisoned { failed_dependencies } = result {
            assert_eq!(failed_dependencies, failed, "{id}: wrong root attribution");
        }
    }
    assert!(run.report.poisoned > 0, "attribution depends on the valley detector");
}

#[test]
fn degraded_serving_is_bit_identical_across_worker_counts() {
    let base = serve(1, valley_outage(), RetryPolicy::default());
    for workers in [2usize, 8] {
        let run = serve(workers, valley_outage(), RetryPolicy::default());
        assert_eq!(run.report, base.report, "{workers} workers: degraded run diverged");
        assert_eq!(run.health, base.health);
    }
}

#[test]
fn transient_valley_failure_rides_through_on_retries() {
    let flaky = FaultPlan::new(2).with_fault("bgp.valley_violations", FaultKind::Transient {
        failures: 2,
    });
    // Without a retry budget the transient outage still degrades the run...
    let starved = serve(4, flaky.clone(), RetryPolicy::default());
    assert!(starved.health.is_degraded(), "health: {:?}", starved.health);
    // ...with one, the session serves a fully healthy report.
    let run = serve(4, flaky, RetryPolicy::with_retries(2));
    assert_eq!(run.health, RunHealth::Ok, "qa: {:?}", run.report.qa);
    assert!(run.report.all_ok());
    assert_eq!(run.report.retries, 2);
}
