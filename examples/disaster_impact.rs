//! Case study 2 — multi-disaster what-if analysis, demonstrating
//! architectural restraint: the agent is offered every framework but must
//! recognize that Xaminer's single event-processing capability covers the
//! whole problem.
//!
//! ```text
//! cargo run --release --example disaster_impact
//! ```

use arachnet_repro::{run_case_study, CaseStudy};
use toolkit::data::CountryTableData;

fn main() {
    let run = run_case_study(CaseStudy::Cs2DisasterImpact);

    println!("query: {}", run.case.query());
    println!(
        "\nexploration: {} alternatives considered",
        run.solution.architecture.alternatives_considered
    );
    println!("chosen architecture:");
    for step in &run.solution.workflow.steps {
        println!("  {} = {}  ({})", step.id, step.function, step.rationale);
    }

    let analysis: Vec<&str> = run
        .solution
        .workflow
        .steps
        .iter()
        .map(|s| s.function.0.as_str())
        .filter(|f| {
            ["nautilus.", "xaminer.", "bgp.", "traceroute."]
                .iter()
                .any(|p| f.starts_with(p))
        })
        .collect();
    let mut distinct = analysis.clone();
    distinct.sort();
    distinct.dedup();
    println!(
        "\nrestraint check: {} analysis invocation(s) of {} distinct capability(ies): {:?}",
        analysis.len(),
        distinct.len(),
        distinct
    );

    let table: CountryTableData = run.output_as().expect("combined impact table");
    println!("\nglobal impact (earthquakes + hurricanes at 10%):");
    println!("{:<8} {:>8} {:>8}", "country", "score", "links");
    for row in table.rows.iter().take(12) {
        println!("{:<8} {:>8.3} {:>8}", row.country, row.impact_score, row.links_affected);
    }
}
