//! RegistryCurator in action, epoch-style: run workflows, mine the
//! successful ones for reusable patterns, validate, and publish the grown
//! registry as a **new epoch** — while a session opened before curation
//! keeps executing against its pinned snapshot, never blocked, never
//! observing a half-curated registry.
//!
//! ```text
//! cargo run --release --example registry_evolution
//! ```

use std::sync::Arc;

use arachnet::{DeterministicExpertModel, Engine};
use arachnet_repro::CaseStudy;
use toolkit::{catalog, scenarios};

fn main() {
    let engine = Engine::new(
        Arc::new(DeterministicExpertModel::new()),
        catalog::standard_registry(),
    );
    engine.register_scenario("cs2", scenarios::cs2_scenario());

    let old_session = engine.session("cs2").expect("scenario registered");
    let scenario = old_session.scenario();
    let context = catalog::query_context(&scenario.world, scenario.now, 10);

    let query = CaseStudy::Cs2DisasterImpact.query();
    let before = old_session.generate(query, &context).expect("generation succeeds");
    println!(
        "epoch {}: {} steps, registry has {} entries",
        old_session.epoch_sequence(),
        before.workflow.steps.len(),
        old_session.registry().len()
    );

    // Simulate a history of successful runs, then curate. `curate` takes
    // `&self`: it builds the next registry off-line and swaps the epoch.
    let corpus = vec![before.summary(true), before.summary(true), before.summary(true)];
    let outcome = engine.curate(&corpus, 2).expect("curation succeeds");
    println!("\ncurator proposals:");
    let current = engine.registry();
    for added in &outcome.added {
        let entry = current.get(added).expect("registered");
        println!("  + {added}: {}", entry.capability);
    }
    for (pattern, why) in outcome.rejected.iter().take(5) {
        println!("  - rejected {pattern}: {why}");
    }

    // The old session still pins the pre-curation snapshot...
    println!(
        "\nold session still pins epoch {} ({} entries) — in-flight work is undisturbed",
        old_session.epoch_sequence(),
        old_session.registry().len()
    );
    // ...while a fresh session sees the published epoch.
    let new_session = engine.session("cs2").expect("scenario registered");
    let after = new_session.generate(query, &context).expect("generation succeeds");
    println!(
        "new session pins epoch {}: {} steps (was {}), registry has {} entries",
        new_session.epoch_sequence(),
        after.workflow.steps.len(),
        before.workflow.steps.len(),
        new_session.registry().len()
    );
    println!("\nnew workflow:");
    for step in &after.workflow.steps {
        println!("  {} = {}", step.id, step.function);
    }
}
