//! RegistryCurator in action: run workflows, mine the successful ones for
//! reusable patterns, validate, grow the registry, and regenerate — the
//! paper's "systematic registry evolution".
//!
//! ```text
//! cargo run --release --example registry_evolution
//! ```

use arachnet::{ArachNet, DeterministicExpertModel};
use arachnet_repro::CaseStudy;
use toolkit::{catalog, scenarios};

fn main() {
    let scenario = scenarios::cs2_scenario();
    let context = catalog::query_context(&scenario.world, scenario.now, 10);
    let model = DeterministicExpertModel::new();
    let mut system = ArachNet::new(&model, catalog::standard_registry());

    let query = CaseStudy::Cs2DisasterImpact.query();
    let before = system.generate(query, &context).expect("generation succeeds");
    println!("before curation: {} steps, registry has {} entries",
        before.workflow.steps.len(),
        system.registry().len());

    // Simulate a history of successful runs.
    let corpus = vec![before.summary(true), before.summary(true), before.summary(true)];
    let outcome = system.curate(&corpus, 2).expect("curation succeeds");
    println!("\ncurator proposals:");
    for added in &outcome.added {
        let entry = system.registry().get(added).expect("registered");
        println!("  + {added}: {}", entry.capability);
    }
    for (pattern, why) in outcome.rejected.iter().take(5) {
        println!("  - rejected {pattern}: {why}");
    }

    let after = system.generate(query, &context).expect("generation succeeds");
    println!(
        "\nafter curation: {} steps (was {}), registry has {} entries",
        after.workflow.steps.len(),
        before.workflow.steps.len(),
        system.registry().len()
    );
    println!("\nnew workflow:");
    for step in &after.workflow.steps {
        println!("  {} = {}", step.id, step.function);
    }
}
