//! Trace forensics: replaying a degraded serve from its deterministic
//! trace.
//!
//! Serves the CS5 hijack-forensics query with a transient outage on
//! `bgp.valley_violations` behind a tight circuit breaker, with a
//! telemetry [`Recorder`] attached to the engine. The run completes
//! degraded; the trace then tells the whole story without re-running
//! anything: which attempts the fault hit, when the breaker tripped,
//! which calls were shed, and where the half-open probe failed — all on
//! the logical clock, so the same plan produces the same bytes on every
//! machine.
//!
//! The example prints the event taxonomy and the span tree, then writes
//! a Chrome `trace_event` export (load it in `chrome://tracing` or
//! Perfetto) next to your temp directory.
//!
//! ```text
//! cargo run --release --example trace_forensics
//! ```

use std::sync::Arc;

use arachnet::{
    DeterministicExpertModel, Engine, EventKind, FaultKind, FaultPlan, Recorder, RetryPolicy,
    SpanKind,
};
use toolkit::{catalog, scenarios, BreakerConfig, ResilienceConfig};

fn main() {
    println!("trace forensics: one degraded serve, fully replayable from its trace\n");

    let recorder = Arc::new(Recorder::new());
    let engine = Engine::new(
        Arc::new(DeterministicExpertModel::new()),
        catalog::standard_registry(),
    )
    .with_fault_plan(
        FaultPlan::new(7)
            .with_fault("bgp.valley_violations", FaultKind::Transient { failures: 10 }),
    )
    .with_resilience(ResilienceConfig::new(BreakerConfig {
        trip_after: 2,
        cooldown_invocations: 2,
    }))
    .with_retry_policy(RetryPolicy::with_retries(4))
    .with_recorder(Arc::clone(&recorder));

    engine.register_scenario("cs5", scenarios::cs5_hijack_scenario());
    let session = engine.session("cs5").expect("cs5 registered");
    let scenario = session.scenario();
    let horizon_days = scenario.horizon.duration().as_seconds() / 86_400;
    let context = catalog::query_context(&scenario.world, scenario.now, horizon_days);
    let run = session
        .run(scenarios::CS5_QUERY, &context)
        .expect("query serves despite faults");
    println!("health:     {:?}", run.health);
    println!(
        "steps:      {} executed, {} failed, {} retries ({} backoff tick(s))",
        run.report.executed, run.report.failed, run.report.retries, run.report.backoff_ticks
    );

    let trace = recorder.trace();
    println!("\nspan tree ({} spans on the logical clock):", trace.spans.len());
    for span in &trace.spans {
        let depth = match span.kind {
            SpanKind::Session => 0,
            SpanKind::Workflow => 1,
            SpanKind::Step => 2,
            SpanKind::Attempt => 3,
        };
        if depth < 3 || span.name == "bgp.valley_violations" {
            println!(
                "  {}[{:>3}..{:<3}] {} {} ({:?})",
                "  ".repeat(depth),
                span.start,
                span.end,
                span.kind.label(),
                span.name,
                span.status
            );
        }
    }

    println!("\nevent taxonomy:");
    let mut counts: std::collections::BTreeMap<&'static str, usize> =
        std::collections::BTreeMap::new();
    for event in &trace.events {
        *counts.entry(event.kind.label()).or_default() += 1;
    }
    for (label, count) in &counts {
        println!("  {count:>3} × {label}");
    }

    println!("\nbreaker story for bgp.valley_violations:");
    for event in &trace.events {
        match &event.kind {
            EventKind::FaultInjected { function, .. } if function == "bgp.valley_violations" => {
                println!("  t={:<3} fault injected", event.at)
            }
            EventKind::CallShed { function } if function == "bgp.valley_violations" => {
                println!("  t={:<3} call shed (circuit open)", event.at)
            }
            EventKind::BreakerTransition { function, from, to }
                if function == "bgp.valley_violations" =>
            {
                println!("  t={:<3} breaker {from} → {to}", event.at)
            }
            _ => {}
        }
    }

    let snapshot = recorder.metrics_snapshot();
    println!("\nmetrics (events.* counters):");
    for counter in &snapshot.counters {
        if counter.name.starts_with("events.") {
            println!("  {:>3} × {}", counter.value, counter.name);
        }
    }

    let path = std::env::temp_dir().join("trace_forensics.chrome.json");
    std::fs::write(&path, recorder.chrome_trace()).expect("temp dir is writable");
    println!("\ntrace hash:   {:#018x}", recorder.trace_hash());
    println!("chrome trace: {} (open in chrome://tracing or Perfetto)", path.display());
    println!("\nSame plan, same trace bytes — rerun to verify bit-for-bit.");
}
