//! Case study 4 — automated root-cause investigation: was the latency
//! anomaly caused by a cable failure, and if so, which cable?
//!
//! Runs the positive scenario (a real cable cut three days before "now")
//! and the negative control (congestion with no infrastructure failure)
//! to show the workflow both identifies the culprit and declines to blame
//! a cable when none failed. Both scenarios serve from one engine, each
//! with its own shared artifact store.
//!
//! ```text
//! cargo run --release --example forensic_investigation
//! ```

use std::sync::Arc;

use arachnet::{DeterministicExpertModel, Engine};
use arachnet_repro::{run_case_study, CaseStudy};
use toolkit::data::VerdictData;
use toolkit::{catalog, scenarios};

fn main() {
    // Positive case: SeaMeWe-4 fails three days before the query.
    let run = run_case_study(CaseStudy::Cs4ForensicRca);
    println!("query: {}", run.case.query());
    let verdict: VerdictData = run.output_as().expect("forensic verdict");
    println!("\n--- scenario with a real cable cut ---");
    println!("cable_caused: {}", verdict.cable_caused);
    println!("identified:   {:?}", verdict.cable);
    println!("confidence:   {:.2}", verdict.confidence);
    println!("narrative:    {}", verdict.narrative);
    println!(
        "ground truth: {} (identified {})",
        scenarios::CS4_CULPRIT,
        if verdict.cable.as_deref() == Some(scenarios::CS4_CULPRIT) {
            "CORRECTLY"
        } else {
            "INCORRECTLY"
        }
    );

    // Negative control: the same query served against a congestion-only
    // scenario through an engine session.
    let engine = Engine::new(
        Arc::new(DeterministicExpertModel::new()),
        catalog::standard_registry(),
    );
    engine.register_scenario("cs4-negative", scenarios::cs4_negative_scenario());
    let session = engine.session("cs4-negative").expect("scenario registered");
    let scenario = session.scenario();
    let context = catalog::query_context(&scenario.world, scenario.now, 14);
    let negative_run = session
        .run(CaseStudy::Cs4ForensicRca.query(), &context)
        .expect("generation succeeds");
    let negative: VerdictData = negative_run
        .report
        .outputs
        .values()
        .next()
        .and_then(|v| v.parse().ok())
        .expect("verdict output");
    println!("\n--- negative control (congestion, no cut) ---");
    println!("cable_caused: {}", negative.cable_caused);
    println!("narrative:    {}", negative.narrative);
}
