//! Quickstart: stand up the serving engine, open a session, ask a
//! measurement question, get an executable workflow, run it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use arachnet::{DeterministicExpertModel, Engine};
use toolkit::{catalog, scenarios};

fn main() {
    // The engine owns the model and publishes the capability registry as
    // epoch 0; scenarios register once and their artifacts are shared by
    // every session.
    let engine = Engine::new(
        Arc::new(DeterministicExpertModel::new()),
        catalog::standard_registry(),
    );
    engine.register_scenario("quiet", scenarios::cs1_scenario());

    // A session pins the current registry epoch and the scenario.
    let session = engine.session("quiet").expect("scenario registered");
    let scenario = session.scenario();
    let context = catalog::query_context(&scenario.world, scenario.now, 10);

    // Natural-language in, executed workflow out.
    let query = "Identify the impact at a country level due to SeaMeWe-5 cable failure";
    let run = session.run(query, &context).expect("generation succeeds");

    println!("query: {query}\n");
    println!("epoch: {}", session.epoch_sequence());
    println!("intent: {:?}", run.solution.decomposition.intent);
    println!("sub-problems:");
    for sp in &run.solution.decomposition.sub_problems {
        println!("  - {} -> {}", sp.description, sp.target);
    }
    println!(
        "\nworkflow ({} steps, {} LoC rendered):",
        run.solution.workflow.steps.len(),
        run.solution.loc
    );
    for step in &run.solution.workflow.steps {
        println!("  {} = {}", step.id, step.function);
    }

    println!(
        "\nexecution: {} steps ok, {} failed",
        run.report.executed - run.report.failed,
        run.report.failed
    );
    for (id, value) in &run.report.outputs {
        let table: toolkit::data::CountryTableData =
            value.parse().expect("country table output");
        println!("\noutput {id}: top impacted countries");
        for row in table.rows.iter().take(5) {
            println!("  {}  score={:.3}  links={}", row.country, row.impact_score, row.links_affected);
        }
    }
}
