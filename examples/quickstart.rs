//! Quickstart: ask ArachNet a measurement question, get an executable
//! workflow, run it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use arachnet::{ArachNet, DeterministicExpertModel};
use toolkit::{catalog, scenarios, StandardRuntime};

fn main() {
    // A synthetic Internet and a quiet measurement scenario.
    let scenario = scenarios::cs1_scenario();
    let context = catalog::query_context(&scenario.world, scenario.now, 10);

    // The four-agent system over the standard capability registry.
    let model = DeterministicExpertModel::new();
    let system = ArachNet::new(&model, catalog::standard_registry());

    // Natural-language in, executable workflow out.
    let query = "Identify the impact at a country level due to SeaMeWe-5 cable failure";
    let solution = system.generate(query, &context).expect("generation succeeds");

    println!("query: {query}\n");
    println!("intent: {:?}", solution.decomposition.intent);
    println!("sub-problems:");
    for sp in &solution.decomposition.sub_problems {
        println!("  - {} -> {}", sp.description, sp.target);
    }
    println!("\nworkflow ({} steps, {} LoC rendered):", solution.workflow.steps.len(), solution.loc);
    for step in &solution.workflow.steps {
        println!("  {} = {}", step.id, step.function);
    }

    // Execute against the measurement substrates.
    let registry = catalog::standard_registry();
    let runtime = StandardRuntime::new(scenario);
    let report = workflow::execute(&solution.workflow, &registry, &runtime, &solution.query_args());
    println!("\nexecution: {} steps ok, {} failed", report.executed - report.failed, report.failed);
    for (id, value) in &report.outputs {
        let table: toolkit::data::CountryTableData =
            serde_json::from_value(value.value.clone()).expect("country table output");
        println!("\noutput {id}: top impacted countries");
        for row in table.rows.iter().take(5) {
            println!("  {}  score={:.3}  links={}", row.country, row.impact_score, row.links_affected);
        }
    }
}
