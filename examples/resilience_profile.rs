//! A fifth query family beyond the paper's case studies: country
//! resilience profiling ("How resilient is Singapore to cable
//! failures?"). Exercises the RiskAssessment intent end to end —
//! generation, execution, and the per-country concentration metrics.
//!
//! ```text
//! cargo run --release --example resilience_profile
//! ```

use arachnet::{ArachNet, DeterministicExpertModel};
use toolkit::{catalog, scenarios, StandardRuntime};

fn main() {
    let scenario = scenarios::cs1_scenario();
    let registry = catalog::standard_registry();
    let context = catalog::query_context(&scenario.world, scenario.now, 10);
    let model = DeterministicExpertModel::new();
    let system = ArachNet::new(&model, registry.clone());

    let query = "How resilient is Singapore to submarine cable failures?";
    let solution = system.generate(query, &context).expect("generation succeeds");
    println!("query: {query}");
    println!("intent: {:?}", solution.decomposition.intent);
    println!("workflow:");
    for step in &solution.workflow.steps {
        println!("  {} = {}", step.id, step.function);
    }

    let runtime = StandardRuntime::new(scenario);
    let report =
        workflow::execute(&solution.workflow, &registry, &runtime, &solution.query_args());
    assert!(report.all_ok(), "qa: {:?}", report.qa);

    let profiles: Vec<xaminer_sim::CountryRiskProfile> = report
        .outputs
        .values()
        .next()
        .and_then(|v| serde_json::from_value(v.value.clone()).ok())
        .expect("risk profiles output");

    println!("\nmost cable-dependent economies (by concentration):");
    println!("{:<24} {:>7} {:>8}   most critical system", "country", "links", "HHI");
    for p in profiles.iter().take(10) {
        let critical = p
            .most_critical
            .map(|c| scenario_name(&runtime, c))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<24} {:>7} {:>8.3}   {}",
            p.country.name(),
            p.submarine_links,
            p.concentration_hhi,
            critical
        );
    }

    if let Some(sg) = profiles.iter().find(|p| p.country.code() == "SG") {
        println!(
            "\nSingapore: {} submarine links across {} systems, concentration HHI {:.3}",
            sg.submarine_links,
            sg.cable_shares.len(),
            sg.concentration_hhi
        );
    }
}

fn scenario_name(runtime: &StandardRuntime, cable: net_model::CableId) -> String {
    runtime.scenario().world.cable(cable).name.clone()
}
