//! A fifth query family beyond the paper's case studies: country
//! resilience profiling ("How resilient is Singapore to cable
//! failures?"). Exercises the RiskAssessment intent end to end through an
//! engine session — generation, DAG execution, and the per-country
//! concentration metrics.
//!
//! ```text
//! cargo run --release --example resilience_profile
//! ```

use std::sync::Arc;

use arachnet::{DeterministicExpertModel, Engine};
use toolkit::{catalog, scenarios};

fn main() {
    let engine = Engine::new(
        Arc::new(DeterministicExpertModel::new()),
        catalog::standard_registry(),
    );
    engine.register_scenario("quiet", scenarios::cs1_scenario());
    let session = engine.session("quiet").expect("scenario registered");
    let scenario = session.scenario();
    let context = catalog::query_context(&scenario.world, scenario.now, 10);

    let query = "How resilient is Singapore to submarine cable failures?";
    let run = session.run(query, &context).expect("generation succeeds");
    println!("query: {query}");
    println!("intent: {:?}", run.solution.decomposition.intent);
    println!("workflow:");
    for step in &run.solution.workflow.steps {
        println!("  {} = {}", step.id, step.function);
    }
    assert!(run.report.all_ok(), "qa: {:?}", run.report.qa);

    let profiles: Vec<xaminer_sim::CountryRiskProfile> = run
        .report
        .outputs
        .values()
        .next()
        .and_then(|v| v.parse().ok())
        .expect("risk profiles output");

    println!("\nmost cable-dependent economies (by concentration):");
    println!("{:<24} {:>7} {:>8}   most critical system", "country", "links", "HHI");
    for p in profiles.iter().take(10) {
        let critical = p
            .most_critical
            .map(|c| scenario.world.cable(c).name.clone())
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<24} {:>7} {:>8.3}   {}",
            p.country.name(),
            p.submarine_links,
            p.concentration_hhi,
            critical
        );
    }

    if let Some(sg) = profiles.iter().find(|p| p.country.code() == "SG") {
        println!(
            "\nSingapore: {} submarine links across {} systems, concentration HHI {:.3}",
            sg.submarine_links,
            sg.cable_shares.len(),
            sg.concentration_hhi
        );
    }
}
