//! Case study 1 — expert solution replication under the paper's
//! controlled setup: Xaminer's high-level abstractions are withheld, so
//! the agent must derive a direct processing pipeline from core Nautilus
//! functions, then the output is compared with the expert's solution.
//!
//! ```text
//! cargo run --release --example cable_impact
//! ```

use arachnet_repro::{run_case_study, CaseStudy};
use baselines::metrics;
use toolkit::data::CountryTableData;

fn main() {
    let run = run_case_study(CaseStudy::Cs1CableImpact);

    println!("query: {}", run.case.query());
    println!("\ngenerated workflow ({} LoC):", run.solution.loc);
    for step in &run.solution.workflow.steps {
        println!("  {} = {}", step.id, step.function);
    }
    println!("\nexpert workflow:");
    for step in &run.expert_workflow.steps {
        println!("  {} = {}", step.id, step.function);
    }

    let overlap = metrics::function_overlap(&run.solution.workflow, &run.expert_workflow);
    println!("\nfunction overlap (architectural): {overlap:.2}");

    let generated: CountryTableData = run.output_as().expect("country table");
    let expert: CountryTableData = run.expert_output_as().expect("country table");
    let similarity = metrics::country_table_similarity(&generated, &expert);
    println!(
        "output similarity: jaccard={:.2} spearman={} top5={:.2}",
        similarity.jaccard,
        similarity.spearman.map(|s| format!("{s:.2}")).unwrap_or_else(|| "n/a".into()),
        similarity.top5_overlap
    );

    println!("\n{:<8} {:>8} {:>8} {:>8}   (generated)", "country", "score", "links", "ases");
    for row in generated.rows.iter().take(10) {
        println!(
            "{:<8} {:>8.3} {:>8} {:>8}",
            row.country, row.impact_score, row.links_affected, row.ases_affected
        );
    }
}
