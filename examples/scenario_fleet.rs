//! Scenario fleet: register every scenario family through the engine,
//! share worlds via the content-addressed cache, and serve one query
//! against every scenario in the fleet.
//!
//! ```text
//! cargo run --release --example scenario_fleet
//! ```

use std::sync::Arc;

use arachnet::{DeterministicExpertModel, Engine, Family, FamilyParams};
use toolkit::catalog;

fn main() {
    let engine = Engine::new(
        Arc::new(DeterministicExpertModel::new()),
        catalog::standard_registry(),
    );

    // Expand and register every family in one call per family. Two
    // variants per family keeps the demo quick; the fleet still spans
    // every family and several distinct world configs.
    let params = FamilyParams { variants: 2, ..FamilyParams::default() };
    let fleet = engine.register_families(&Family::ALL, &params);

    println!("scenario families ({}):", Family::ALL.len());
    for family in Family::ALL {
        println!("  {:<28} {}", family.id(), family.description());
    }
    println!(
        "\nfleet: {} scenarios over {} distinct worlds ({} generated — \
         cache deduplicated {} scenario-world bindings)",
        fleet.len(),
        engine.world_cache().len(),
        engine.world_cache().generations(),
        fleet.len() - engine.world_cache().generations(),
    );

    // Serve the same measurement question against every scenario. The
    // answers differ because the worlds and timelines differ — that is
    // the point of the forge.
    let query = "Identify the impact at a country level due to SeaMeWe-5 cable failure";
    println!("\nquery: {query}\n");
    for entry in &fleet {
        let session = engine.session(&entry.key).expect("fleet key registered");
        let scenario = session.scenario();
        let horizon_days = scenario.horizon.duration().as_seconds() / 86_400;
        let context = catalog::query_context(&scenario.world, scenario.now, horizon_days);
        let run = session.run(query, &context).expect("query serves");
        assert!(run.report.all_ok(), "qa findings: {:?}", run.report.qa);

        let top = run.report.outputs.iter().next().and_then(|(_, value)| {
            let table: toolkit::data::CountryTableData = value.parse().ok()?;
            table.rows.first().map(|r| format!("{} {:.3}", r.country, r.impact_score))
        });
        println!(
            "  {:<44} events={:<2} steps={} top=[{}]",
            entry.key,
            scenario.events.len(),
            run.solution.workflow.steps.len(),
            top.unwrap_or_else(|| "-".to_string()),
        );
    }
}
