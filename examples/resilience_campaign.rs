//! Resilience campaign: compose interacting incidents, sweep them as a
//! Monte Carlo ensemble, and serve the whole fleet of scenario-queries
//! through the engine, reduced to a scorecard with provenance.
//!
//! ```text
//! cargo run --release --example resilience_campaign
//! ```

use std::sync::Arc;

use arachnet::{DeterministicExpertModel, Engine, FaultKind, FaultPlan};
use campaign::{
    CampaignRunner, CampaignSpec, ComposedFamily, EnsembleSpec, Family, FamilyParams,
};
use toolkit::catalog;

const FORENSICS_QUERY: &str =
    "Multiple origin ASes were observed announcing the same prefixes starting two days \
     ago. Determine whether a prefix hijack or a route leak caused this, and identify \
     the offending AS.";

fn main() {
    // A campaign over one base family and both composed families, each
    // swept across three Monte Carlo draws (reseeded worlds + timelines).
    let params = FamilyParams { variants: 2, ..FamilyParams::default() };
    let spec = CampaignSpec::new(
        vec![
            EnsembleSpec::new(Family::TargetedPrefixHijack, params.clone()).with_draws(3),
            EnsembleSpec::new(ComposedFamily::HijackDuringCascade, params.clone()).with_draws(3),
            EnsembleSpec::new(ComposedFamily::CensorshipWithLeak, params).with_draws(3),
        ],
        vec![FORENSICS_QUERY.to_string()],
    );

    println!("composed families:");
    for family in ComposedFamily::ALL {
        let members: Vec<&str> = family.members().iter().map(|f| f.id()).collect();
        println!("  {:<24} = {:<40} ({})", family.id(), members.join(" + "), family.description());
    }

    let engine = Engine::new(
        Arc::new(DeterministicExpertModel::new()),
        catalog::standard_registry(),
    );
    let report = CampaignRunner::new(&engine).run(&spec);

    println!(
        "\ncampaign: {} scenario-queries over {} distinct worlds \
         ({} fresh registrations, {} mismatches)",
        report.scorecard.queries,
        engine.world_cache().len(),
        report.registration.fresh,
        report.registration.mismatched,
    );
    let card = &report.scorecard;
    println!(
        "scorecard: ok={} degraded={} failed={} | detector hit rate {:.0}% | \
         impact p50={:.3} p90={:.3} max={:.3}",
        card.ok,
        card.degraded,
        card.failed,
        card.detector_hit_rate * 100.0,
        card.impact.p50,
        card.impact.p90,
        card.impact.max,
    );

    println!("\nper-query provenance (first 6 of {}):", report.outcomes.len());
    for outcome in report.outcomes.iter().take(6) {
        let p = &outcome.provenance;
        println!(
            "  {:<36} scenario={:016x} world={:016x} draw={} epoch={} prov={:016x}",
            p.scenario_key,
            p.scenario_hash,
            p.world_hash,
            p.draw,
            p.registry_epoch,
            p.content_hash(),
        );
    }

    // The same campaign with an injected persistent detector outage: runs
    // degrade instead of failing, the scorecard says by how much, and
    // every provenance record carries the fault plan's seed.
    let plan = FaultPlan::new(7).with_fault("bgp.valley_violations", FaultKind::Persistent);
    let faulted_engine = Engine::new(
        Arc::new(DeterministicExpertModel::new()),
        catalog::standard_registry(),
    )
    .with_fault_plan(plan);
    let faulted = CampaignRunner::new(&faulted_engine).run(&spec);
    println!(
        "\nwith bgp.valley_violations persistently failed: ok={} degraded={} failed={} \
         (degraded rate {:.0}%, fault seed {:?})",
        faulted.scorecard.ok,
        faulted.scorecard.degraded,
        faulted.scorecard.failed,
        faulted.scorecard.degraded_rate * 100.0,
        faulted.outcomes[0].provenance.fault_seed,
    );
    assert_eq!(faulted.scorecard.failed, 0, "outages degrade, they don't fail the campaign");
}
