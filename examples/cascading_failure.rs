//! Case study 3 — multi-framework orchestration: cascading Europe–Asia
//! cable failures analysed across four measurement frameworks, fused into
//! one multi-layer timeline.
//!
//! ```text
//! cargo run --release --example cascading_failure
//! ```

use arachnet_repro::{run_case_study, CaseStudy};
use toolkit::data::TimelineData;

fn main() {
    let run = run_case_study(CaseStudy::Cs3CascadingFailure);

    println!("query: {}", run.case.query());
    let frameworks: Vec<&String> = run
        .solution
        .frameworks
        .iter()
        .filter(|f| ["nautilus", "xaminer", "bgp", "traceroute"].contains(&f.as_str()))
        .collect();
    println!(
        "\nintegrated measurement frameworks ({}): {:?}",
        frameworks.len(),
        frameworks
    );
    println!("workflow: {} steps, {} LoC", run.solution.workflow.steps.len(), run.solution.loc);

    let timeline: TimelineData = run.output_as().expect("unified timeline");
    println!(
        "\nunified cascade timeline ({} events, layers {:?}):",
        timeline.events.len(),
        timeline.layers
    );
    for e in &timeline.events {
        println!("  t={:>8}s  [{:^8}] {}", e.t, e.layer, e.description);
    }

    println!("\nexecution QA findings: {}", run.report.qa.len());
    for finding in run.report.qa.iter().take(5) {
        println!("  [{}] {:?}: {}", finding.step, finding.severity, finding.message);
    }
}
