//! Control-plane forensics end to end: a prefix hijack registered as a
//! scenario-family fleet, served through engine sessions.
//!
//! Three acts:
//!
//! 1. register the `targeted-prefix-hijack` family (worlds deduplicated
//!    through the process-wide content-addressed cache) and serve the
//!    forensics query against its first scenario — the generated
//!    workflow composes `bgp.updates → bgp.detect_moas /
//!    bgp.valley_violations → util.attribute_control_plane →
//!    xaminer.control_plane_impact`;
//! 2. the same query against the curated CS5 hijack scenario, with the
//!    ground-truth actors printed next to the attribution;
//! 3. the leak family, showing the same workflow attributing a
//!    route leak from valley violations instead of MOAS conflicts.
//!
//! ```text
//! cargo run --release --example hijack_forensics
//! ```

use std::sync::Arc;

use arachnet::{DeterministicExpertModel, Engine, Family, FamilyParams};
use toolkit::data::{ControlPlaneReportData, CountryTableData};
use toolkit::{catalog, scenarios};

fn serve(engine: &Engine, key: &str) -> (ControlPlaneReportData, CountryTableData) {
    let session = engine.session(key).expect("scenario registered");
    let scenario = session.scenario();
    let horizon_days = scenario.horizon.duration().as_seconds() / 86_400;
    let context = catalog::query_context(&scenario.world, scenario.now, horizon_days);
    let run = session.run(scenarios::CS5_QUERY, &context).expect("query serves");
    assert!(run.report.all_ok(), "qa: {:?}", run.report.qa);
    let attribution = run
        .report
        .results
        .iter()
        .find(|(id, _)| id.0.contains("attribute_control_plane"))
        .and_then(|(_, r)| r.value())
        .and_then(|v| v.parse().ok())
        .expect("attribution step ran");
    let table = run
        .report
        .outputs
        .values()
        .next()
        .and_then(|v| v.parse().ok())
        .expect("impact table output");
    (attribution, table)
}

fn print_report(label: &str, report: &ControlPlaneReportData, table: &CountryTableData) {
    println!("\n--- {label} ---");
    println!("kind:       {}", report.kind);
    println!("offender:   {:?}", report.offender.map(|a| format!("AS{a}")));
    println!(
        "evidence:   {} MOAS conflict(s), {} valley violation(s)",
        report.moas_conflicts, report.valley_violations
    );
    println!("confidence: {:.2}", report.confidence);
    println!("narrative:  {}", report.narrative);
    println!("misdirection impact (top countries):");
    for row in table.rows.iter().take(5) {
        println!(
            "  {}  ases_affected={:<3} score={:.3}",
            row.country, row.ases_affected, row.impact_score
        );
    }
}

fn main() {
    let engine = Engine::new(
        Arc::new(DeterministicExpertModel::new()),
        catalog::standard_registry(),
    );

    // Act 1: the hijack family fleet.
    let params = FamilyParams::default();
    let hijacks = engine.register_family(Family::TargetedPrefixHijack, &params);
    println!(
        "registered {} hijack scenario(s); engine requested {} distinct world(s)",
        hijacks.len(),
        engine.world_cache().generations()
    );
    let (report, table) = serve(&engine, &hijacks[0].key);
    assert_eq!(report.kind, "prefix-hijack");
    print_report(&format!("family scenario {}", hijacks[0].key), &report, &table);

    // Act 2: the curated CS5 scenario with ground truth.
    engine.register_scenario("cs5", scenarios::cs5_hijack_scenario());
    let (report, table) = serve(&engine, "cs5");
    let world = scenarios::standard_world();
    let (hijacker, victim_prefix) = scenarios::cs5_actors(&world);
    print_report("cs5 (curated)", &report, &table);
    println!(
        "ground truth: AS{} hijacking {} (identified {})",
        hijacker.0,
        victim_prefix,
        if report.offender == Some(hijacker.0) { "CORRECTLY" } else { "INCORRECTLY" }
    );
    assert_eq!(report.offender, Some(hijacker.0));

    // Act 3: the accidental transit leak family.
    let leaks = engine.register_family(Family::AccidentalTransitLeak, &params);
    let (report, table) = serve(&engine, &leaks[0].key);
    assert_eq!(report.kind, "route-leak");
    print_report(&format!("family scenario {}", leaks[0].key), &report, &table);

    println!(
        "\nengine worlds requested: {} (process-wide cache shared with the case studies)",
        engine.world_cache().generations()
    );
}
