//! Degraded forensics: resilient serving when a detector goes dark.
//!
//! Serves the CS5 hijack-forensics query three times against the same
//! engine configuration, varying only the (deterministic, seeded) fault
//! plan:
//!
//! 1. **healthy** — empty fault plan, `health = Ok`, full attribution;
//! 2. **degraded** — `bgp.valley_violations` fails persistently; the
//!    detector is non-critical, so the run completes with
//!    `health = Degraded`, the MOAS detections survive, and every
//!    downstream casualty names the valley step as its root cause;
//! 3. **recovered** — the same outage made transient, plus a retry
//!    budget: the session rides through and serves a healthy report,
//!    with the retries visible in the accounting.
//!
//! ```text
//! cargo run --release --example degraded_forensics
//! ```

use std::sync::Arc;

use arachnet::{
    DeterministicExpertModel, Engine, FaultKind, FaultPlan, RetryPolicy, RunHealth, SessionRun,
};
use toolkit::{catalog, scenarios};
use workflow::StepResult;

fn serve(plan: FaultPlan, retry: RetryPolicy) -> SessionRun {
    let engine = Engine::new(
        Arc::new(DeterministicExpertModel::new()),
        catalog::standard_registry(),
    )
    .with_fault_plan(plan)
    .with_retry_policy(retry);
    engine.register_scenario("cs5", scenarios::cs5_hijack_scenario());
    let session = engine.session("cs5").expect("cs5 registered");
    let scenario = session.scenario();
    let horizon_days = scenario.horizon.duration().as_seconds() / 86_400;
    let context = catalog::query_context(&scenario.world, scenario.now, horizon_days);
    session.run(scenarios::CS5_QUERY, &context).expect("query serves despite faults")
}

fn print_run(label: &str, run: &SessionRun) {
    println!("\n--- {label} ---");
    let health = match &run.health {
        RunHealth::Ok => "Ok".to_string(),
        RunHealth::Degraded { failed_steps } => {
            format!("Degraded ({} failed step(s))", failed_steps.len())
        }
        RunHealth::Failed { failed_steps } => {
            format!("Failed ({} failed step(s))", failed_steps.len())
        }
    };
    println!("health:   {health}");
    println!(
        "steps:    {} ok, {} failed, {} poisoned, {} retries ({} backoff tick(s))",
        run.report.executed - run.report.failed,
        run.report.failed,
        run.report.poisoned,
        run.report.retries,
        run.report.backoff_ticks,
    );
    for (id, result) in &run.report.results {
        match result {
            StepResult::Failed(e) => println!("  ✗ {id}: {e}"),
            StepResult::Poisoned { failed_dependencies } => {
                let roots: Vec<&str> =
                    failed_dependencies.iter().map(|d| d.0.as_str()).collect();
                println!("  ⊘ {id}: poisoned by {}", roots.join(", "));
            }
            StepResult::Ok(_) => {}
        }
    }
    if let Some(conflicts) = run
        .report
        .results
        .iter()
        .find(|(id, _)| id.0.contains("detect_moas"))
        .and_then(|(_, r)| r.value())
        .and_then(|v| v.parse::<Vec<bgp_sim::MoasConflict>>().ok())
    {
        println!("moas:     {} conflict(s) still detected", conflicts.len());
    }
}

fn main() {
    println!("degraded forensics: one query, three fault plans");

    let healthy = serve(FaultPlan::empty(), RetryPolicy::default());
    assert_eq!(healthy.health, RunHealth::Ok);
    print_run("healthy: empty fault plan", &healthy);

    let degraded = serve(
        FaultPlan::new(7).with_fault("bgp.valley_violations", FaultKind::Persistent),
        RetryPolicy::default(),
    );
    assert!(degraded.health.is_degraded());
    print_run("degraded: bgp.valley_violations persistently down", &degraded);

    let recovered = serve(
        FaultPlan::new(7).with_fault("bgp.valley_violations", FaultKind::Transient { failures: 2 }),
        RetryPolicy::with_retries(2),
    );
    assert_eq!(recovered.health, RunHealth::Ok);
    print_run("recovered: transient outage absorbed by the retry budget", &recovered);

    println!("\nSame seed, same plan, same report — rerun to verify bit-for-bit.");
}
