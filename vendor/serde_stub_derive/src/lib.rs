//! Minimal, dependency-free stand-ins for `serde_derive`'s `Serialize` /
//! `Deserialize` derives plus `serde_json`'s `json!` macro.
//!
//! The container has no network access to crates.io, so the real serde
//! stack cannot be fetched; this crate hand-parses the item token stream
//! (no `syn`/`quote`) and emits impls of the stub traits defined in the
//! vendored `serde` crate. Supported shapes are exactly what this
//! workspace uses: non-generic structs with named fields, tuple structs,
//! unit structs, and non-generic enums with unit / tuple / struct
//! variants. The only recognised field attribute is `#[serde(default)]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    default: bool,
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<Field>),
}

enum Item {
    NamedStruct(String, Vec<Field>),
    TupleStruct(String, usize),
    UnitStruct(String),
    Enum(String, Vec<Variant>),
}

/// True when an attribute token group (the `[...]` contents) is
/// `serde(default)`.
fn is_serde_default(group: &proc_macro::Group) -> bool {
    let mut it = group.stream().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(i)), Some(TokenTree::Group(inner))) if i.to_string() == "serde" => {
            inner.stream().into_iter().any(|t| matches!(t, TokenTree::Ident(ref d) if d.to_string() == "default"))
        }
        _ => false,
    }
}

/// Skips attributes at `i`, returning whether any was `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        default |= is_serde_default(g);
                        *i += 2;
                        continue;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    default
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// True when the token at `idx` is the `>` of a `->` arrow (the `-` is
/// emitted as a joint punct immediately before it).
fn is_arrow_gt(tokens: &[TokenTree], idx: usize) -> bool {
    idx > 0
        && matches!(&tokens[idx - 1], TokenTree::Punct(p)
            if p.as_char() == '-' && p.spacing() == proc_macro::Spacing::Joint)
}

/// Advances past type tokens up to (not including) a top-level `,`.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && !is_arrow_gt(tokens, *i) => {
                angle -= 1;
                assert!(angle >= 0, "serde stub derive: unbalanced `>` in field type");
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Parses `{ field: Ty, ... }` contents into named fields.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        // expect ':'
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde stub derive: expected `:` after field `{name}`"),
        }
        skip_type(&tokens, &mut i);
        // now at ',' or end
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        fields.push(Field { name: name.trim_start_matches("r#").to_string(), default });
    }
    fields
}

/// Counts tuple-struct / tuple-variant arity from `( ... )` contents.
fn tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle: i32 = 0;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && !is_arrow_gt(&tokens, idx) => {
                angle -= 1;
                assert!(angle >= 0, "serde stub derive: unbalanced `>` in tuple field type");
            }
            // a trailing comma does not start another element
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 && idx + 1 < tokens.len() => {
                arity += 1;
            }
            _ => {}
        }
    }
    arity
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Struct(name, parse_named_fields(g)));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                variants.push(Variant::Tuple(name, tuple_arity(g)));
                i += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // skip an optional discriminant and the separating comma
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic type `{name}` is not supported");
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct(name, parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct(name, tuple_arity(g))
            }
            _ => Item::UnitStruct(name),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(name, parse_variants(g))
            }
            other => panic!("serde stub derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct(name, fields) => {
            let mut body = String::from(
                "let mut __m = ::std::collections::BTreeMap::new();\n",
            );
            for f in fields {
                body.push_str(&format!(
                    "__m.insert(::std::string::String::from(\"{0}\"), ::serde::Serialize::serialize_json(&self.{0}));\n",
                    f.name
                ));
            }
            body.push_str("::serde::Value::Object(__m)");
            impl_serialize(name, &body)
        }
        Item::TupleStruct(name, 1) => {
            impl_serialize(name, "::serde::Serialize::serialize_json(&self.0)")
        }
        Item::TupleStruct(name, n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::serialize_json(&self.{k})"))
                .collect();
            impl_serialize(name, &format!("::serde::Value::Array(vec![{}])", elems.join(", ")))
        }
        Item::UnitStruct(name) => impl_serialize(name, "::serde::Value::Null"),
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Variant::Tuple(vn, n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize_json(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_json({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut __m = ::std::collections::BTreeMap::new();\n\
                             __m.insert(::std::string::String::from(\"{vn}\"), {inner});\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            binds = binds.join(", ")
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut __fm = ::std::collections::BTreeMap::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "__fm.insert(::std::string::String::from(\"{0}\"), ::serde::Serialize::serialize_json({0}));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             {inner}\
                             let mut __m = ::std::collections::BTreeMap::new();\n\
                             __m.insert(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(__fm));\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// Deserialization of one named field from `__obj` (a `&BTreeMap`).
fn field_expr(container: &str, f: &Field) -> String {
    if f.default {
        format!(
            "{0}: match __obj.get(\"{0}\") {{\n\
             Some(__v) => ::serde::Deserialize::deserialize_json(__v)?,\n\
             None => ::std::default::Default::default(),\n}},\n",
            f.name
        )
    } else {
        format!(
            "{0}: match __obj.get(\"{0}\") {{\n\
             Some(__v) => ::serde::Deserialize::deserialize_json(__v)?,\n\
             None => ::serde::Deserialize::deserialize_json(&::serde::Value::Null).map_err(|_| ::serde::Error::msg(\"missing field `{0}` in {1}\"))?,\n}},\n",
            f.name, container
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct(name, fields) => {
            let mut body = format!(
                "let __obj = match __v {{\n\
                 ::serde::Value::Object(__m) => __m,\n\
                 _ => return Err(::serde::Error::msg(\"expected object for {name}\")),\n}};\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                body.push_str(&field_expr(name, f));
            }
            body.push_str("})");
            impl_deserialize(name, &body)
        }
        Item::TupleStruct(name, 1) => impl_deserialize(
            name,
            &format!("Ok({name}(::serde::Deserialize::deserialize_json(__v)?))"),
        ),
        Item::TupleStruct(name, n) => {
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize_json(&__a[{k}])?"))
                .collect();
            impl_deserialize(
                name,
                &format!(
                    "let __a = match __v {{\n\
                     ::serde::Value::Array(__a) if __a.len() == {n} => __a,\n\
                     _ => return Err(::serde::Error::msg(\"expected {n}-element array for {name}\")),\n}};\n\
                     Ok({name}({elems}))",
                    elems = elems.join(", ")
                ),
            )
        }
        Item::UnitStruct(name) => impl_deserialize(name, &format!("Ok({name})")),
        Item::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => unit_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}),\n"
                    )),
                    Variant::Tuple(vn, n) => {
                        let build = if *n == 1 {
                            format!("{name}::{vn}(::serde::Deserialize::deserialize_json(__val)?)")
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::deserialize_json(&__a[{k}])?"))
                                .collect();
                            format!(
                                "{{ let __a = match __val {{\n\
                                 ::serde::Value::Array(__a) if __a.len() == {n} => __a,\n\
                                 _ => return Err(::serde::Error::msg(\"expected {n}-element array for {name}::{vn}\")),\n}};\n\
                                 {name}::{vn}({elems}) }}",
                                elems = elems.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("\"{vn}\" => return Ok({build}),\n"));
                    }
                    Variant::Struct(vn, fields) => {
                        let mut build = format!(
                            "{{ let __obj = match __val {{\n\
                             ::serde::Value::Object(__m) => __m,\n\
                             _ => return Err(::serde::Error::msg(\"expected object for {name}::{vn}\")),\n}};\n\
                             {name}::{vn} {{\n"
                        );
                        for f in fields {
                            build.push_str(&field_expr(&format!("{name}::{vn}"), f));
                        }
                        build.push_str("} }");
                        data_arms.push_str(&format!("\"{vn}\" => return Ok({build}),\n"));
                    }
                }
            }
            let body = format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => {{\n\
                 match __s.as_str() {{\n{unit_arms} _ => {{}} }}\n\
                 Err(::serde::Error::msg(\"unknown variant for {name}\"))\n}}\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, __val) = __m.iter().next().unwrap();\n\
                 match __k.as_str() {{\n{data_arms} _ => {{}} }}\n\
                 Err(::serde::Error::msg(\"unknown variant for {name}\"))\n}}\n\
                 _ => Err(::serde::Error::msg(\"expected string or 1-key object for {name}\")),\n}}"
            );
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_json(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         #[allow(unused_variables)]\nlet __v = __v;\n{body}\n}}\n}}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde stub derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde stub derive: generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Splits token trees on top-level commas.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                out.push(std::mem::take(&mut cur));
            }
            other => cur.push(other.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out.retain(|v| !v.is_empty());
    out
}

/// Builds a Rust expression (as source text) evaluating to `::serde::Value`.
fn json_value_expr(tokens: &[TokenTree]) -> String {
    if tokens.len() == 1 {
        match &tokens[0] {
            TokenTree::Ident(id) if id.to_string() == "null" => {
                return "::serde::Value::Null".to_string();
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let entries: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut body = String::from(
                    "{ let mut __m = ::std::collections::BTreeMap::new();\n",
                );
                for entry in split_commas(&entries) {
                    // split on the first lone ':' (skipping '::' pairs)
                    let mut split_at = None;
                    let mut k = 0;
                    while k < entry.len() {
                        if let TokenTree::Punct(p) = &entry[k] {
                            if p.as_char() == ':' {
                                if matches!(entry.get(k + 1), Some(TokenTree::Punct(q)) if q.as_char() == ':')
                                {
                                    k += 2;
                                    continue;
                                }
                                split_at = Some(k);
                                break;
                            }
                        }
                        k += 1;
                    }
                    let split_at = match split_at {
                        Some(s) => s,
                        None => panic!("json!: object entry without `:`"),
                    };
                    let key_src: String =
                        entry[..split_at].iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ");
                    let val = json_value_expr(&entry[split_at + 1..]);
                    body.push_str(&format!(
                        "__m.insert(::std::string::String::from({key_src}), {val});\n"
                    ));
                }
                body.push_str("::serde::Value::Object(__m) }");
                return body;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => {
                let elems: Vec<TokenTree> = g.stream().into_iter().collect();
                let parts: Vec<String> =
                    split_commas(&elems).iter().map(|e| json_value_expr(e)).collect();
                return format!("::serde::Value::Array(vec![{}])", parts.join(", "));
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                return json_value_expr(&inner);
            }
            _ => {}
        }
    }
    if tokens.is_empty() {
        return "::serde::Value::Null".to_string();
    }
    let src: String = tokens.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ");
    format!("::serde::Serialize::serialize_json(&({src}))")
}

#[proc_macro]
pub fn json(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    if tokens.is_empty() {
        return "::serde::Value::Object(::std::collections::BTreeMap::new())"
            .parse()
            .unwrap();
    }
    json_value_expr(&tokens).parse().expect("json!: generated expression parses")
}
