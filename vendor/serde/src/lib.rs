//! Vendored offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the slice of serde's API this workspace uses, on top of
//! a single JSON-like [`Value`] model: `Serialize` converts to a `Value`,
//! `Deserialize` reads back out of one. The `Serialize` / `Deserialize`
//! derive macros (re-exported from `serde_stub_derive`) target exactly
//! these traits, and the vendored `serde_json` crate layers text
//! parsing/printing plus `json!` on top.

pub use serde_stub_derive::{Deserialize, Serialize};

pub mod value;
pub use value::{Number, Value};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// Error raised by deserialization (and, for API compatibility, returned
/// by fallible serialization entry points that cannot actually fail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] model.
pub trait Serialize {
    fn serialize_json(&self) -> Value;
}

/// Deserialization out of the [`Value`] model.
pub trait Deserialize: Sized {
    fn deserialize_json(v: &Value) -> Result<Self, Error>;
}

/// Mirror of `serde::de` — only the name this workspace imports.
pub mod de {
    /// Every `Deserialize` type here is owned, so the marker is a plain
    /// blanket alias.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self) -> Value {
        (**self).serialize_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self) -> Value {
        (**self).serialize_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        T::deserialize_json(v).map(Box::new)
    }
}

impl Serialize for bool {
    fn serialize_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected boolean")),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self) -> Value {
                Value::Number(Number::from_i128(*self as i128))
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_integer()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::msg(concat!("number out of range for ", stringify!($t)))),
                    _ => Err(Error::msg(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self) -> Value {
                Value::Number(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    _ => Err(Error::msg(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for char {
    fn serialize_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl Serialize for str {
    fn serialize_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self) -> Value {
        match self {
            Some(t) => t.serialize_json(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_json(other).map(Some),
        }
    }
}

impl Serialize for () {
    fn serialize_json(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::msg("expected null")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_json).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self) -> Value {
        self.as_slice().serialize_json()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::deserialize_json).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self) -> Value {
        self.as_slice().serialize_json()
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) if a.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(a.iter()) {
                    *slot = T::deserialize_json(item)?;
                }
                Ok(out)
            }
            _ => Err(Error::msg("expected fixed-length array")),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_json).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::deserialize_json).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for HashSet<T> {
    fn serialize_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_json).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::deserialize_json).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

/// Converts a serialized map key to the JSON object-key string, mirroring
/// serde_json (string keys pass through, integer-ish keys stringify).
pub fn key_to_string(v: &Value) -> Result<String, Error> {
    match v {
        Value::String(s) => Ok(s.clone()),
        Value::Number(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        _ => Err(Error::msg("map key does not serialize to a string or number")),
    }
}

/// Recovers a typed map key from the JSON object-key string: try the
/// string form first, then a numeric reinterpretation.
pub fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize_json(&Value::String(s.to_string())) {
        return Ok(k);
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize_json(&Value::Number(Number::I(i))) {
            return Ok(k);
        }
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize_json(&Value::Number(Number::U(u))) {
            return Ok(k);
        }
    }
    if let Ok(f) = s.parse::<f64>() {
        if let Ok(k) = K::deserialize_json(&Value::Number(Number::F(f))) {
            return Ok(k);
        }
    }
    if let Ok(b) = s.parse::<bool>() {
        if let Ok(k) = K::deserialize_json(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(Error::msg(format!("cannot reconstruct map key from {s:?}")))
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_json(&self) -> Value {
        let mut m = BTreeMap::new();
        for (k, v) in self {
            let key = key_to_string(&k.serialize_json())
                .expect("map key serializes to a string or number");
            m.insert(key, v.serialize_json());
        }
        Value::Object(m)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_json(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_json(&self) -> Value {
        let mut m = BTreeMap::new();
        for (k, v) in self {
            let key = key_to_string(&k.serialize_json())
                .expect("map key serializes to a string or number");
            m.insert(key, v.serialize_json());
        }
        Value::Object(m)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_json(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_json()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_json(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(a) if a.len() == [$($n),+].len() => {
                        Ok(($($t::deserialize_json(&a[$n])?,)+))
                    }
                    _ => Err(Error::msg("expected tuple array")),
                }
            }
        }
    )*};
}

tuple_impls! {
    (0 T0)
    (0 T0, 1 T1)
    (0 T0, 1 T1, 2 T2)
    (0 T0, 1 T1, 2 T2, 3 T3)
}

impl Serialize for Value {
    fn serialize_json(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_json(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
