//! The JSON value model shared by the vendored `serde` / `serde_json`.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integer-preserving where possible.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    pub fn from_i128(v: i128) -> Number {
        if let Ok(i) = i64::try_from(v) {
            Number::I(i)
        } else if let Ok(u) = u64::try_from(v) {
            Number::U(u)
        } else {
            Number::F(v as f64)
        }
    }

    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I(i) => i as f64,
            Number::U(u) => u as f64,
            Number::F(f) => f,
        }
    }

    /// The value as an `i128` when it is integral (including `2.0`).
    pub fn as_integer(&self) -> Option<i128> {
        match *self {
            Number::I(i) => Some(i as i128),
            Number::U(u) => Some(u as i128),
            Number::F(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => Some(f as i128),
            Number::F(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        self.as_integer().and_then(|i| i64::try_from(i).ok())
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_integer().and_then(|i| u64::try_from(i).ok())
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.as_integer(), other.as_integer()) {
            (Some(a), Some(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I(i) => write!(f, "{i}"),
            Number::U(u) => write!(f, "{u}"),
            // JSON has no NaN/Infinity; serde_json emits null for them.
            Number::F(v) if !v.is_finite() => write!(f, "null"),
            Number::F(v) if v.fract() == 0.0 && v.abs() < 1e15 => write!(f, "{:.1}", v),
            Number::F(v) => write!(f, "{v}"),
        }
    }
}

/// A JSON document. Objects use `BTreeMap`, so key order is sorted (the
/// real serde_json preserves insertion order; nothing here depends on
/// that).
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

/// Index into a `Value` by object key or array position.
pub trait Index {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl Index for str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        match v {
            Value::Object(m) => m.get(self),
            _ => None,
        }
    }
}

impl Index for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(v)
    }
}

impl Index for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        match v {
            Value::Array(a) => a.get(*self),
            _ => None,
        }
    }
}

impl<T: Index + ?Sized> Index for &T {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        (**self).index_into(v)
    }
}

/// Shared `Null` for out-of-bounds `Index` results, like serde_json.
static NULL: Value = Value::Null;

impl<I: Index> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl Value {
    pub fn get<I: Index>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Compact JSON text.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Pretty JSON text (two-space indent).
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(out, s),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(a) if !a.is_empty() => {
                out.push_str("[\n");
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(m) if !m.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

// ---------------------------------------------------------------------------
// Text parsing
// ---------------------------------------------------------------------------

/// Parses JSON text into a [`Value`].
pub fn parse_json(input: &str) -> Result<Value, crate::Error> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(crate::Error::msg(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, crate::Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(crate::Error::msg("unexpected end of JSON input")),
        Some(b'n') => expect_lit(b, pos, "null", Value::Null),
        Some(b't') => expect_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => expect_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(crate::Error::msg("expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(crate::Error::msg("expected `:` in object"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(crate::Error::msg("expected `,` or `}` in object")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, crate::Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(crate::Error::msg(format!("invalid literal at byte {pos}", pos = *pos)))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, crate::Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(crate::Error::msg("expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(crate::Error::msg("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = read_hex4(b, *pos + 1)?;
                        if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: must pair with `\uDC00..=\uDFFF`.
                            if b.get(*pos + 5..*pos + 7) != Some(br"\u") {
                                return Err(crate::Error::msg("unpaired surrogate in \\u escape"));
                            }
                            let low = read_hex4(b, *pos + 7)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(crate::Error::msg("invalid low surrogate in \\u escape"));
                            }
                            let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            out.push(char::from_u32(scalar)
                                .ok_or_else(|| crate::Error::msg("bad surrogate pair"))?);
                            *pos += 10;
                        } else {
                            out.push(char::from_u32(code)
                                .ok_or_else(|| crate::Error::msg("unpaired surrogate in \\u escape"))?);
                            *pos += 4;
                        }
                    }
                    _ => return Err(crate::Error::msg("bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar
                let s = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| crate::Error::msg("invalid UTF-8 in string"))?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn read_hex4(b: &[u8], at: usize) -> Result<u32, crate::Error> {
    let hex = b.get(at..at + 4).ok_or_else(|| crate::Error::msg("bad \\u escape"))?;
    u32::from_str_radix(
        std::str::from_utf8(hex).map_err(|_| crate::Error::msg("bad \\u escape"))?,
        16,
    )
    .map_err(|_| crate::Error::msg("bad \\u escape"))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, crate::Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| crate::Error::msg("invalid number"))?;
    if text.is_empty() {
        return Err(crate::Error::msg(format!("unexpected character at byte {start}")));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Number(Number::I(i)));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::Number(Number::U(u)));
        }
    }
    text.parse::<f64>()
        .map(|f| Value::Number(Number::F(f)))
        .map_err(|_| crate::Error::msg(format!("invalid number {text:?}")))
}
