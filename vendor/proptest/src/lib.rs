//! Vendored offline stand-in for `proptest`.
//!
//! Covers the surface this workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!` / `prop_assert_eq!`, `Strategy` with `prop_map`,
//! `Just`, `any::<T>()`, numeric range strategies, `prop_oneof!`, and
//! `proptest::collection::vec`. Cases are generated from a deterministic
//! RNG seeded by the test name, so failures reproduce; there is no
//! shrinking.

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Deterministic xorshift RNG used to drive generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from the test name so every test gets a distinct but
    /// reproducible stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// Runner configuration. Only `cases` is consulted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Types with a canonical whole-domain strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Acceptable size arguments for [`vec`].
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// `proptest::collection::vec` — vectors of `element` with length
    /// drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, ProptestConfig, TestRng};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left), ::std::stringify!($right), l, r
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                ::std::stringify!($left), ::std::stringify!($right), l
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, ::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(::std::stringify!($name));
                for __case in 0..__cfg.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        ::std::panic!(
                            "proptest {} failed at case {}/{}:\n{}",
                            ::std::stringify!($name), __case + 1, __cfg.cases, __msg
                        );
                    }
                }
            }
        )*
    };
}
