//! Strategy combinators for the vendored proptest.

use crate::{Arbitrary, TestRng};

/// A generator of values for property tests. Unlike real proptest there
/// is no value tree / shrinking: `generate` draws one value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// Weighted choice between boxed alternatives (`prop_oneof!`). The
/// plain form gives every arm weight 1.
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    pub fn weighted(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut draw = rng.below(self.total_weight);
        for (w, arm) in &self.arms {
            if draw < *w as u64 {
                return arm.generate(rng);
            }
            draw -= *w as u64;
        }
        unreachable!("draw below total weight always lands in an arm")
    }
}

macro_rules! tuple_strategies {
    ($(($($t:ident . $n:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (T0.0)
    (T0.0, T1.1)
    (T0.0, T1.1, T2.2)
    (T0.0, T1.1, T2.2, T3.3)
    (T0.0, T1.1, T2.2, T3.3, T4.4)
    (T0.0, T1.1, T2.2, T3.3, T4.4, T5.5)
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> FullRange<$t> {
                FullRange(std::marker::PhantomData)
            }
        }
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_strategies!(f32, f64);

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn arbitrary() -> FullRange<bool> {
        FullRange(std::marker::PhantomData)
    }
}

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy backing [`crate::any`].
pub struct FullRange<T>(std::marker::PhantomData<T>);
