//! Vendored offline stand-in for `bytes`: `Bytes` / `BytesMut` with the
//! big-endian `Buf` / `BufMut` accessors this workspace's MRT codec uses.
//! `Bytes` shares one backing allocation across clones and sub-slices.

use std::ops::Deref;
use std::sync::Arc;

/// Read-side cursor operations (big-endian, like the real crate).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write-side operations (big-endian).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Immutable shared byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off the first `len` bytes into a new `Bytes`, advancing
    /// `self` past them. Shares the backing allocation.
    pub fn split_to(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "split_to out of bounds");
        let head = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + len };
        self.start += len;
        head
    }

    /// A sub-range of the current view, sharing the backing allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from_vec(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_roundtrip_and_slicing() {
        let mut w = BytesMut::new();
        w.put_u64(0x0102_0304_0506_0708);
        w.put_u16(0xBEEF);
        w.put_u32(7);
        w.put_u8(9);
        let mut r = w.freeze();
        assert_eq!(r.len(), 15);
        let head = r.split_to(8);
        assert_eq!(head.len(), 8);
        assert_eq!(r.slice(0..2).len(), 2);
        let mut h = head.clone();
        assert_eq!(h.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.clone().get_u16(), 0xBEEF);
        let mut r2 = r;
        r2.advance(2);
        assert_eq!(r2.get_u32(), 7);
        assert_eq!(r2.get_u8(), 9);
        assert_eq!(r2.remaining(), 0);
    }
}
