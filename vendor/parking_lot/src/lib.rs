//! Vendored offline stand-in for `parking_lot`: the poison-free lock API
//! implemented over `std::sync` (poisoned locks are transparently
//! recovered, matching parking_lot's no-poisoning semantics).

use std::fmt;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}
