//! Vendored offline stand-in for `rand` 0.8's seeded-RNG surface:
//! `StdRng::seed_from_u64`, `gen_range`, `gen_bool`. Deterministic
//! xoshiro256++ seeded via splitmix64 — statistical quality is ample for
//! synthetic world generation.

pub mod rngs {
    /// Deterministic RNG (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_state(seed: u64) -> StdRng {
            // splitmix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }

        pub(crate) fn next_raw(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng::from_state(seed)
        }
    }
}

/// Raw 64-bit output source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_ranges!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(0.6..1.4);
            assert_eq!(x, b.gen_range(0.6..1.4));
            assert!((0.6..1.4).contains(&x));
            let n = a.gen_range(0usize..10);
            assert!(n < 10);
            b.gen_range(0usize..10);
            assert_eq!(a.gen_bool(0.3), b.gen_bool(0.3));
        }
        assert!(a.gen_bool(1.0));
        assert!(!StdRng::seed_from_u64(1).gen_bool(0.0));
    }
}
