//! Vendored offline stand-in for `serde_json`, layered on the vendored
//! `serde` crate's [`Value`] model.

pub use serde::value::{parse_json, Number, Value};
pub use serde::Error;

/// `serde_json::json!` — re-exported from the proc-macro crate. The
/// expansion references `::serde`, which every consumer of this stub
/// already depends on.
pub use serde_stub_derive::json;

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.serialize_json())
}

pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T> {
    T::deserialize_json(&value)
}

pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(value.serialize_json().to_json_string())
}

pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(value.serialize_json().to_json_string_pretty())
}

pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    T::deserialize_json(&parse_json(s)?)
}

/// Mirror of `serde_json::Map` (sorted here; order is not relied upon).
pub type Map<K, V> = std::collections::BTreeMap<K, V>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "-12", "3.5", "\"hi\\nthere\"", "[1,2,3]", "{\"a\":[{}]}"] {
            let v: Value = from_str(text).unwrap();
            let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn json_macro_shapes() {
        let x = 41;
        let v = json!({ "a": x + 1, "b": [1, "two", null], "c": { "nested": true } });
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(42));
        assert_eq!(v.get("b").and_then(Value::as_array).map(Vec::len), Some(3));
        assert_eq!(v.get("c").and_then(|c| c.get("nested")).and_then(Value::as_bool), Some(true));
        assert_eq!(json!("s"), Value::String("s".into()));
        assert!(json!({}).as_object().unwrap().is_empty());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v: Value = from_str("\"\\ud83d\\ude00!\"").unwrap();
        assert_eq!(v, Value::String("\u{1f600}!".into()));
        assert!(from_str::<Value>("\"\\ud83d\"").is_err(), "lone high surrogate rejected");
        assert!(from_str::<Value>("\"\\ude00\"").is_err(), "lone low surrogate rejected");
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let s = to_string(&vec![1.0, f64::NEG_INFINITY]).unwrap();
        assert_eq!(from_str::<Value>(&s).unwrap(), json!([1.0, null]));
    }

    #[test]
    fn pretty_output_reparses() {
        let v = json!({ "k": [1, 2], "s": "x" });
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }
}
