//! Vendored offline stand-in for `criterion`: same macro/builder surface,
//! but a simple wall-clock runner — a short warm-up, then `sample_size`
//! timed samples, reporting min/mean per iteration. No statistics
//! machinery, no HTML reports; bench binaries stay `harness = false`
//! compatible and runnable via `cargo bench`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration timing loop handed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration over the best sample, for reporting.
    result_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and iteration-count calibration: aim for ~2ms per
        // sample; bodies slower than that run once per sample, and the
        // best-of-samples minimum below absorbs the extra timer noise.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = ((Duration::from_millis(2).as_nanos() / once.as_nanos()).max(1) as usize).min(10_000);

        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
            if per_iter < best {
                best = per_iter;
            }
        }
        self.result_ns = best;
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<P: Display>(p: P) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    pub fn new<S: Display, P: Display>(name: S, p: P) -> BenchmarkId {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, result_ns: f64::NAN };
        f(&mut b);
        println!("{}/{}: {} per iter (best of {})", self.name, id, human(b.result_ns), self.sample_size);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, result_ns: f64::NAN };
        f(&mut b, input);
        println!("{}/{}: {} per iter (best of {})", self.name, id, human(b.result_ns), self.sample_size);
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level bench context.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: self.default_sample_size }
    }

    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group(name).bench_function("bench", f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
