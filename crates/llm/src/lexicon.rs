//! Natural-language query analysis: the entity extraction and intent
//! classification a measurement expert performs when reading a question.
//!
//! Deliberately rule-based and deterministic. The rules encode the same
//! domain vocabulary the paper's prompts teach the LLM: cable systems,
//! regions, disaster types, probabilities, relative time expressions, and
//! the verbs that distinguish impact assessment from cascade analysis from
//! forensic causation.

use crate::protocol::{DisasterEntity, Entities, Intent};

/// Lowercases and keeps alphanumerics/including hyphens for matching.
fn normalize(s: &str) -> String {
    s.to_ascii_lowercase()
}

/// Extracts entities from a query given the known cable names.
pub fn extract_entities(query: &str, cable_names: &[String]) -> Entities {
    let q = normalize(query);
    let mut e = Entities::default();

    // Cable systems: match known names case-insensitively.
    for name in cable_names {
        if q.contains(&normalize(name)) {
            e.cables.push(name.clone());
        }
    }

    // Regions (continent vocabulary, including adjectival forms).
    for (needle, region) in [
        ("europe", "Europe"),
        ("asia", "Asia"),
        ("africa", "Africa"),
        ("north america", "NorthAmerica"),
        ("south america", "SouthAmerica"),
        ("oceania", "Oceania"),
        ("middle east", "MiddleEast"),
    ] {
        if q.contains(needle) {
            e.regions.push(region.to_string());
        }
    }

    // Countries by English name.
    for info in net_model_countries() {
        if q.contains(&normalize(&info.0)) {
            e.countries.push(info.1);
        }
    }

    // Disasters.
    for kind in ["earthquake", "hurricane"] {
        if q.contains(kind) {
            let qualifier = ["severe", "major", "global", "globally"]
                .iter()
                .find(|w| q.contains(**w))
                .map(|w| w.to_string())
                .unwrap_or_default();
            e.disasters.push(DisasterEntity { kind: kind.to_string(), qualifier });
        }
    }

    e.probability = extract_percentage(&q);
    e.lookback_days = extract_lookback_days(&q);

    // Aggregation level.
    for (needle, level) in [
        ("country level", "country"),
        ("country-level", "country"),
        ("per country", "country"),
        ("as level", "as"),
        ("as-level", "as"),
        ("link level", "link"),
    ] {
        if q.contains(needle) {
            e.target_level = Some(level.to_string());
            break;
        }
    }

    e
}

/// `(english name, ISO code)` pairs from the country table.
fn net_model_countries() -> Vec<(String, String)> {
    net_model::country::all_countries()
        .into_iter()
        .map(|c| (c.name.to_string(), c.code.code().to_string()))
        .collect()
}

/// Finds the first "N%" in the query.
pub fn extract_percentage(q: &str) -> Option<f64> {
    let bytes = q.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'%' {
            // Scan digits (and one dot) backwards.
            let mut start = i;
            while start > 0
                && (bytes[start - 1].is_ascii_digit() || bytes[start - 1] == b'.')
            {
                start -= 1;
            }
            if start < i {
                if let Ok(v) = q[start..i].parse::<f64>() {
                    return Some(v / 100.0);
                }
            }
        }
    }
    None
}

/// Parses relative lookbacks: "three days ago", "last 5 days", "2 weeks".
pub fn extract_lookback_days(q: &str) -> Option<i64> {
    let words: Vec<&str> = q
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|w| !w.is_empty())
        .collect();
    for (i, w) in words.iter().enumerate() {
        let unit_scale = match *w {
            "day" | "days" => Some(1),
            "week" | "weeks" => Some(7),
            _ => None,
        };
        if let Some(scale) = unit_scale {
            if i > 0 {
                if let Some(n) = word_to_number(words[i - 1]) {
                    return Some(n * scale);
                }
            }
        }
    }
    None
}

/// English number words and digits up to twenty.
pub fn word_to_number(w: &str) -> Option<i64> {
    if let Ok(n) = w.parse::<i64>() {
        return Some(n);
    }
    let n = match w {
        "one" => 1,
        "two" => 2,
        "three" => 3,
        "four" => 4,
        "five" => 5,
        "six" => 6,
        "seven" => 7,
        "eight" => 8,
        "nine" => 9,
        "ten" => 10,
        "eleven" => 11,
        "twelve" => 12,
        "fourteen" => 14,
        "twenty" => 20,
        _ => return None,
    };
    Some(n)
}

/// Classifies the query intent from its verbs and entities — the first
/// judgment an expert makes.
pub fn classify_intent(query: &str, entities: &Entities) -> Intent {
    let q = normalize(query);

    if q.contains("cascad") {
        return Intent::CascadeAnalysis;
    }
    // Control-plane vocabulary wins over the generic forensic verbs: a
    // hijack question usually also asks what "caused" the anomaly.
    let control_plane_nouns =
        ["hijack", "route leak", "leaked route", "moas", "multiple origin", "bogus origin"];
    if control_plane_nouns.iter().any(|n| q.contains(n)) {
        return Intent::ControlPlaneForensics;
    }
    let forensic_verbs = ["caused", "cause", "root cause", "determine if", "why", "identify the specific"];
    let anomaly_nouns = ["latency", "anomaly", "increase", "degradation", "slow"];
    if forensic_verbs.iter().any(|v| q.contains(v))
        && anomaly_nouns.iter().any(|n| q.contains(n))
    {
        return Intent::ForensicRootCause;
    }
    if !entities.disasters.is_empty() {
        return Intent::DisasterImpact;
    }
    if (q.contains("impact") || q.contains("affect") || q.contains("effect"))
        && !entities.cables.is_empty()
    {
        return Intent::CableImpact;
    }
    if q.contains("risk") || q.contains("resilien") || q.contains("depend") {
        return Intent::RiskAssessment;
    }
    if q.contains("impact") || q.contains("affect") {
        return Intent::CableImpact;
    }
    Intent::Generic
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cables() -> Vec<String> {
        vec!["SeaMeWe-5".to_string(), "AAE-1".to_string(), "FALCON".to_string()]
    }

    #[test]
    fn cs1_query_extraction() {
        let q = "Identify the impact at a country level due to SeaMeWe-5 cable failure";
        let e = extract_entities(q, &cables());
        assert_eq!(e.cables, vec!["SeaMeWe-5"]);
        assert_eq!(e.target_level.as_deref(), Some("country"));
        assert_eq!(classify_intent(q, &e), Intent::CableImpact);
    }

    #[test]
    fn cs2_query_extraction() {
        let q = "Identify the impact of severe earthquakes and hurricanes globally assuming a 10% infra failure probability";
        let e = extract_entities(q, &cables());
        assert_eq!(e.disasters.len(), 2);
        assert_eq!(e.probability, Some(0.10));
        assert_eq!(classify_intent(q, &e), Intent::DisasterImpact);
    }

    #[test]
    fn cs3_query_extraction() {
        let q = "Analyze the cascading effects of submarine cable failures between Europe and Asia";
        let e = extract_entities(q, &cables());
        assert!(e.regions.contains(&"Europe".to_string()));
        assert!(e.regions.contains(&"Asia".to_string()));
        assert_eq!(classify_intent(q, &e), Intent::CascadeAnalysis);
    }

    #[test]
    fn cs4_query_extraction() {
        let q = "A sudden increase in latency was observed from European probes to Asian \
                 destinations starting three days ago. Determine if a submarine cable failure \
                 caused this, and if so, identify the specific cable.";
        let e = extract_entities(q, &cables());
        assert_eq!(e.lookback_days, Some(3));
        assert!(e.regions.contains(&"Europe".to_string()));
        assert_eq!(classify_intent(q, &e), Intent::ForensicRootCause);
    }

    #[test]
    fn percentage_variants() {
        assert_eq!(extract_percentage("assume 10% failure"), Some(0.10));
        assert_eq!(extract_percentage("at 2.5% rate"), Some(0.025));
        assert_eq!(extract_percentage("no percentage here"), None);
    }

    #[test]
    fn lookback_variants() {
        assert_eq!(extract_lookback_days("starting three days ago"), Some(3));
        assert_eq!(extract_lookback_days("over the last 2 weeks"), Some(14));
        assert_eq!(extract_lookback_days("past ten days"), Some(10));
        assert_eq!(extract_lookback_days("recently"), None);
    }

    #[test]
    fn risk_intent() {
        let q = "How resilient is Singapore to cable failures?";
        let e = extract_entities(q, &cables());
        assert_eq!(e.countries, vec!["SG"]);
        assert_eq!(classify_intent(q, &e), Intent::RiskAssessment);
    }

    #[test]
    fn generic_fallback() {
        let q = "Show me traceroute paths";
        let e = extract_entities(q, &cables());
        assert_eq!(classify_intent(q, &e), Intent::Generic);
    }
}
