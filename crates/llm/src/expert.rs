//! The deterministic expert model: the reproduction's stand-in for Claude
//! Sonnet 4 (DESIGN.md §3).
//!
//! Each handler encodes the "generalized reasoning a human expert would
//! naturally apply" that the paper describes embedding into its prompts:
//!
//! * `querymind.decompose` — read the query, classify the intent, extract
//!   entities, resolve typed arguments, and lay out sub-problems with
//!   dependencies, constraints, success criteria and risks;
//! * `workflowscout.explore` — run the adaptive solution-space search in
//!   [`crate::planner`];
//! * `solutionweaver.implement` — finalize the plan into a workflow
//!   program: format-translation hardening plus woven-in QA steps;
//! * `registrycurator.curate` — mine successful workflows for recurring,
//!   type-chainable function pairs and propose validated composites.
//!
//! Handlers communicate only via JSON text, like a real model.

use std::collections::BTreeMap;

use registry::{DataFormat, FunctionId};

use crate::lexicon;
use crate::planner;
use crate::protocol::*;
use crate::{Completion, LanguageModel, LlmError, Prompt};

/// The deterministic expert model.
#[derive(Debug, Default, Clone)]
pub struct DeterministicExpertModel;

impl DeterministicExpertModel {
    pub fn new() -> Self {
        DeterministicExpertModel
    }
}

impl LanguageModel for DeterministicExpertModel {
    fn complete(&self, prompt: &Prompt) -> Result<Completion, LlmError> {
        let text = match prompt.task.as_str() {
            "querymind.decompose" => {
                let req: DecomposeRequest = parse(&prompt.task, &prompt.payload)?;
                to_text(&decompose(&req))
            }
            "workflowscout.explore" => {
                let req: ExploreRequest = parse(&prompt.task, &prompt.payload)?;
                match planner::plan_architecture(&req.decomposition, &req.registry, req.variant) {
                    Ok(plan) => to_text(&plan),
                    Err(e) => {
                        return Err(LlmError::BadPayload {
                            task: prompt.task.clone(),
                            message: e.to_string(),
                        })
                    }
                }
            }
            "solutionweaver.implement" => {
                let req: ImplementRequest = parse(&prompt.task, &prompt.payload)?;
                to_text(&implement(&req))
            }
            "registrycurator.curate" => {
                let req: CurateRequest = parse(&prompt.task, &prompt.payload)?;
                to_text(&curate(&req))
            }
            other => return Err(LlmError::UnknownTask(other.to_string())),
        };
        Ok(Completion { text })
    }

    fn name(&self) -> &str {
        "deterministic-expert-v1"
    }
}

fn parse<T: serde::de::DeserializeOwned>(
    task: &str,
    payload: &serde_json::Value,
) -> Result<T, LlmError> {
    serde_json::from_value(payload.clone()).map_err(|e| LlmError::BadPayload {
        task: task.to_string(),
        message: e.to_string(),
    })
}

fn to_text<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("protocol types serialize")
}

// ---------------------------------------------------------------------------
// QueryMind reasoning
// ---------------------------------------------------------------------------

/// The decomposition handler.
pub fn decompose(req: &DecomposeRequest) -> Decomposition {
    let entities = lexicon::extract_entities(&req.query, &req.context.cable_names);
    let intent = lexicon::classify_intent(&req.query, &entities);

    let mut args: BTreeMap<String, ResolvedArg> = BTreeMap::new();
    let mut sub_problems = Vec::new();
    let mut constraints = Vec::new();
    let mut success = Vec::new();
    let mut risks = Vec::new();
    let complexity;

    let now = req.context.now;
    let horizon_days = req.context.horizon_days.max(1);
    let full_window = serde_json::json!({
        "start": now - horizon_days * 86_400,
        "end": now,
    });

    match intent {
        Intent::CableImpact => {
            complexity = Complexity::Moderate;
            match entities.cables.first() {
                Some(cable) => {
                    args.insert(
                        "cable_name".into(),
                        ResolvedArg { format: DataFormat::Text, value: serde_json::json!(cable) },
                    );
                }
                None => risks.push(
                    "query names no known cable system; results depend on disambiguation".into(),
                ),
            }
            sub_problems.extend([
                SubProblem::new(
                    "dependencies",
                    "identify which IP links, ASes and countries depend on the cable \
                     (cross-layer mapping)",
                    DataFormat::DependencyTable,
                    &[],
                ),
                SubProblem::new(
                    "failure_impact",
                    "process the cable failure into failed links and affected entities",
                    DataFormat::FailureImpact,
                    &["dependencies"],
                ),
                SubProblem::new(
                    "country_aggregation",
                    "geolocate affected assets and aggregate impact per country",
                    DataFormat::CountryImpactTable,
                    &["failure_impact"],
                ),
            ]);
            constraints.extend([
                "impact fidelity is bounded by cross-layer mapping confidence".to_string(),
                "the named cable must exist in the cartography catalog".to_string(),
            ]);
            success.extend([
                "a per-country impact table with normalized scores is produced".to_string(),
                "every link dependent on the cable is accounted for".to_string(),
            ]);
        }
        Intent::DisasterImpact => {
            complexity = Complexity::Moderate;
            args.insert(
                "failure_probability".into(),
                ResolvedArg {
                    format: DataFormat::Scalar,
                    value: serde_json::json!(entities.probability.unwrap_or(0.1)),
                },
            );
            // One argument and one process-then-assess pair per disaster
            // kind: the expert approach the paper describes — "handle
            // earthquakes and hurricanes separately and combine results".
            let mut impact_ids: Vec<String> = Vec::new();
            for d in &entities.disasters {
                let arg_name = format!("{}_specs", d.kind);
                args.insert(
                    arg_name.clone(),
                    ResolvedArg {
                        format: DataFormat::DisasterSpecs,
                        value: serde_json::json!([{"kind": d.kind, "qualifier": d.qualifier}]),
                    },
                );
                let compile_id = format!("compile_{}", d.kind);
                let impact_id = format!("impact_{}", d.kind);
                sub_problems.push(
                    SubProblem::new(
                        &compile_id,
                        &format!(
                            "compile the {} set into concrete failure events at the stated \
                             probability",
                            d.kind
                        ),
                        DataFormat::FailureEventSpec,
                        &[],
                    )
                    .preferring(&[arg_name.as_str()])
                    .fresh(),
                );
                sub_problems.push(
                    SubProblem::new(
                        &impact_id,
                        &format!("process the {} events into country impact metrics", d.kind),
                        DataFormat::CountryImpactTable,
                        &[compile_id.as_str()],
                    )
                    .fresh(),
                );
                impact_ids.push(impact_id);
            }
            if impact_ids.len() >= 2 {
                let deps: Vec<&str> = impact_ids.iter().map(|s| s.as_str()).collect();
                sub_problems.push(
                    SubProblem::new(
                        "combined_impact",
                        "combine the per-disaster impacts into global metrics",
                        DataFormat::CountryImpactTable,
                        &deps,
                    )
                    .fresh(),
                );
            }
            constraints.extend([
                "failure draws must be deterministic for reproducibility".to_string(),
                "event processing handles each disaster type separately before combining"
                    .to_string(),
            ]);
            success.push(
                "combined country-level impact metrics across all disaster types".to_string(),
            );
            if entities.probability.is_none() {
                risks.push("no failure probability stated; defaulting to 10%".into());
            }
        }
        Intent::CascadeAnalysis => {
            complexity = Complexity::Complex;
            push_region_args(&mut args, &entities);
            args.insert(
                "window".into(),
                ResolvedArg { format: DataFormat::TimeWindow, value: full_window.clone() },
            );
            sub_problems.extend([
                SubProblem::new(
                    "infrastructure_map",
                    "map the submarine infrastructure between the two regions",
                    DataFormat::DependencyTable,
                    &[],
                ),
                SubProblem::new(
                    "initial_impact",
                    "model the corridor cable failures and their direct impact",
                    DataFormat::FailureImpact,
                    &["infrastructure_map"],
                ),
                SubProblem::new(
                    "cascade_model",
                    "propagate load redistribution to find cascading failures",
                    DataFormat::CascadeTimeline,
                    &["initial_impact"],
                ),
                SubProblem::new(
                    "bgp_evolution",
                    "track routing-layer reaction in BGP update bursts",
                    DataFormat::BgpBursts,
                    &[],
                ),
                SubProblem::new(
                    "latency_evolution",
                    "track data-plane reaction in probe latency anomalies",
                    DataFormat::AnomalyReport,
                    &[],
                ),
                SubProblem::new(
                    "synthesis",
                    "fuse cable, routing and latency evidence into a unified cascade timeline",
                    DataFormat::UnifiedTimeline,
                    &["cascade_model", "bgp_evolution", "latency_evolution"],
                ),
            ]);
            constraints.extend([
                "requires integration across infrastructure, routing and data-plane \
                 measurements"
                    .to_string(),
                "cascade modelling needs capacity and load assumptions stated explicitly"
                    .to_string(),
            ]);
            success.push(
                "a unified timeline spanning cable, IP and AS layers explains the cascade"
                    .to_string(),
            );
            risks.push("cross-framework timestamps must be aligned to one clock".into());
        }
        Intent::ForensicRootCause => {
            complexity = Complexity::Complex;
            push_region_args(&mut args, &entities);
            let lookback = entities.lookback_days.unwrap_or(3);
            // Analysis window: enough history before the anomaly onset to
            // establish a statistical baseline.
            let analysis_days = (lookback * 4).max(10).min(horizon_days);
            args.insert(
                "window".into(),
                ResolvedArg {
                    format: DataFormat::TimeWindow,
                    value: serde_json::json!({
                        "start": now - analysis_days * 86_400,
                        "end": now,
                    }),
                },
            );
            sub_problems.extend([
                SubProblem::new(
                    "anomaly_detection",
                    "establish a latency baseline and detect the anomaly onset with \
                     statistical significance",
                    DataFormat::AnomalyReport,
                    &[],
                ),
                SubProblem::new(
                    "suspect_ranking",
                    "rank candidate cables by likelihood of involvement given the affected \
                     paths",
                    DataFormat::SuspectRanking,
                    &["anomaly_detection"],
                ),
                SubProblem::new(
                    "bgp_validation",
                    "independently verify timing against BGP routing churn",
                    DataFormat::CorrelationReport,
                    &["anomaly_detection"],
                ),
                SubProblem::new(
                    "verdict",
                    "synthesize all evidence into a causal verdict with confidence",
                    DataFormat::ForensicVerdict,
                    &["suspect_ranking", "bgp_validation"],
                ),
            ]);
            constraints.extend([
                "baseline must predate the anomaly onset".to_string(),
                "causation requires at least two independent evidence streams".to_string(),
            ]);
            success.extend([
                "anomaly onset detected with significance assessment".to_string(),
                "a specific cable identified or cable involvement ruled out".to_string(),
            ]);
            risks.push(
                "congestion can mimic failure-induced latency shifts; BGP validation guards \
                 against this"
                    .into(),
            );
        }
        Intent::ControlPlaneForensics => {
            complexity = Complexity::Complex;
            args.insert(
                "window".into(),
                ResolvedArg { format: DataFormat::TimeWindow, value: full_window.clone() },
            );
            sub_problems.extend([
                SubProblem::new(
                    "moas_detection",
                    "detect MOAS conflicts: prefixes announced by more than one origin AS",
                    DataFormat::MoasConflicts,
                    &[],
                ),
                SubProblem::new(
                    "leak_detection",
                    "detect announced AS paths violating the valley-free export rule",
                    DataFormat::ValleyViolations,
                    &[],
                ),
                SubProblem::new(
                    "attribution",
                    "attribute the incident (hijack vs leak) and identify the offending AS",
                    DataFormat::ControlPlaneReport,
                    &["moas_detection", "leak_detection"],
                ),
                SubProblem::new(
                    "incident_impact",
                    "quantify which ASes and countries the incident misdirects",
                    DataFormat::CountryImpactTable,
                    &["attribution"],
                ),
            ]);
            constraints.extend([
                "MOAS detection needs the baseline RIB, not the update stream alone \
                 (partial hijacks leave unaffected peers silent)"
                    .to_string(),
                "valley checks run against the scenario's reference topology".to_string(),
            ]);
            success.extend([
                "the offending AS identified with confidence, or control-plane causes ruled \
                 out"
                    .to_string(),
                "the misdirected ASes and countries quantified".to_string(),
            ]);
            risks.push(
                "path prepending mimics exploration transients; detectors must collapse it"
                    .into(),
            );
        }
        Intent::RiskAssessment => {
            complexity = Complexity::Simple;
            sub_problems.push(SubProblem::new(
                "risk_profiles",
                "profile country dependency concentration over cable systems",
                DataFormat::RiskProfiles,
                &[],
            ));
            success.push("per-country concentration and critical-cable ranking".into());
        }
        Intent::Generic => {
            complexity = Complexity::Simple;
            // Ground the target in whatever the registry best matches.
            let target = req
                .registry
                .search(&req.query, 1)
                .first()
                .map(|h| h.entry.output)
                .unwrap_or(DataFormat::Table);
            sub_problems.push(SubProblem::new(
                "answer",
                &format!("answer the query with the best-matching capability ({target})"),
                target,
                &[],
            ));
            risks.push("query did not match a known analysis pattern".into());
        }
    }

    Decomposition {
        intent,
        entities,
        provided_args: args,
        sub_problems,
        constraints,
        success_criteria: success,
        risks,
        complexity,
    }
}

fn push_region_args(args: &mut BTreeMap<String, ResolvedArg>, entities: &Entities) {
    let mut regions = entities.regions.clone();
    if regions.is_empty() {
        regions = vec!["Europe".to_string(), "Asia".to_string()];
    }
    if regions.len() == 1 {
        regions.push("Asia".to_string());
    }
    args.insert(
        "src_region".into(),
        ResolvedArg { format: DataFormat::RegionScope, value: serde_json::json!(regions[0]) },
    );
    args.insert(
        "dst_region".into(),
        ResolvedArg { format: DataFormat::RegionScope, value: serde_json::json!(regions[1]) },
    );
}

// ---------------------------------------------------------------------------
// SolutionWeaver reasoning
// ---------------------------------------------------------------------------

/// The implementation handler: hardens the architecture into a final
/// workflow program.
pub fn implement(req: &ImplementRequest) -> ImplementationPlan {
    let mut steps = req.architecture.steps.clone();

    // Format-translation hardening: if a binding's source format only
    // *widens* into the parameter (e.g. RttSeries consumed as Table), the
    // translation is implicit; if it is incompatible, look for a one-hop
    // converter in the registry and splice it in.
    let mut extra: Vec<(usize, PlannedStep)> = Vec::new();
    for (idx, step) in steps.iter().enumerate() {
        let Some(entry) = req.registry.get(&FunctionId::from(step.function.as_str())) else {
            continue;
        };
        for (param_name, binding) in &step.bindings {
            let Some(param) = entry.param(param_name) else { continue };
            let source_format = binding_format(binding, req, &steps);
            if let Some(sf) = source_format {
                if !sf.compatible_with(param.format) {
                    // Find a converter sf -> param.format.
                    if let Some(conv) = req.registry.iter().find(|e| {
                        e.output.compatible_with(param.format)
                            && e.required_inputs().count() == 1
                            && e.required_inputs()
                                .next()
                                .map(|p| sf.compatible_with(p.format))
                                == Some(true)
                    }) {
                        let conv_id = format!("s{}_convert_{}", idx + 1, param_name);
                        let conv_param =
                            conv.required_inputs().next().expect("checked above").name.clone();
                        extra.push((
                            idx,
                            PlannedStep {
                                id: conv_id,
                                function: conv.id.0.clone(),
                                bindings: BTreeMap::from([(conv_param, binding.clone())]),
                                serves: step.serves.clone(),
                                rationale: format!(
                                    "format translation: {sf} -> {}",
                                    param.format
                                ),
                            },
                        ));
                    }
                }
            }
        }
    }
    // Splice converters before their consumers and rebind.
    for (idx, conv) in extra.into_iter().rev() {
        let conv_id = conv.id.clone();
        let consumer = &mut steps[idx];
        for binding in consumer.bindings.values_mut() {
            let source_bad = match binding {
                PlannedBinding::FromStep(_) | PlannedBinding::FromArg(_) => true,
                PlannedBinding::Const { .. } => false,
            };
            let _ = source_bad;
        }
        // Rebind the specific param: the converter's id encodes it.
        if let Some(param_name) = conv_id.split("_convert_").nth(1) {
            if let Some(b) = steps[idx].bindings.get_mut(param_name) {
                *b = PlannedBinding::FromStep(conv_id.clone());
            }
        }
        steps.insert(idx, conv);
    }

    // Woven-in QA: a verification probe on every declared output, when the
    // registry offers one.
    let mut qa_measures = vec![
        "per-step output format validation".to_string(),
        "empty-result sanity checks".to_string(),
        "uncertainty propagation across merges".to_string(),
    ];
    if let Some(qa_fn) = req
        .registry
        .iter()
        .find(|e| e.framework == "qa" && e.required_inputs().count() == 1)
    {
        let targets: Vec<String> = req.architecture.outputs.clone();
        for (i, out) in targets.iter().enumerate() {
            let param = qa_fn.required_inputs().next().expect("one input").name.clone();
            steps.push(PlannedStep {
                id: format!("qa{}_{}", i + 1, out),
                function: qa_fn.id.0.clone(),
                bindings: BTreeMap::from([(param, PlannedBinding::FromStep(out.clone()))]),
                serves: "quality_assurance".into(),
                rationale: "verify the final result before it reaches the user".into(),
            });
        }
        qa_measures.push(format!("output verification via {}", qa_fn.id));
    }
    if !req.feedback.is_empty() {
        qa_measures.push(format!("repaired after {} validation finding(s)", req.feedback.len()));
    }

    let slug = match req.decomposition.intent {
        Intent::CableImpact => "cable-impact",
        Intent::DisasterImpact => "disaster-impact",
        Intent::CascadeAnalysis => "cascade-analysis",
        Intent::ForensicRootCause => "forensic-rca",
        Intent::ControlPlaneForensics => "control-plane-forensics",
        Intent::RiskAssessment => "risk-assessment",
        Intent::Generic => "generic",
    };

    ImplementationPlan {
        workflow_id: format!("wf-{slug}"),
        steps,
        outputs: req.architecture.outputs.clone(),
        qa_measures,
    }
}

fn binding_format(
    binding: &PlannedBinding,
    req: &ImplementRequest,
    steps: &[PlannedStep],
) -> Option<DataFormat> {
    match binding {
        PlannedBinding::Const { format, .. } => Some(*format),
        PlannedBinding::FromArg(name) => {
            req.decomposition.provided_args.get(name).map(|a| a.format)
        }
        PlannedBinding::FromStep(sid) => steps
            .iter()
            .find(|s| &s.id == sid)
            .and_then(|s| req.registry.get(&FunctionId::from(s.function.as_str())))
            .map(|e| e.output),
    }
}

// ---------------------------------------------------------------------------
// RegistryCurator reasoning
// ---------------------------------------------------------------------------

/// The curation handler: validation-first pattern mining.
pub fn curate(req: &CurateRequest) -> CurationProposal {
    // Count adjacent function pairs across *successful* workflows.
    let mut pair_counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for wf in req.corpus.iter().filter(|w| w.success) {
        for pair in wf.functions.windows(2) {
            *pair_counts.entry((pair[0].clone(), pair[1].clone())).or_default() += 1;
        }
    }

    let mut composites = Vec::new();
    let mut rejected = Vec::new();

    for ((f, g), count) in pair_counts {
        let pattern = format!("{f} -> {g}");
        // Skip QA plumbing — not a reusable analysis pattern.
        if f.starts_with("qa.") || g.starts_with("qa.") {
            rejected.push((pattern, "quality-assurance plumbing is not generalizable".into()));
            continue;
        }
        if count < req.min_uses {
            rejected.push((pattern, format!("only {count} observed uses (needs {})", req.min_uses)));
            continue;
        }
        let (Some(ef), Some(eg)) = (
            req.registry.get(&FunctionId::from(f.as_str())),
            req.registry.get(&FunctionId::from(g.as_str())),
        ) else {
            rejected.push((pattern, "references unregistered functions".into()));
            continue;
        };
        // Type-chainable: f's output must feed g's first required input.
        let chainable = eg
            .required_inputs()
            .next()
            .map(|p| ef.output.compatible_with(p.format))
            .unwrap_or(false);
        if !chainable {
            rejected.push((pattern, "formats do not chain".into()));
            continue;
        }
        // g must not need other non-defaultable inputs (keep composites
        // self-contained: any extra required inputs pass through by name).
        let id = format!("composite.{}__{}", short(&f), short(&g));
        if req.registry.contains(&FunctionId::from(id.as_str())) {
            rejected.push((pattern, "equivalent composite already registered".into()));
            continue;
        }
        composites.push(CompositeProposal {
            id,
            sequence: vec![f.clone(), g.clone()],
            capability: format!("{} then {}", ef.capability, eg.capability),
            observed_uses: count,
        });
    }

    CurationProposal { composites, rejected }
}

fn short(function: &str) -> String {
    function.replace('.', "_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use registry::{CapabilityEntry, Param, Registry};

    fn context() -> QueryContext {
        QueryContext {
            cable_names: vec!["SeaMeWe-5".into(), "AAE-1".into(), "FALCON".into()],
            now: 10 * 86_400,
            horizon_days: 10,
        }
    }

    fn mini_registry() -> Registry {
        let mut r = Registry::new();
        r.register(CapabilityEntry::new(
            "xaminer.event_impact",
            "xaminer",
            "processes failure events into a country impact table",
            vec![Param::required("event", DataFormat::FailureEventSpec)],
            DataFormat::CountryImpactTable,
        ))
        .unwrap();
        r.register(CapabilityEntry::new(
            "util.compile_disasters",
            "util",
            "compiles disaster specs and probability into failure events",
            vec![
                Param::required("disasters", DataFormat::DisasterSpecs),
                Param::required("failure_probability", DataFormat::Scalar),
            ],
            DataFormat::FailureEventSpec,
        ))
        .unwrap();
        r
    }

    #[test]
    fn cs1_decomposition_shape() {
        let req = DecomposeRequest {
            query: "Identify the impact at a country level due to SeaMeWe-5 cable failure"
                .into(),
            context: context(),
            registry: mini_registry(),
        };
        let d = decompose(&req);
        assert_eq!(d.intent, Intent::CableImpact);
        assert_eq!(d.sub_problems.len(), 3);
        assert!(d.provided_args.contains_key("cable_name"));
        assert!(!d.constraints.is_empty());
        assert!(!d.success_criteria.is_empty());
        // Dependencies form a chain.
        assert_eq!(d.sub_problems[1].depends_on, vec!["dependencies".to_string()]);
    }

    #[test]
    fn cs2_decomposition_resolves_probability() {
        let req = DecomposeRequest {
            query: "Identify the impact of severe earthquakes and hurricanes globally \
                    assuming a 10% infra failure probability"
                .into(),
            context: context(),
            registry: mini_registry(),
        };
        let d = decompose(&req);
        assert_eq!(d.intent, Intent::DisasterImpact);
        let p = &d.provided_args["failure_probability"];
        assert_eq!(p.value, serde_json::json!(0.1));
        // One spec argument per disaster kind, plus per-kind sub-problems
        // and a combining one (the paper: "handle earthquakes and
        // hurricanes separately ... combine results").
        assert!(d.provided_args.contains_key("earthquake_specs"));
        assert!(d.provided_args.contains_key("hurricane_specs"));
        assert_eq!(d.sub_problems.len(), 5);
        assert!(d.sub_problems.iter().any(|sp| sp.id == "combined_impact"));
    }

    #[test]
    fn cs4_decomposition_builds_baseline_window() {
        let req = DecomposeRequest {
            query: "A sudden increase in latency was observed from European probes to Asian \
                    destinations starting three days ago. Determine if a submarine cable \
                    failure caused this, and if so, identify the specific cable."
                .into(),
            context: context(),
            registry: mini_registry(),
        };
        let d = decompose(&req);
        assert_eq!(d.intent, Intent::ForensicRootCause);
        let w = &d.provided_args["window"].value;
        let start = w["start"].as_i64().unwrap();
        let end = w["end"].as_i64().unwrap();
        assert_eq!(end, 10 * 86_400);
        // At least 4x the lookback for a baseline, clamped to horizon.
        assert!(end - start >= 10 * 86_400 - 1, "window {w:?}");
        assert_eq!(d.sub_problems.len(), 4);
    }

    #[test]
    fn model_end_to_end_over_prompts() {
        let model = DeterministicExpertModel::new();
        let req = DecomposeRequest {
            query: "Identify the impact of severe earthquakes and hurricanes globally \
                    assuming a 10% infra failure probability"
                .into(),
            context: context(),
            registry: mini_registry(),
        };
        let c = model
            .complete(&Prompt::new(
                "you are QueryMind",
                "querymind.decompose",
                serde_json::to_value(&req).unwrap(),
            ))
            .unwrap();
        let d: Decomposition = serde_json::from_str(&c.text).unwrap();

        let c2 = model
            .complete(&Prompt::new(
                "you are WorkflowScout",
                "workflowscout.explore",
                serde_json::to_value(&ExploreRequest {
                    decomposition: d.clone(),
                    registry: mini_registry(),
                    variant: 0,
                })
                .unwrap(),
            ))
            .unwrap();
        let plan: ArchitecturePlan = serde_json::from_str(&c2.text).unwrap();
        let fns: Vec<&str> = plan.steps.iter().map(|s| s.function.as_str()).collect();
        // Per-kind processing: compile+process for earthquakes, then for
        // hurricanes (the mini registry has no combine function, so the
        // combined sub-problem falls back to the last impact).
        assert_eq!(
            fns,
            vec![
                "util.compile_disasters",
                "xaminer.event_impact",
                "util.compile_disasters",
                "xaminer.event_impact"
            ]
        );

        let c3 = model
            .complete(&Prompt::new(
                "you are SolutionWeaver",
                "solutionweaver.implement",
                serde_json::to_value(&ImplementRequest {
                    decomposition: d,
                    architecture: plan,
                    registry: mini_registry(),
                    feedback: vec![],
                })
                .unwrap(),
            ))
            .unwrap();
        let impl_plan: ImplementationPlan = serde_json::from_str(&c3.text).unwrap();
        assert_eq!(impl_plan.workflow_id, "wf-disaster-impact");
        assert!(impl_plan.qa_measures.len() >= 3);
    }

    #[test]
    fn unknown_task_is_rejected() {
        let model = DeterministicExpertModel::new();
        let err = model
            .complete(&Prompt::new("s", "nonsense.task", serde_json::json!({})))
            .unwrap_err();
        assert!(matches!(err, LlmError::UnknownTask(_)));
    }

    #[test]
    fn curation_validation_first() {
        let reg = {
            let mut r = mini_registry();
            r.register(CapabilityEntry::new(
                "qa.verify",
                "qa",
                "verifies outputs",
                vec![Param::required("value", DataFormat::Any)],
                DataFormat::QaReport,
            ))
            .unwrap();
            r
        };
        let wf = |id: &str, fns: &[&str], ok: bool| WorkflowSummary {
            id: id.into(),
            functions: fns.iter().map(|s| s.to_string()).collect(),
            success: ok,
        };
        let req = CurateRequest {
            corpus: vec![
                wf("w1", &["util.compile_disasters", "xaminer.event_impact", "qa.verify"], true),
                wf("w2", &["util.compile_disasters", "xaminer.event_impact"], true),
                wf("w3", &["util.compile_disasters", "xaminer.event_impact"], false),
            ],
            registry: reg,
            min_uses: 2,
        };
        let proposal = curate(&req);
        assert_eq!(proposal.composites.len(), 1);
        let c = &proposal.composites[0];
        assert_eq!(c.observed_uses, 2, "failed workflow must not count");
        assert_eq!(c.sequence, vec!["util.compile_disasters", "xaminer.event_impact"]);
        // QA plumbing rejected with a reason.
        assert!(proposal
            .rejected
            .iter()
            .any(|(p, why)| p.contains("qa.verify") && why.contains("quality-assurance")));
    }
}
