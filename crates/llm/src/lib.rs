//! # llm — the language-model substrate
//!
//! ArachNet's agents are prompt/completion loops over an LLM (the paper
//! uses Claude Sonnet 4). Reproducing that offline requires the
//! substitution documented in DESIGN.md §3: a [`LanguageModel`] trait with
//! a deterministic implementation, [`DeterministicExpertModel`], that
//! encodes the same expert reasoning the authors iteratively embedded in
//! their prompts.
//!
//! The mechanics of the real system are preserved end to end:
//!
//! * agents build a [`Prompt`] (system text + task tag + JSON payload),
//! * the model returns a [`Completion`] containing **text** (JSON the
//!   agent must parse — nothing is passed as native structs),
//! * agents parse defensively and **retry with feedback** on malformed
//!   output; [`FaultyModel`] exists to exercise exactly that path,
//! * [`RecordingModel`] captures transcripts for inspection, mirroring the
//!   prompt/case-study artifacts the authors open-sourced.
//!
//! The expert reasoning itself lives in [`expert`], with the
//! natural-language query analysis in [`lexicon`] and the solution-space
//! search in [`planner`].

pub mod expert;
pub mod lexicon;
pub mod planner;
pub mod protocol;

pub use expert::DeterministicExpertModel;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A prompt sent to the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prompt {
    /// The agent's system prompt (role + instructions). Carried for
    /// fidelity and transcripts; the deterministic model keys off `task`.
    pub system: String,
    /// Task tag, e.g. `"querymind.decompose"`.
    pub task: String,
    /// Structured payload (query, context, registry view, prior artifacts).
    pub payload: serde_json::Value,
}

impl Prompt {
    pub fn new(system: &str, task: &str, payload: serde_json::Value) -> Prompt {
        Prompt { system: system.to_string(), task: task.to_string(), payload }
    }
}

/// A model completion: text the agent must parse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    pub text: String,
}

/// Errors from the model layer.
#[derive(Debug, Clone, PartialEq)]
pub enum LlmError {
    /// The model cannot handle this task tag.
    UnknownTask(String),
    /// The payload did not match the task's expected schema.
    BadPayload { task: String, message: String },
    /// Transport-level failure (simulated).
    Unavailable(String),
}

impl std::fmt::Display for LlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlmError::UnknownTask(t) => write!(f, "model has no handler for task {t:?}"),
            LlmError::BadPayload { task, message } => {
                write!(f, "bad payload for {task}: {message}")
            }
            LlmError::Unavailable(m) => write!(f, "model unavailable: {m}"),
        }
    }
}

impl std::error::Error for LlmError {}

/// The model abstraction. A production deployment would implement this
/// over an API client; the reproduction ships deterministic
/// implementations.
pub trait LanguageModel: Send + Sync {
    /// Completes a prompt.
    fn complete(&self, prompt: &Prompt) -> Result<Completion, LlmError>;

    /// Model name for reports.
    fn name(&self) -> &str;
}

/// Wraps a model and records every exchange.
pub struct RecordingModel<M> {
    inner: M,
    transcript: Mutex<Vec<(Prompt, Result<Completion, LlmError>)>>,
}

impl<M: LanguageModel> RecordingModel<M> {
    pub fn new(inner: M) -> Self {
        RecordingModel { inner, transcript: Mutex::new(Vec::new()) }
    }

    /// Number of exchanges so far.
    pub fn exchanges(&self) -> usize {
        self.transcript.lock().len()
    }

    /// Clones the transcript.
    pub fn transcript(&self) -> Vec<(Prompt, Result<Completion, LlmError>)> {
        self.transcript.lock().clone()
    }
}

impl<M: LanguageModel> LanguageModel for RecordingModel<M> {
    fn complete(&self, prompt: &Prompt) -> Result<Completion, LlmError> {
        let result = self.inner.complete(prompt);
        self.transcript.lock().push((prompt.clone(), result.clone()));
        result
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// A model that corrupts its first `faults` completions (truncated JSON),
/// then behaves like the inner model — used to test agent retry loops.
pub struct FaultyModel<M> {
    inner: M,
    remaining_faults: Mutex<usize>,
}

impl<M: LanguageModel> FaultyModel<M> {
    pub fn new(inner: M, faults: usize) -> Self {
        FaultyModel { inner, remaining_faults: Mutex::new(faults) }
    }
}

impl<M: LanguageModel> LanguageModel for FaultyModel<M> {
    fn complete(&self, prompt: &Prompt) -> Result<Completion, LlmError> {
        let mut remaining = self.remaining_faults.lock();
        if *remaining > 0 {
            *remaining -= 1;
            let good = self.inner.complete(prompt)?;
            let cut = good.text.len() / 2;
            return Ok(Completion { text: good.text[..cut].to_string() });
        }
        self.inner.complete(prompt)
    }

    fn name(&self) -> &str {
        "faulty-wrapper"
    }
}

/// A fully scripted model: returns canned completions per task tag.
/// Useful for unit-testing agents in isolation.
pub struct ScriptedModel {
    responses: Vec<(String, String)>,
}

impl ScriptedModel {
    pub fn new(responses: Vec<(&str, &str)>) -> Self {
        ScriptedModel {
            responses: responses
                .into_iter()
                .map(|(t, r)| (t.to_string(), r.to_string()))
                .collect(),
        }
    }
}

impl LanguageModel for ScriptedModel {
    fn complete(&self, prompt: &Prompt) -> Result<Completion, LlmError> {
        self.responses
            .iter()
            .find(|(task, _)| task == &prompt.task)
            .map(|(_, r)| Completion { text: r.clone() })
            .ok_or_else(|| LlmError::UnknownTask(prompt.task.clone()))
    }

    fn name(&self) -> &str {
        "scripted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_model_returns_canned_text() {
        let m = ScriptedModel::new(vec![("a.task", "{\"ok\":true}")]);
        let c = m.complete(&Prompt::new("sys", "a.task", serde_json::json!({}))).unwrap();
        assert_eq!(c.text, "{\"ok\":true}");
        assert!(m.complete(&Prompt::new("sys", "other", serde_json::json!({}))).is_err());
    }

    #[test]
    fn recording_model_captures_exchanges() {
        let m = RecordingModel::new(ScriptedModel::new(vec![("t", "x")]));
        let _ = m.complete(&Prompt::new("s", "t", serde_json::json!({})));
        let _ = m.complete(&Prompt::new("s", "missing", serde_json::json!({})));
        assert_eq!(m.exchanges(), 2);
        let t = m.transcript();
        assert!(t[0].1.is_ok());
        assert!(t[1].1.is_err());
    }

    #[test]
    fn faulty_model_corrupts_then_recovers() {
        let m = FaultyModel::new(ScriptedModel::new(vec![("t", "{\"k\": \"value\"}")]), 1);
        let p = Prompt::new("s", "t", serde_json::json!({}));
        let first = m.complete(&p).unwrap();
        assert!(serde_json::from_str::<serde_json::Value>(&first.text).is_err());
        let second = m.complete(&p).unwrap();
        assert!(serde_json::from_str::<serde_json::Value>(&second.text).is_ok());
    }
}
