//! The agent↔model protocol: the JSON schemas flowing through prompts and
//! completions.
//!
//! Both sides (the agents in the `arachnet` crate and the deterministic
//! expert model here) speak these types, but always *serialized* — agents
//! put requests into `Prompt::payload` and parse `Completion::text`, so
//! the malformed-output/retry path stays honest.

use std::collections::BTreeMap;

use registry::{DataFormat, Registry};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Shared context
// ---------------------------------------------------------------------------

/// World knowledge available for entity grounding (the equivalent of the
/// lookup context the real prompts embed).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryContext {
    /// Known cable system names.
    pub cable_names: Vec<String>,
    /// "now" on the scenario clock (seconds).
    pub now: i64,
    /// Length of the observable measurement horizon, days.
    pub horizon_days: i64,
}

// ---------------------------------------------------------------------------
// QueryMind
// ---------------------------------------------------------------------------

/// Request payload for `querymind.decompose`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecomposeRequest {
    pub query: String,
    pub context: QueryContext,
    pub registry: Registry,
}

/// Classified analysis intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Intent {
    /// Impact of a specific cable failure (case study 1).
    CableImpact,
    /// What-if disaster impact (case study 2).
    DisasterImpact,
    /// Cascading failure analysis (case study 3).
    CascadeAnalysis,
    /// Root-cause forensic investigation (case study 4).
    ForensicRootCause,
    /// Control-plane incident forensics: prefix hijack / route leak
    /// attribution from MOAS conflicts and export-rule violations.
    ControlPlaneForensics,
    /// Country/AS resilience profiling.
    RiskAssessment,
    /// Unclassified measurement question.
    Generic,
}

/// A disaster mentioned in the query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisasterEntity {
    /// "earthquake" | "hurricane".
    pub kind: String,
    /// Scope word found near it ("globally", "severe"…); free text.
    pub qualifier: String,
}

/// Entities extracted from the query.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Entities {
    pub cables: Vec<String>,
    pub regions: Vec<String>,
    pub countries: Vec<String>,
    pub disasters: Vec<DisasterEntity>,
    /// Failure probability, if the query states one ("10%").
    pub probability: Option<f64>,
    /// Relative lookback, if stated ("three days ago").
    pub lookback_days: Option<i64>,
    /// Requested aggregation level ("country", "as", "link").
    pub target_level: Option<String>,
}

/// One structured sub-problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubProblem {
    pub id: String,
    pub description: String,
    /// The data format that answers this sub-problem.
    pub target: DataFormat,
    /// Ids of sub-problems this one needs solved first.
    pub depends_on: Vec<String>,
    /// Query arguments this sub-problem should consume preferentially
    /// (e.g. "the earthquake specs, not the hurricane specs").
    #[serde(default)]
    pub prefer_args: Vec<String>,
    /// When true, the planner must compute a fresh result even if an
    /// earlier step already produced the target format (per-instance
    /// analyses such as "process each disaster kind separately").
    #[serde(default)]
    pub fresh: bool,
}

impl SubProblem {
    /// A plain sub-problem (no preferences, reusable).
    pub fn new(id: &str, description: &str, target: DataFormat, depends_on: &[&str]) -> Self {
        SubProblem {
            id: id.to_string(),
            description: description.to_string(),
            target,
            depends_on: depends_on.iter().map(|s| s.to_string()).collect(),
            prefer_args: Vec::new(),
            fresh: false,
        }
    }

    /// Marks preferred query arguments.
    pub fn preferring(mut self, args: &[&str]) -> Self {
        self.prefer_args = args.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Requires a fresh computation.
    pub fn fresh(mut self) -> Self {
        self.fresh = true;
        self
    }
}

/// Problem complexity — drives WorkflowScout's adaptive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Complexity {
    Simple,
    Moderate,
    Complex,
}

/// A typed query-argument value QueryMind resolved from the query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolvedArg {
    pub format: DataFormat,
    pub value: serde_json::Value,
}

/// QueryMind's product.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decomposition {
    pub intent: Intent,
    pub entities: Entities,
    /// Named, typed argument values available to the workflow.
    pub provided_args: BTreeMap<String, ResolvedArg>,
    pub sub_problems: Vec<SubProblem>,
    /// Constraint analysis: what limits feasible solutions.
    pub constraints: Vec<String>,
    /// When is the query sufficiently answered.
    pub success_criteria: Vec<String>,
    /// Identified measurement gaps / failure modes.
    pub risks: Vec<String>,
    pub complexity: Complexity,
}

// ---------------------------------------------------------------------------
// WorkflowScout
// ---------------------------------------------------------------------------

/// Request payload for `workflowscout.explore`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExploreRequest {
    pub decomposition: Decomposition,
    pub registry: Registry,
    /// Deterministic diversity seed (ensemble generation varies it).
    pub variant: u64,
}

/// Where a planned step input comes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlannedBinding {
    FromStep(String),
    FromArg(String),
    Const { format: DataFormat, value: serde_json::Value },
}

/// One planned step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedStep {
    pub id: String,
    pub function: String,
    pub bindings: BTreeMap<String, PlannedBinding>,
    /// Which sub-problem this step serves.
    pub serves: String,
    pub rationale: String,
}

/// WorkflowScout's product.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchitecturePlan {
    pub steps: Vec<PlannedStep>,
    /// Step ids whose outputs answer the query.
    pub outputs: Vec<String>,
    /// How many alternative architectures were evaluated.
    pub alternatives_considered: usize,
    /// Distinct frameworks in the chosen architecture.
    pub frameworks: Vec<String>,
    pub rationale: String,
}

// ---------------------------------------------------------------------------
// SolutionWeaver
// ---------------------------------------------------------------------------

/// Request payload for `solutionweaver.implement`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ImplementRequest {
    pub decomposition: Decomposition,
    pub architecture: ArchitecturePlan,
    pub registry: Registry,
    /// Validation errors from a previous attempt (repair loop), if any.
    pub feedback: Vec<String>,
}

/// SolutionWeaver's product: the finished workflow program (same step
/// shape, plus QA steps and declared outputs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImplementationPlan {
    pub workflow_id: String,
    pub steps: Vec<PlannedStep>,
    pub outputs: Vec<String>,
    /// Names of QA measures woven in.
    pub qa_measures: Vec<String>,
}

// ---------------------------------------------------------------------------
// RegistryCurator
// ---------------------------------------------------------------------------

/// Summary of one executed workflow, for pattern mining.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowSummary {
    pub id: String,
    /// Function ids in execution order.
    pub functions: Vec<String>,
    pub success: bool,
}

/// Request payload for `registrycurator.curate`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CurateRequest {
    pub corpus: Vec<WorkflowSummary>,
    pub registry: Registry,
    /// Minimum observations before a pattern is proposed.
    pub min_uses: usize,
}

/// One proposed composite capability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeProposal {
    pub id: String,
    pub sequence: Vec<String>,
    pub capability: String,
    /// How many successful workflows exhibited the pattern.
    pub observed_uses: usize,
}

/// RegistryCurator's product.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CurationProposal {
    pub composites: Vec<CompositeProposal>,
    /// Patterns seen but rejected, with reasons (validation-first).
    pub rejected: Vec<(String, String)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_roundtrips_through_json() {
        let d = Decomposition {
            intent: Intent::CableImpact,
            entities: Entities {
                cables: vec!["SeaMeWe-5".into()],
                target_level: Some("country".into()),
                ..Default::default()
            },
            provided_args: BTreeMap::from([(
                "cable_name".to_string(),
                ResolvedArg {
                    format: DataFormat::Text,
                    value: serde_json::json!("SeaMeWe-5"),
                },
            )]),
            sub_problems: vec![SubProblem::new(
                "deps",
                "identify cable dependencies",
                DataFormat::CableDependencies,
                &[],
            )],
            constraints: vec!["mapping confidence bounds results".into()],
            success_criteria: vec!["per-country impact table produced".into()],
            risks: vec![],
            complexity: Complexity::Moderate,
        };
        let json = serde_json::to_string(&d).unwrap();
        let back: Decomposition = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn architecture_plan_roundtrips() {
        let plan = ArchitecturePlan {
            steps: vec![PlannedStep {
                id: "s1".into(),
                function: "nautilus.map_links".into(),
                bindings: BTreeMap::new(),
                serves: "deps".into(),
                rationale: "cross-layer view".into(),
            }],
            outputs: vec!["s1".into()],
            alternatives_considered: 3,
            frameworks: vec!["nautilus".into()],
            rationale: "direct path".into(),
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: ArchitecturePlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
