//! Solution-space exploration: from a decomposition to a concrete
//! architecture over registry functions.
//!
//! The planner backward-chains from each sub-problem's target format: a
//! format is *satisfiable* if a query argument provides it, an earlier
//! planned step produces it, or some registry function whose required
//! inputs are all satisfiable outputs it. Candidate chains are scored by
//!
//! * execution cost (the entry's [`CostClass`] weight),
//! * unreliability penalty (`(1 − reliability) × 4`),
//! * **framework-spread penalty** — each framework beyond those already in
//!   the plan costs extra. This is what produces the "skilled restraint"
//!   of case study 2: when one framework's function covers the problem,
//!   multi-framework alternatives score worse and are rejected;
//! * a small deterministic jitter keyed by `variant`, giving ensemble
//!   generation (E6) its architectural diversity without nondeterminism.
//!
//! Exploration effort adapts to problem complexity: simple problems take
//! the first valid chain; moderate/complex problems enumerate and compare
//! alternatives — the paper's "adaptive exploration strategy".

use std::collections::{BTreeMap, BTreeSet};

use registry::{CapabilityEntry, DataFormat, Registry};

use crate::protocol::{
    ArchitecturePlan, Complexity, Decomposition, PlannedBinding, PlannedStep,
};

/// How a format is currently satisfied.
#[derive(Debug, Clone, PartialEq)]
enum Source {
    Arg(String),
    Step(String),
}

/// One candidate chain: functions in execution order.
#[derive(Debug, Clone)]
struct Chain {
    functions: Vec<String>,
    score: f64,
}

/// Planner failure, surfaced to the agent as structured text.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanError {
    pub sub_problem: String,
    pub target: DataFormat,
    pub message: String,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sub-problem {} (target {}): {}",
            self.sub_problem, self.target, self.message
        )
    }
}

/// Plans an architecture for the decomposition.
pub fn plan_architecture(
    decomposition: &Decomposition,
    registry: &Registry,
    variant: u64,
) -> Result<ArchitecturePlan, PlanError> {
    let beam = match decomposition.complexity {
        Complexity::Simple => 1,
        Complexity::Moderate => 4,
        Complexity::Complex => 6,
    };

    // Format availability, updated as steps are planned.
    let mut available: Vec<(DataFormat, Source)> = decomposition
        .provided_args
        .iter()
        .map(|(name, arg)| (arg.format, Source::Arg(name.clone())))
        .collect();

    let mut steps: Vec<PlannedStep> = Vec::new();
    let mut frameworks_in_plan: BTreeSet<String> = BTreeSet::new();
    let mut alternatives_total = 0usize;
    let mut sub_problem_answer: BTreeMap<String, String> = BTreeMap::new();
    let mut rationale_parts: Vec<String> = Vec::new();

    for sp in &decomposition.sub_problems {
        // Reuse: if an earlier step already produces the target, bind to it
        // — unless the sub-problem demands a fresh computation.
        if !sp.fresh {
            if let Some((_, Source::Step(sid))) = available
                .iter()
                .find(|(f, s)| f.compatible_with(sp.target) && matches!(s, Source::Step(_)))
            {
                sub_problem_answer.insert(sp.id.clone(), sid.clone());
                rationale_parts.push(format!("{}: reused existing result", sp.id));
                continue;
            }
        }

        let candidates =
            enumerate_chains(sp.target, &available, registry, &frameworks_in_plan, beam, variant);
        alternatives_total += candidates.len();
        let best = candidates.into_iter().min_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .unwrap()
                .then_with(|| a.functions.cmp(&b.functions))
        });
        let chain = best.ok_or_else(|| PlanError {
            sub_problem: sp.id.clone(),
            target: sp.target,
            message: "no registry function chain can produce this format".to_string(),
        })?;

        rationale_parts.push(format!(
            "{}: chain [{}] selected from beam",
            sp.id,
            chain.functions.join(" -> ")
        ));

        // Instantiate the chain.
        for function in &chain.functions {
            let entry = registry.get(&registry::FunctionId::from(function.as_str())).expect(
                "enumerate_chains only returns registered functions",
            );

            // Resolve bindings: sub-problem's preferred args first, then the
            // most recently produced compatible value. Params sharing a
            // format bind to *distinct* sources.
            let mut bindings: BTreeMap<String, PlannedBinding> = BTreeMap::new();
            let mut used: Vec<Source> = Vec::new();
            for param in entry.required_inputs() {
                let preferred = sp.prefer_args.iter().find_map(|name| {
                    available.iter().find(|(f, s)| {
                        f.compatible_with(param.format)
                            && matches!(s, Source::Arg(a) if a == name)
                            && !used.contains(s)
                    })
                });
                // Semantic name match: an argument named like the parameter
                // wins over positional recency (keeps src/dst pairs
                // straight).
                let named = || {
                    available.iter().find(|(f, s)| {
                        f.compatible_with(param.format)
                            && matches!(s, Source::Arg(a) if a == &param.name)
                            && !used.contains(s)
                    })
                };
                let source = preferred.or_else(named).or_else(|| {
                    available
                        .iter()
                        .rev() // prefer the most recently produced value
                        .find(|(f, s)| f.compatible_with(param.format) && !used.contains(s))
                });
                match source {
                    Some((_, src @ Source::Arg(name))) => {
                        bindings
                            .insert(param.name.clone(), PlannedBinding::FromArg(name.clone()));
                        used.push(src.clone());
                    }
                    Some((_, src @ Source::Step(sid))) => {
                        bindings
                            .insert(param.name.clone(), PlannedBinding::FromStep(sid.clone()));
                        used.push(src.clone());
                    }
                    None => {
                        return Err(PlanError {
                            sub_problem: sp.id.clone(),
                            target: sp.target,
                            message: format!(
                                "planned chain left parameter {} of {} unsatisfied",
                                param.name, function
                            ),
                        });
                    }
                }
            }

            // Dedup: reuse an existing step only when it is the *same call*
            // (same function, same bindings).
            if let Some(existing) =
                steps.iter().find(|s| &s.function == function && s.bindings == bindings)
            {
                let sid = existing.id.clone();
                sub_problem_answer.insert(sp.id.clone(), sid);
                continue;
            }

            let step_id = format!("s{}_{}", steps.len() + 1, short_name(function));
            available.push((entry.output, Source::Step(step_id.clone())));
            frameworks_in_plan.insert(entry.framework.clone());
            steps.push(PlannedStep {
                id: step_id.clone(),
                function: function.clone(),
                bindings,
                serves: sp.id.clone(),
                rationale: entry.capability.clone(),
            });
            sub_problem_answer.insert(sp.id.clone(), step_id);
        }
    }

    // Outputs: answers of leaf sub-problems (nothing depends on them).
    let depended: BTreeSet<&String> =
        decomposition.sub_problems.iter().flat_map(|sp| sp.depends_on.iter()).collect();
    let mut outputs: Vec<String> = decomposition
        .sub_problems
        .iter()
        .filter(|sp| !depended.contains(&sp.id))
        .filter_map(|sp| sub_problem_answer.get(&sp.id).cloned())
        .collect();
    outputs.dedup();
    if outputs.is_empty() {
        if let Some(last) = steps.last() {
            outputs.push(last.id.clone());
        }
    }

    Ok(ArchitecturePlan {
        steps,
        outputs,
        alternatives_considered: alternatives_total,
        frameworks: frameworks_in_plan.into_iter().collect(),
        rationale: rationale_parts.join("; "),
    })
}

fn short_name(function: &str) -> String {
    function.split('.').next_back().unwrap_or(function).to_string()
}

/// Enumerates up to `beam` valid chains producing `target`.
fn enumerate_chains(
    target: DataFormat,
    available: &[(DataFormat, Source)],
    registry: &Registry,
    frameworks_in_plan: &BTreeSet<String>,
    beam: usize,
    variant: u64,
) -> Vec<Chain> {
    let mut candidates: Vec<Chain> = Vec::new();
    for entry in registry.producing(target) {
        if let Some(chain) =
            chain_via(entry, available, registry, frameworks_in_plan, variant, 5, &mut BTreeSet::new())
        {
            candidates.push(chain);
        }
        if candidates.len() >= beam.max(1) * 3 {
            break; // cap the enumeration work
        }
    }
    candidates.sort_by(|a, b| {
        a.score.partial_cmp(&b.score).unwrap().then_with(|| a.functions.cmp(&b.functions))
    });
    candidates.truncate(beam.max(1));
    candidates
}

/// Builds a chain rooted at `entry`, recursively satisfying its required
/// inputs. Returns `None` when an input cannot be satisfied within the
/// depth budget.
fn chain_via(
    entry: &CapabilityEntry,
    available: &[(DataFormat, Source)],
    registry: &Registry,
    frameworks_in_plan: &BTreeSet<String>,
    variant: u64,
    depth: usize,
    in_progress: &mut BTreeSet<String>,
) -> Option<Chain> {
    if depth == 0 || in_progress.contains(&entry.id.0) {
        return None;
    }
    in_progress.insert(entry.id.0.clone());

    let mut functions: Vec<String> = Vec::new();
    let mut score = step_cost(entry, frameworks_in_plan, &functions, variant);

    // Group required inputs by format: params sharing a format need that
    // many *distinct* sources (the instantiation phase binds them
    // distinctly, so feasibility must count, not just test).
    let mut needs: BTreeMap<DataFormat, usize> = BTreeMap::new();
    for param in entry.required_inputs() {
        *needs.entry(param.format).or_default() += 1;
    }

    for (format, k) in needs {
        let available_count =
            available.iter().filter(|(f, _)| f.compatible_with(format)).count();
        let chain_count = functions
            .iter()
            .filter(|f| {
                registry
                    .get(&registry::FunctionId::from(f.as_str()))
                    .map(|e| e.output.compatible_with(format))
                    == Some(true)
            })
            .count();
        let missing = k.saturating_sub(available_count + chain_count);
        if missing == 0 {
            continue;
        }
        if missing > 1 {
            // Planning several independent instances of one format inside a
            // single chain is out of scope; the decomposition expresses that
            // as separate fresh sub-problems instead.
            in_progress.remove(&entry.id.0);
            return None;
        }
        // Recurse: pick the cheapest provider for the one missing input.
        let mut best: Option<Chain> = None;
        for provider in registry.producing(format) {
            if let Some(c) = chain_via(
                provider,
                available,
                registry,
                frameworks_in_plan,
                variant,
                depth - 1,
                in_progress,
            ) {
                if best.as_ref().is_none_or(|b| c.score < b.score) {
                    best = Some(c);
                }
            }
        }
        match best {
            Some(sub) => {
                for f in sub.functions {
                    if !functions.contains(&f) {
                        functions.push(f);
                    }
                }
                score += sub.score;
            }
            None => {
                in_progress.remove(&entry.id.0);
                return None;
            }
        }
    }

    functions.push(entry.id.0.clone());
    in_progress.remove(&entry.id.0);
    Some(Chain { functions, score })
}

/// The planner's cost model for one step.
fn step_cost(
    entry: &CapabilityEntry,
    frameworks_in_plan: &BTreeSet<String>,
    chain_so_far: &[String],
    variant: u64,
) -> f64 {
    let _ = chain_so_far;
    let mut cost = entry.cost.weight() + (1.0 - entry.reliability) * 4.0;
    if !frameworks_in_plan.contains(&entry.framework) {
        cost += 2.0; // framework-spread penalty (restraint)
    }
    if variant > 0 {
        // Deterministic jitter for ensemble diversity: up to ±0.4.
        let h = world_hash(&[variant, id_hash(&entry.id.0)]);
        cost += ((h % 800) as f64 / 1000.0) - 0.4;
    }
    cost
}

fn id_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// SplitMix-style mixer (kept local: the llm crate does not depend on the
/// world crate).
fn world_hash(parts: &[u64]) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for &p in parts {
        let mut z = h ^ p.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Entities, Intent, ResolvedArg, SubProblem};
    use registry::{CapabilityEntry, CostClass, Param};

    /// A miniature two-framework registry.
    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register(CapabilityEntry::new(
            "nautilus.map_links",
            "nautilus",
            "maps links to cables",
            vec![],
            DataFormat::MappingTable,
        ))
        .unwrap();
        r.register(CapabilityEntry::new(
            "nautilus.dependency_table",
            "nautilus",
            "builds cable dependency view",
            vec![Param::required("mapping", DataFormat::MappingTable)],
            DataFormat::DependencyTable,
        ))
        .unwrap();
        r.register(CapabilityEntry::new(
            "util.cable_failure_event",
            "util",
            "builds a failure event for a named cable",
            vec![Param::required("cable_name", DataFormat::Text)],
            DataFormat::FailureEventSpec,
        ))
        .unwrap();
        r.register(CapabilityEntry::new(
            "xaminer.process_event",
            "xaminer",
            "processes failure event into impact",
            vec![
                Param::required("event", DataFormat::FailureEventSpec),
                Param::required("deps", DataFormat::DependencyTable),
            ],
            DataFormat::FailureImpact,
        ))
        .unwrap();
        r.register(CapabilityEntry::new(
            "xaminer.impact_report",
            "xaminer",
            "aggregates impact metrics",
            vec![Param::required("impact", DataFormat::FailureImpact)],
            DataFormat::ImpactReport,
        ))
        .unwrap();
        r.register(CapabilityEntry::new(
            "xaminer.country_aggregate",
            "xaminer",
            "extracts country-level table",
            vec![Param::required("report", DataFormat::ImpactReport)],
            DataFormat::CountryImpactTable,
        ))
        .unwrap();
        // A deliberately expensive cross-framework alternative that a
        // restrained planner must avoid.
        r.register(
            CapabilityEntry::new(
                "bgp.country_reachability",
                "bgp",
                "estimates country impact from BGP reachability",
                vec![Param::required("updates", DataFormat::BgpUpdates)],
                DataFormat::CountryImpactTable,
            )
            .with_cost(CostClass::Expensive),
        )
        .unwrap();
        r.register(
            CapabilityEntry::new(
                "bgp.updates",
                "bgp",
                "fetches BGP updates",
                vec![],
                DataFormat::BgpUpdates,
            )
            .with_cost(CostClass::Expensive),
        )
        .unwrap();
        r
    }

    fn decomposition() -> Decomposition {
        Decomposition {
            intent: Intent::CableImpact,
            entities: Entities::default(),
            provided_args: BTreeMap::from([(
                "cable_name".to_string(),
                ResolvedArg { format: DataFormat::Text, value: serde_json::json!("SeaMeWe-5") },
            )]),
            sub_problems: vec![
                SubProblem {
                    id: "deps".into(),
                    description: "identify cable dependencies".into(),
                    target: DataFormat::DependencyTable,
                    depends_on: vec![],
                    prefer_args: vec![],
                    fresh: false,
                },
                SubProblem {
                    id: "impact".into(),
                    description: "process the failure event".into(),
                    target: DataFormat::FailureImpact,
                    depends_on: vec!["deps".into()],
                    prefer_args: vec![],
                    fresh: false,
                },
                SubProblem {
                    id: "aggregate".into(),
                    description: "aggregate to country level".into(),
                    target: DataFormat::CountryImpactTable,
                    depends_on: vec!["impact".into()],
                    prefer_args: vec![],
                    fresh: false,
                },
            ],
            constraints: vec![],
            success_criteria: vec![],
            risks: vec![],
            complexity: Complexity::Moderate,
        }
    }

    #[test]
    fn plans_the_expected_cable_impact_chain() {
        let plan = plan_architecture(&decomposition(), &registry(), 0).unwrap();
        let fns: Vec<&str> = plan.steps.iter().map(|s| s.function.as_str()).collect();
        assert!(fns.contains(&"nautilus.map_links"));
        assert!(fns.contains(&"nautilus.dependency_table"));
        assert!(fns.contains(&"util.cable_failure_event"));
        assert!(fns.contains(&"xaminer.process_event"));
        assert!(fns.contains(&"xaminer.country_aggregate"));
        // The expensive BGP detour must not be chosen.
        assert!(!fns.contains(&"bgp.country_reachability"));
        assert_eq!(plan.outputs.len(), 1);
        assert!(plan.alternatives_considered >= 3, "moderate complexity explores");
    }

    #[test]
    fn bindings_are_fully_resolved() {
        let plan = plan_architecture(&decomposition(), &registry(), 0).unwrap();
        for step in &plan.steps {
            let entry = registry()
                .get(&registry::FunctionId::from(step.function.as_str()))
                .cloned()
                .unwrap();
            for p in entry.required_inputs() {
                assert!(
                    step.bindings.contains_key(&p.name),
                    "step {} missing binding {}",
                    step.id,
                    p.name
                );
            }
        }
        // cable_name arg feeds the event builder.
        let ev = plan
            .steps
            .iter()
            .find(|s| s.function == "util.cable_failure_event")
            .unwrap();
        assert_eq!(
            ev.bindings.get("cable_name"),
            Some(&PlannedBinding::FromArg("cable_name".to_string()))
        );
    }

    #[test]
    fn unsatisfiable_target_errors() {
        let mut d = decomposition();
        d.sub_problems.push(SubProblem::new(
            "impossible",
            "needs a format nothing makes",
            DataFormat::ForensicVerdict,
            &[],
        ));
        let err = plan_architecture(&d, &registry(), 0).unwrap_err();
        assert_eq!(err.target, DataFormat::ForensicVerdict);
    }

    #[test]
    fn variants_can_change_the_plan_deterministically() {
        let p0a = plan_architecture(&decomposition(), &registry(), 0).unwrap();
        let p0b = plan_architecture(&decomposition(), &registry(), 0).unwrap();
        assert_eq!(p0a, p0b, "same variant, same plan");
        // Different variants may or may not change the plan, but must stay
        // deterministic.
        let p7a = plan_architecture(&decomposition(), &registry(), 7).unwrap();
        let p7b = plan_architecture(&decomposition(), &registry(), 7).unwrap();
        assert_eq!(p7a, p7b);
    }

    #[test]
    fn simple_complexity_uses_first_valid_path() {
        let mut d = decomposition();
        d.complexity = Complexity::Simple;
        let plan = plan_architecture(&d, &registry(), 0).unwrap();
        assert!(!plan.steps.is_empty());
    }

    #[test]
    fn framework_penalty_enforces_restraint() {
        // With only the aggregate sub-problem and BGP the only *extra*
        // framework, the xaminer chain must win despite being longer.
        let d = decomposition();
        let plan = plan_architecture(&d, &registry(), 0).unwrap();
        assert!(
            !plan.frameworks.contains(&"bgp".to_string()),
            "restraint: BGP should not appear, got {:?}",
            plan.frameworks
        );
    }
}
