//! Submarine cable systems.
//!
//! A curated table of 25 named systems reproduces the real-world cable
//! geography the paper's queries talk about (SeaMeWe-5, AAE-1, FALCON, the
//! Europe–Asia corridor through Egypt and the Red Sea, transatlantic and
//! transpacific trunks). The generator later adds short regional "festoon"
//! cables between nearby coastal cities so the cable count and route
//! diversity resemble the real topology.
//!
//! A cable is an ordered sequence of landings; consecutive pairs form
//! [`CableSegment`]s. Cutting a segment (or the whole system) fails every
//! IP link whose physical path rides it.

use net_model::{CableId, CityId, GeoPoint};
use serde::{Deserialize, Serialize};

use crate::cities::{city_index, City};

/// One span of a cable between two consecutive landings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CableSegment {
    /// Landing city at one end.
    pub a: CityId,
    /// Landing city at the other end.
    pub b: CityId,
    /// Sea-path length (great circle × slack factor), km.
    pub length_km: f64,
}

/// A submarine cable system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cable {
    pub id: CableId,
    pub name: String,
    /// Ordered landing cities, west-to-east as laid.
    pub landings: Vec<CityId>,
    /// Consecutive landing pairs.
    pub segments: Vec<CableSegment>,
    /// Ready-for-service year (used for dataset realism only).
    pub rfs_year: u16,
    /// Design capacity in Tbps.
    pub capacity_tbps: f64,
}

impl Cable {
    /// Builds a cable from an ordered landing list, deriving segments.
    ///
    /// Each system gets its own deterministic slack factor on top of the
    /// base sea-path inflation: real parallel systems serving the same
    /// corridor differ in routing, burial detours and repair slack, which
    /// is what makes them distinguishable by latency — the property the
    /// Nautilus-style mapper depends on.
    pub fn from_landings(
        id: CableId,
        name: impl Into<String>,
        landings: Vec<CityId>,
        rfs_year: u16,
        capacity_tbps: f64,
        cities: &[City],
    ) -> Cable {
        assert!(landings.len() >= 2, "a cable needs at least two landings");
        let slack = system_slack(id);
        let segments = landings
            .windows(2)
            .map(|w| {
                let pa = cities[w[0].index()].location;
                let pb = cities[w[1].index()].location;
                CableSegment {
                    a: w[0],
                    b: w[1],
                    length_km: sea_path_km(&pa, &pb) * slack,
                }
            })
            .collect();
        Cable { id, name: name.into(), landings, segments, rfs_year, capacity_tbps }
    }

    /// Total laid length, km.
    pub fn total_length_km(&self) -> f64 {
        self.segments.iter().map(|s| s.length_km).sum()
    }

    /// Whether the cable lands in the given city.
    pub fn lands_at(&self, city: CityId) -> bool {
        self.landings.contains(&city)
    }
}

/// Sea-path length between two landings: great circle inflated by slack.
pub fn sea_path_km(a: &GeoPoint, b: &GeoPoint) -> f64 {
    a.distance_km(b) * net_model::geo::CABLE_PATH_INFLATION
}

/// Per-system slack factor in `[1.0, 1.24]`, deterministic in the cable
/// id. Two parallel systems on one corridor therefore have measurably
/// different span lengths.
pub fn system_slack(id: CableId) -> f64 {
    1.0 + 0.04 * ((id.0 as u64 * 7919) % 7) as f64
}

/// One row of the curated cable table.
struct CableRow {
    name: &'static str,
    rfs: u16,
    tbps: f64,
    /// (country code, city name) landing sequence.
    landings: &'static [(&'static str, &'static str)],
}

/// The 25 curated systems. Landing sequences are simplified but
/// geographically faithful: the Europe–Asia systems all funnel through
/// Egypt/Red Sea, FALCON is a Gulf ring, the transatlantic trunks connect
/// the US northeast to western Europe, and so on.
const CURATED: &[CableRow] = &[
    CableRow {
        name: "SeaMeWe-5",
        rfs: 2016,
        tbps: 24.0,
        landings: &[
            ("FR", "Marseille"), ("IT", "Palermo"), ("TR", "Istanbul"), ("EG", "Alexandria"),
            ("SA", "Jeddah"), ("DJ", "Djibouti City"), ("OM", "Muscat"), ("AE", "Fujairah"),
            ("PK", "Karachi"), ("IN", "Mumbai"), ("LK", "Colombo"), ("BD", "Dhaka"),
            ("MM", "Yangon"), ("MY", "Kuala Lumpur"), ("SG", "Singapore"),
        ],
    },
    CableRow {
        name: "SeaMeWe-4",
        rfs: 2005,
        tbps: 4.6,
        landings: &[
            ("FR", "Marseille"), ("IT", "Palermo"), ("EG", "Alexandria"), ("SA", "Jeddah"),
            ("AE", "Fujairah"), ("PK", "Karachi"), ("IN", "Mumbai"), ("LK", "Colombo"),
            ("BD", "Dhaka"), ("TH", "Bangkok"), ("MY", "Kuala Lumpur"), ("SG", "Singapore"),
        ],
    },
    CableRow {
        name: "SEA-ME-WE 3",
        rfs: 1999,
        tbps: 0.96,
        landings: &[
            ("DE", "Hamburg"), ("GB", "London"), ("FR", "Marseille"), ("IT", "Palermo"),
            ("EG", "Alexandria"), ("SA", "Jeddah"), ("DJ", "Djibouti City"), ("OM", "Muscat"),
            ("PK", "Karachi"), ("IN", "Mumbai"), ("LK", "Colombo"), ("MY", "Kuala Lumpur"),
            ("SG", "Singapore"), ("VN", "Ho Chi Minh City"), ("HK", "Hong Kong"),
            ("CN", "Shanghai"), ("TW", "Taipei"), ("KR", "Busan"), ("JP", "Tokyo"),
            ("AU", "Perth"),
        ],
    },
    CableRow {
        name: "AAE-1",
        rfs: 2017,
        tbps: 40.0,
        landings: &[
            ("FR", "Marseille"), ("GR", "Athens"), ("EG", "Alexandria"), ("SA", "Jeddah"),
            ("DJ", "Djibouti City"), ("OM", "Muscat"), ("AE", "Fujairah"), ("QA", "Doha"),
            ("PK", "Karachi"), ("IN", "Mumbai"), ("MM", "Yangon"), ("TH", "Bangkok"),
            ("MY", "Kuala Lumpur"), ("SG", "Singapore"), ("VN", "Ho Chi Minh City"),
            ("HK", "Hong Kong"),
        ],
    },
    CableRow {
        name: "FALCON",
        rfs: 2006,
        tbps: 2.6,
        landings: &[
            ("EG", "Alexandria"), ("SA", "Jeddah"), ("DJ", "Djibouti City"), ("OM", "Muscat"),
            ("QA", "Doha"), ("AE", "Fujairah"), ("PK", "Karachi"), ("IN", "Mumbai"),
            ("KE", "Mombasa"),
        ],
    },
    CableRow {
        name: "IMEWE",
        rfs: 2010,
        tbps: 3.8,
        landings: &[
            ("FR", "Marseille"), ("IT", "Palermo"), ("EG", "Alexandria"), ("SA", "Jeddah"),
            ("AE", "Fujairah"), ("PK", "Karachi"), ("IN", "Mumbai"),
        ],
    },
    CableRow {
        name: "Europe India Gateway",
        rfs: 2011,
        tbps: 3.8,
        landings: &[
            ("GB", "Bude"), ("PT", "Lisbon"), ("ES", "Bilbao"), ("IT", "Palermo"),
            ("EG", "Alexandria"), ("SA", "Jeddah"), ("DJ", "Djibouti City"), ("OM", "Muscat"),
            ("AE", "Fujairah"), ("IN", "Mumbai"),
        ],
    },
    CableRow {
        name: "FLAG Europe-Asia",
        rfs: 1997,
        tbps: 0.01,
        landings: &[
            ("GB", "Bude"), ("ES", "Bilbao"), ("IT", "Palermo"), ("EG", "Alexandria"),
            ("SA", "Jeddah"), ("AE", "Fujairah"), ("IN", "Mumbai"), ("MY", "Kuala Lumpur"),
            ("TH", "Bangkok"), ("HK", "Hong Kong"), ("CN", "Shanghai"), ("JP", "Tokyo"),
        ],
    },
    CableRow {
        name: "PEACE",
        rfs: 2022,
        tbps: 60.0,
        landings: &[
            ("PK", "Karachi"), ("DJ", "Djibouti City"), ("KE", "Mombasa"),
            ("EG", "Alexandria"), ("FR", "Marseille"),
        ],
    },
    CableRow {
        name: "2Africa",
        rfs: 2023,
        tbps: 180.0,
        landings: &[
            ("GB", "Bude"), ("PT", "Lisbon"), ("NG", "Lagos"), ("ZA", "Cape Town"),
            ("KE", "Mombasa"), ("DJ", "Djibouti City"), ("SA", "Jeddah"), ("EG", "Alexandria"),
            ("IT", "Palermo"), ("FR", "Marseille"),
        ],
    },
    CableRow {
        name: "EASSy",
        rfs: 2010,
        tbps: 10.0,
        landings: &[
            ("ZA", "Cape Town"), ("KE", "Mombasa"), ("DJ", "Djibouti City"), ("SA", "Jeddah"),
        ],
    },
    CableRow {
        name: "WACS",
        rfs: 2012,
        tbps: 14.5,
        landings: &[
            ("GB", "Bude"), ("PT", "Lisbon"), ("NG", "Lagos"), ("ZA", "Cape Town"),
        ],
    },
    CableRow {
        name: "TAT-14",
        rfs: 2001,
        tbps: 3.2,
        landings: &[
            ("US", "New York"), ("GB", "Bude"), ("FR", "Marseille"), ("NL", "Amsterdam"),
            ("DE", "Hamburg"),
        ],
    },
    CableRow {
        name: "MAREA",
        rfs: 2018,
        tbps: 200.0,
        landings: &[("US", "New York"), ("ES", "Bilbao")],
    },
    CableRow {
        name: "Grace Hopper",
        rfs: 2022,
        tbps: 340.0,
        landings: &[("US", "New York"), ("GB", "Bude"), ("ES", "Bilbao")],
    },
    CableRow {
        name: "Dunant",
        rfs: 2021,
        tbps: 250.0,
        landings: &[("US", "New York"), ("FR", "Marseille")],
    },
    CableRow {
        name: "FASTER",
        rfs: 2016,
        tbps: 60.0,
        landings: &[("US", "Los Angeles"), ("JP", "Tokyo"), ("TW", "Taipei")],
    },
    CableRow {
        name: "Unity",
        rfs: 2010,
        tbps: 7.68,
        landings: &[("US", "Los Angeles"), ("JP", "Tokyo")],
    },
    CableRow {
        name: "Southern Cross",
        rfs: 2000,
        tbps: 12.0,
        landings: &[("AU", "Sydney"), ("US", "Los Angeles")],
    },
    CableRow {
        name: "Asia-America Gateway",
        rfs: 2009,
        tbps: 2.88,
        landings: &[
            ("US", "Los Angeles"), ("HK", "Hong Kong"), ("VN", "Ho Chi Minh City"),
            ("TH", "Bangkok"), ("MY", "Kuala Lumpur"), ("SG", "Singapore"),
        ],
    },
    CableRow {
        name: "Asia Pacific Gateway",
        rfs: 2016,
        tbps: 54.8,
        landings: &[
            ("JP", "Tokyo"), ("KR", "Busan"), ("CN", "Shanghai"), ("TW", "Taipei"),
            ("HK", "Hong Kong"), ("VN", "Ho Chi Minh City"), ("TH", "Bangkok"),
            ("MY", "Kuala Lumpur"), ("SG", "Singapore"),
        ],
    },
    CableRow {
        name: "APCN-2",
        rfs: 2001,
        tbps: 2.56,
        landings: &[
            ("JP", "Tokyo"), ("KR", "Busan"), ("TW", "Taipei"), ("HK", "Hong Kong"),
            ("CN", "Shanghai"), ("MY", "Kuala Lumpur"), ("SG", "Singapore"),
        ],
    },
    CableRow {
        name: "Australia-Singapore Cable",
        rfs: 2018,
        tbps: 40.0,
        landings: &[("AU", "Perth"), ("ID", "Jakarta"), ("SG", "Singapore")],
    },
    CableRow {
        name: "EllaLink",
        rfs: 2021,
        tbps: 100.0,
        landings: &[("PT", "Lisbon"), ("BR", "Fortaleza")],
    },
    CableRow {
        name: "SAm-1",
        rfs: 2001,
        tbps: 1.92,
        landings: &[("US", "Miami"), ("BR", "Fortaleza"), ("BR", "Sao Paulo")],
    },
];

/// Builds the curated cable systems (ids `0..CURATED.len()`).
pub fn build_curated_cables(cities: &[City]) -> Vec<Cable> {
    CURATED
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let landings: Vec<CityId> =
                row.landings.iter().map(|(cc, name)| city_index(cities, cc, name)).collect();
            Cable::from_landings(
                CableId(i as u32),
                row.name,
                landings,
                row.rfs,
                row.tbps,
                cities,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::build_cities;

    #[test]
    fn curated_cables_build() {
        let cities = build_cities();
        let cables = build_curated_cables(&cities);
        assert_eq!(cables.len(), 25);
        for c in &cables {
            assert_eq!(c.segments.len(), c.landings.len() - 1);
            assert!(c.total_length_km() > 0.0);
        }
    }

    #[test]
    fn seamewe5_geography() {
        let cities = build_cities();
        let cables = build_curated_cables(&cities);
        let smw5 = cables.iter().find(|c| c.name == "SeaMeWe-5").unwrap();
        // Lands in both France and Singapore; total length in a plausible
        // range for a ~20,000 km system (inflated great-circle legs).
        let lands_fr = smw5
            .landings
            .iter()
            .any(|&c| cities[c.index()].country == net_model::Country(*b"FR"));
        let lands_sg = smw5
            .landings
            .iter()
            .any(|&c| cities[c.index()].country == net_model::Country(*b"SG"));
        assert!(lands_fr && lands_sg);
        let len = smw5.total_length_km();
        assert!((12_000.0..30_000.0).contains(&len), "length {len}");
    }

    #[test]
    fn all_europe_asia_systems_transit_egypt() {
        let cities = build_cities();
        let cables = build_curated_cables(&cities);
        let eg = net_model::Country(*b"EG");
        for name in ["SeaMeWe-5", "SeaMeWe-4", "AAE-1", "IMEWE", "FLAG Europe-Asia"] {
            let c = cables.iter().find(|c| c.name == name).unwrap();
            assert!(
                c.landings.iter().any(|&l| cities[l.index()].country == eg),
                "{name} should land in Egypt"
            );
        }
    }

    #[test]
    fn segments_have_positive_length() {
        let cities = build_cities();
        for cable in build_curated_cables(&cities) {
            for seg in &cable.segments {
                assert!(seg.length_km > 0.0, "{} has a zero-length segment", cable.name);
                assert_ne!(seg.a, seg.b);
            }
        }
    }

    #[test]
    fn landings_are_coastal() {
        let cities = build_cities();
        for cable in build_curated_cables(&cities) {
            for &l in &cable.landings {
                assert!(
                    cities[l.index()].coastal,
                    "{} lands at non-coastal {}",
                    cable.name,
                    cities[l.index()].name
                );
            }
        }
    }
}
