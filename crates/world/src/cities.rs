//! The city table: population/PoP centres, coastal flags, and regional hubs.
//!
//! Cities are the nodes of the physical conduit graph. Each country gets one
//! to three cities; coastal cities double as cable landing sites. The table
//! is curated (not generated) so that the cable systems in
//! [`crate::cables`] can reference stable, geographically correct landings.

use net_model::{CityId, Country, GeoPoint, Region};
use serde::{Deserialize, Serialize};

/// A city: a point of presence, potential cable landing, and probe site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct City {
    pub id: CityId,
    pub name: String,
    pub country: Country,
    pub region: Region,
    pub location: GeoPoint,
    /// Coastal cities can host cable landing stations.
    pub coastal: bool,
    /// Regional hubs host tier-1 and content-provider PoPs.
    pub hub: bool,
}

macro_rules! city_table {
    ($( $name:literal, $cc:literal, $region:ident, $lat:literal, $lon:literal, $coastal:literal, $hub:literal; )*) => {
        /// Builds the full city table in canonical order.
        pub fn build_cities() -> Vec<City> {
            let rows: Vec<(&'static str, &[u8; 2], Region, f64, f64, bool, bool)> = vec![
                $( ($name, $cc, Region::$region, $lat, $lon, $coastal, $hub), )*
            ];
            rows.into_iter()
                .enumerate()
                .map(|(i, (name, cc, region, lat, lon, coastal, hub))| City {
                    id: CityId(i as u32),
                    name: name.to_string(),
                    country: Country(*cc),
                    region,
                    location: GeoPoint::of(lat, lon),
                    coastal,
                    hub,
                })
                .collect()
        }
    };
}

// name, country, region, lat, lon, coastal, hub
city_table! {
    "London", b"GB", Europe, 51.51, -0.13, true, true;
    "Bude", b"GB", Europe, 50.83, -4.55, true, false;
    "Marseille", b"FR", Europe, 43.30, 5.37, true, true;
    "Paris", b"FR", Europe, 48.86, 2.35, false, false;
    "Amsterdam", b"NL", Europe, 52.37, 4.90, true, true;
    "Frankfurt", b"DE", Europe, 50.11, 8.68, false, true;
    "Hamburg", b"DE", Europe, 53.55, 9.99, true, false;
    "Lisbon", b"PT", Europe, 38.72, -9.14, true, false;
    "Madrid", b"ES", Europe, 40.42, -3.70, false, false;
    "Bilbao", b"ES", Europe, 43.26, -2.93, true, false;
    "Palermo", b"IT", Europe, 38.12, 13.36, true, false;
    "Milan", b"IT", Europe, 45.46, 9.19, false, false;
    "Athens", b"GR", Europe, 37.98, 23.73, true, false;
    "Zurich", b"CH", Europe, 47.37, 8.54, false, false;
    "Istanbul", b"TR", MiddleEast, 41.01, 28.98, true, false;
    "Alexandria", b"EG", Africa, 31.20, 29.92, true, true;
    "Cairo", b"EG", Africa, 30.04, 31.24, false, false;
    "Jeddah", b"SA", MiddleEast, 21.49, 39.19, true, false;
    "Riyadh", b"SA", MiddleEast, 24.71, 46.68, false, false;
    "Djibouti City", b"DJ", Africa, 11.59, 43.15, true, false;
    "Muscat", b"OM", MiddleEast, 23.61, 58.59, true, false;
    "Fujairah", b"AE", MiddleEast, 25.13, 56.33, true, true;
    "Doha", b"QA", MiddleEast, 25.29, 51.53, true, false;
    "Karachi", b"PK", Asia, 24.86, 67.00, true, false;
    "Mumbai", b"IN", Asia, 19.08, 72.88, true, true;
    "Chennai", b"IN", Asia, 13.08, 80.27, true, false;
    "Colombo", b"LK", Asia, 6.93, 79.85, true, false;
    "Male", b"MV", Asia, 4.18, 73.51, true, false;
    "Dhaka", b"BD", Asia, 23.81, 90.41, true, false;
    "Yangon", b"MM", Asia, 16.87, 96.20, true, false;
    "Bangkok", b"TH", Asia, 13.76, 100.50, true, false;
    "Kuala Lumpur", b"MY", Asia, 3.139, 101.69, true, false;
    "Singapore", b"SG", Asia, 1.35, 103.82, true, true;
    "Jakarta", b"ID", Asia, -6.21, 106.85, true, false;
    "Ho Chi Minh City", b"VN", Asia, 10.82, 106.63, true, false;
    "Hong Kong", b"HK", Asia, 22.32, 114.17, true, true;
    "Shanghai", b"CN", Asia, 31.23, 121.47, true, false;
    "Taipei", b"TW", Asia, 25.03, 121.57, true, false;
    "Busan", b"KR", Asia, 35.18, 129.08, true, false;
    "Tokyo", b"JP", Asia, 35.68, 139.69, true, true;
    "Almaty", b"KZ", Asia, 43.22, 76.85, false, false;
    "Sydney", b"AU", Oceania, -33.87, 151.21, true, true;
    "Perth", b"AU", Oceania, -31.95, 115.86, true, false;
    "New York", b"US", NorthAmerica, 40.71, -74.01, true, true;
    "Los Angeles", b"US", NorthAmerica, 34.05, -118.24, true, true;
    "Miami", b"US", NorthAmerica, 25.76, -80.19, true, false;
    "Toronto", b"CA", NorthAmerica, 43.65, -79.38, true, false;
    "Sao Paulo", b"BR", SouthAmerica, -23.55, -46.63, true, true;
    "Fortaleza", b"BR", SouthAmerica, -3.73, -38.52, true, false;
    "Lagos", b"NG", Africa, 6.45, 3.40, true, false;
    "Mombasa", b"KE", Africa, -4.04, 39.67, true, false;
    "Cape Town", b"ZA", Africa, -33.92, 18.42, true, false;
}

/// Finds a city by `(country code, name)`; panics if absent — the cable
/// table only references cities that exist.
pub fn city_index(cities: &[City], cc: &str, name: &str) -> CityId {
    let country = Country::parse(cc).expect("valid country code");
    cities
        .iter()
        .find(|c| c.country == country && c.name == name)
        .map(|c| c.id)
        .unwrap_or_else(|| panic!("city {name} ({cc}) not in table"))
}

/// The designated hub city of each region (tier-1 interconnection points).
pub fn region_hub(cities: &[City], region: Region) -> CityId {
    cities
        .iter()
        .find(|c| c.region == region && c.hub)
        .or_else(|| cities.iter().find(|c| c.region == region))
        .map(|c| c.id)
        .expect("every region has at least one city")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_ordered() {
        let cities = build_cities();
        for (i, c) in cities.iter().enumerate() {
            assert_eq!(c.id.index(), i);
        }
        assert!(cities.len() >= 50);
    }

    #[test]
    fn every_country_has_a_city() {
        let cities = build_cities();
        for info in net_model::country::all_countries() {
            assert!(
                cities.iter().any(|c| c.country == info.code),
                "{} has no city",
                info.name
            );
        }
    }

    #[test]
    fn coastal_flags_are_consistent_with_country_table() {
        let cities = build_cities();
        for c in &cities {
            if c.coastal {
                let info = c.country.info().expect("known country");
                assert!(info.coastal, "coastal city {} in landlocked {}", c.name, info.name);
            }
        }
    }

    #[test]
    fn city_lookup_by_country_and_name() {
        let cities = build_cities();
        let sg = city_index(&cities, "SG", "Singapore");
        assert_eq!(cities[sg.index()].name, "Singapore");
    }

    #[test]
    fn each_region_has_hub() {
        let cities = build_cities();
        for r in Region::ALL {
            let hub = region_hub(&cities, r);
            assert_eq!(cities[hub.index()].region, r);
        }
    }

    #[test]
    #[should_panic(expected = "not in table")]
    fn unknown_city_panics() {
        let cities = build_cities();
        city_index(&cities, "SG", "Atlantis");
    }
}
