//! Scenario events: the things that go wrong.
//!
//! Two kinds of "events" appear in the paper's case studies and they are
//! deliberately different objects here:
//!
//! * **Timeline events** ([`Event`]) actually happen inside a scenario at a
//!   specific [`SimTime`] — a cable cut, a disaster, a congestion surge.
//!   The BGP and traceroute simulators derive their dumps from them, so the
//!   measurement record organically contains the evidence the forensic
//!   workflow (case study 4) has to dig out.
//! * **Hypothetical events** (case study 2's "assume 10% failure
//!   probability") never enter a timeline; they are *analysis inputs*
//!   evaluated by the Xaminer substrate's event processor.
//!
//! Probabilistic failures are resolved deterministically: whether a given
//! asset fails under a given event is a pure function of
//! `(world seed, event id, asset id, probability)` via [`stable_hash`].

use net_model::{Asn, CableId, GeoPoint, Ipv4Net, Region, SimTime};
use net_model::geo::GeoCircle;
use serde::{Deserialize, Serialize};

/// Identifier of a timeline event within a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventId(pub u32);

impl std::fmt::Display for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event-{}", self.0)
    }
}

/// What happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A full cable-system failure (trawler, anchor drag, air strike…).
    CableCut { cable: CableId },
    /// A single segment failure on a cable.
    SegmentCut { cable: CableId, segment: usize },
    /// An earthquake with a circular footprint; each exposed asset fails
    /// with `failure_prob`.
    Earthquake { footprint: GeoCircle, failure_prob: f64 },
    /// A hurricane; identical mechanics, different label (and typically a
    /// larger footprint with lower per-asset failure probability).
    Hurricane { footprint: GeoCircle, failure_prob: f64 },
    /// Extra one-way latency on paths between two regions (congestion,
    /// DDoS scrubbing detour…). A confounder for forensic analysis.
    CongestionSurge { from: Region, to: Region, extra_ms: f64 },
    /// A control-plane incident: `origin` illegitimately announces
    /// `victim_prefix` (which another AS owns), creating a MOAS conflict.
    /// Topology-neutral: no link fails, but BGP best paths move wherever
    /// the bogus origin wins the route selection.
    PrefixHijack { origin: Asn, victim_prefix: Ipv4Net },
    /// A control-plane incident: `leaker` re-exports its best routes to
    /// *every* neighbour, violating the valley-free export rule (the
    /// classic accidental transit leak). Also topology-neutral.
    RouteLeak { leaker: Asn },
}

impl EventKind {
    /// Short classifier used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::CableCut { .. } => "cable-cut",
            EventKind::SegmentCut { .. } => "segment-cut",
            EventKind::Earthquake { .. } => "earthquake",
            EventKind::Hurricane { .. } => "hurricane",
            EventKind::CongestionSurge { .. } => "congestion-surge",
            EventKind::PrefixHijack { .. } => "prefix-hijack",
            EventKind::RouteLeak { .. } => "route-leak",
        }
    }

    /// Whether the event lives purely in the BGP control plane (no
    /// physical asset fails; the AS-level topology is untouched while
    /// routing policy — origination or export — changes).
    pub fn is_control_plane(&self) -> bool {
        matches!(self, EventKind::PrefixHijack { .. } | EventKind::RouteLeak { .. })
    }

    /// Appends the event's content as stable hash words (a discriminant
    /// followed by every field, floats by bit pattern). Two kinds push
    /// the same words iff they compare equal — provenance hashing and
    /// deterministic script merging both build on this.
    pub fn push_content_words(&self, out: &mut Vec<u64>) {
        match self {
            EventKind::CableCut { cable } => {
                out.extend([1, cable.0 as u64]);
            }
            EventKind::SegmentCut { cable, segment } => {
                out.extend([2, cable.0 as u64, *segment as u64]);
            }
            EventKind::Earthquake { footprint, failure_prob } => {
                out.extend([3]);
                push_circle_words(footprint, *failure_prob, out);
            }
            EventKind::Hurricane { footprint, failure_prob } => {
                out.extend([4]);
                push_circle_words(footprint, *failure_prob, out);
            }
            EventKind::CongestionSurge { from, to, extra_ms } => {
                out.extend([5, *from as u64, *to as u64, extra_ms.to_bits()]);
            }
            EventKind::PrefixHijack { origin, victim_prefix } => {
                out.extend([
                    6,
                    origin.0 as u64,
                    victim_prefix.network().0 as u64,
                    victim_prefix.len() as u64,
                ]);
            }
            EventKind::RouteLeak { leaker } => {
                out.extend([7, leaker.0 as u64]);
            }
        }
    }

    /// The event content folded into one stable word.
    pub fn content_hash(&self) -> u64 {
        let mut words = Vec::new();
        self.push_content_words(&mut words);
        stable_hash(&words)
    }
}

fn push_circle_words(footprint: &GeoCircle, failure_prob: f64, out: &mut Vec<u64>) {
    out.extend([
        footprint.center.lat().to_bits(),
        footprint.center.lon().to_bits(),
        footprint.radius_km.to_bits(),
        failure_prob.to_bits(),
    ]);
}

/// A timeline event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    pub id: EventId,
    pub kind: EventKind,
    /// When the event takes effect.
    pub at: SimTime,
    /// When its effects end (`None` = persists through the horizon; cable
    /// repairs take weeks, longer than any scenario here).
    pub until: Option<SimTime>,
}

impl Event {
    /// Whether the event is in effect at time `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.at && self.until.is_none_or(|end| t < end)
    }
}

/// A hypothetical disaster spec — the analysis input for what-if impact
/// studies (case study 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisasterSpec {
    /// "earthquake" / "hurricane" — free-form label carried into reports.
    pub kind: String,
    pub name: String,
    pub footprint: GeoCircle,
    pub failure_prob: f64,
}

impl DisasterSpec {
    pub fn earthquake(name: impl Into<String>, center: GeoPoint, radius_km: f64, p: f64) -> Self {
        DisasterSpec {
            kind: "earthquake".into(),
            name: name.into(),
            footprint: GeoCircle::new(center, radius_km),
            failure_prob: p,
        }
    }

    pub fn hurricane(name: impl Into<String>, center: GeoPoint, radius_km: f64, p: f64) -> Self {
        DisasterSpec {
            kind: "hurricane".into(),
            name: name.into(),
            footprint: GeoCircle::new(center, radius_km),
            failure_prob: p,
        }
    }
}

/// SplitMix64-style mixing of a sequence of words into one hash.
/// Stable across platforms and releases — scenario outcomes depend on it.
pub fn stable_hash(parts: &[u64]) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for &p in parts {
        let mut z = h ^ p.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    h
}

/// Deterministic Bernoulli draw: does `asset` fail under `event` given
/// probability `p`?
pub fn fails(seed: u64, event: u64, asset: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    let h = stable_hash(&[seed, event, asset]);
    (h as f64 / u64::MAX as f64) < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_activity_window() {
        let e = Event {
            id: EventId(0),
            kind: EventKind::CableCut { cable: CableId(1) },
            at: SimTime(100),
            until: None,
        };
        assert!(!e.active_at(SimTime(99)));
        assert!(e.active_at(SimTime(100)));
        assert!(e.active_at(SimTime(1_000_000)));

        let bounded = Event { until: Some(SimTime(200)), ..e };
        assert!(bounded.active_at(SimTime(150)));
        assert!(!bounded.active_at(SimTime(200)));
    }

    #[test]
    fn stable_hash_is_stable_and_sensitive() {
        let a = stable_hash(&[1, 2, 3]);
        let b = stable_hash(&[1, 2, 3]);
        let c = stable_hash(&[1, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fails_edge_probabilities() {
        assert!(!fails(42, 1, 1, 0.0));
        assert!(fails(42, 1, 1, 1.0));
    }

    #[test]
    fn fails_rate_approximates_probability() {
        let p = 0.1;
        let n = 10_000;
        let hits = (0..n).filter(|&i| fails(42, 7, i, p)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - p).abs() < 0.02, "rate {rate} too far from {p}");
    }

    #[test]
    fn fails_is_deterministic() {
        for i in 0..100u64 {
            assert_eq!(fails(1, 2, i, 0.3), fails(1, 2, i, 0.3));
        }
    }

    #[test]
    fn disaster_spec_constructors() {
        let q = DisasterSpec::earthquake("Aegean", GeoPoint::of(38.0, 25.0), 300.0, 0.1);
        assert_eq!(q.kind, "earthquake");
        assert!((q.failure_prob - 0.1).abs() < 1e-12);
        let h = DisasterSpec::hurricane("H1", GeoPoint::of(25.0, -80.0), 500.0, 0.1);
        assert_eq!(h.kind, "hurricane");
    }
}
