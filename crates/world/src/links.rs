//! IP-layer links and announced prefixes.
//!
//! An [`IpLink`] is a layer-3 adjacency between routers of two ASes at
//! specific cities. Its `path` is the physical route it rides (computed by
//! Dijkstra over the conduit graph), which determines both its propagation
//! latency and — crucially for the resilience analyses — the set of
//! submarine cables it depends on.

use net_model::{Asn, CityId, Ipv4Addr, Ipv4Net, LinkId, PrefixId};
use serde::{Deserialize, Serialize};

use crate::physical::PhysicalPath;

/// What the link physically rides. `Submarine` links ride at least one
/// cable; `Terrestrial` links never leave land; `Metro` links connect
/// routers within one city.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Conduit {
    Metro,
    Terrestrial,
    Submarine,
}

/// One endpoint of an IP link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkEnd {
    pub asn: Asn,
    pub city: CityId,
    /// Interface address on the link's /30.
    pub addr: Ipv4Addr,
}

/// An IP-layer link between two ASes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IpLink {
    pub id: LinkId,
    pub a: LinkEnd,
    pub b: LinkEnd,
    /// One-way propagation latency, ms (router/serialization overhead
    /// excluded; the traceroute simulator adds per-hop noise).
    pub latency_ms: f64,
    /// Provisioned capacity, Gbps.
    pub capacity_gbps: f64,
    /// Physical route the link rides.
    pub path: PhysicalPath,
    /// Conduit classification derived from `path`.
    pub conduit: Conduit,
}

impl IpLink {
    /// The two ASes the link connects, lower ASN first.
    pub fn as_pair(&self) -> (Asn, Asn) {
        if self.a.asn <= self.b.asn {
            (self.a.asn, self.b.asn)
        } else {
            (self.b.asn, self.a.asn)
        }
    }

    /// Whether the link connects the given pair (order-insensitive).
    pub fn connects(&self, x: Asn, y: Asn) -> bool {
        (self.a.asn == x && self.b.asn == y) || (self.a.asn == y && self.b.asn == x)
    }
}

/// An announced prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixInfo {
    pub id: PrefixId,
    pub net: Ipv4Net,
    /// Originating AS.
    pub origin: Asn,
}

/// Classifies a physical path into a conduit kind.
pub fn classify_conduit(path: &PhysicalPath) -> Conduit {
    if path.hops.is_empty() {
        Conduit::Metro
    } else if path.cables().is_empty() {
        Conduit::Terrestrial
    } else {
        Conduit::Submarine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::PathHop;
    use net_model::CableId;

    fn end(asn: u32, city: u32, addr: u32) -> LinkEnd {
        LinkEnd { asn: Asn(asn), city: CityId(city), addr: Ipv4Addr(addr) }
    }

    #[test]
    fn as_pair_is_ordered() {
        let l = IpLink {
            id: LinkId(0),
            a: end(20, 0, 1),
            b: end(10, 1, 2),
            latency_ms: 1.0,
            capacity_gbps: 100.0,
            path: PhysicalPath::default(),
            conduit: Conduit::Metro,
        };
        assert_eq!(l.as_pair(), (Asn(10), Asn(20)));
        assert!(l.connects(Asn(10), Asn(20)));
        assert!(l.connects(Asn(20), Asn(10)));
        assert!(!l.connects(Asn(10), Asn(30)));
    }

    #[test]
    fn conduit_classification() {
        let metro = PhysicalPath { cities: vec![CityId(0)], hops: vec![] };
        assert_eq!(classify_conduit(&metro), Conduit::Metro);

        let land = PhysicalPath {
            cities: vec![CityId(0), CityId(1)],
            hops: vec![PathHop::Terrestrial { length_km: 100.0 }],
        };
        assert_eq!(classify_conduit(&land), Conduit::Terrestrial);

        let sea = PhysicalPath {
            cities: vec![CityId(0), CityId(1)],
            hops: vec![PathHop::Cable { cable: CableId(0), segment: 0, length_km: 5000.0 }],
        };
        assert_eq!(classify_conduit(&sea), Conduit::Submarine);
    }
}
