//! The physical conduit graph and shortest-path machinery.
//!
//! Nodes are cities. Edges are either submarine cable segments (tagged with
//! the owning [`CableId`]) or terrestrial conduits. IP links ride the
//! shortest physical path between their endpoint cities, which is what ties
//! the network layer to the physical layer: an IP link "depends on" every
//! cable its path traverses.
//!
//! Dijkstra runs with deterministic tie-breaking (cost, then node id) so
//! that identical worlds always produce identical paths.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use net_model::{CableId, CityId};
use serde::{Deserialize, Serialize};

use crate::cables::Cable;
use crate::cities::City;

/// A terrestrial conduit between two cities (undirected).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TerrestrialEdge {
    pub a: CityId,
    pub b: CityId,
    /// Land route length (great circle × detour factor), km.
    pub length_km: f64,
}

/// One hop of a physical path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PathHop {
    /// Riding segment `segment` of cable `cable`.
    Cable { cable: CableId, segment: usize, length_km: f64 },
    /// Riding a terrestrial conduit.
    Terrestrial { length_km: f64 },
}

impl PathHop {
    pub fn length_km(&self) -> f64 {
        match self {
            PathHop::Cable { length_km, .. } => *length_km,
            PathHop::Terrestrial { length_km } => *length_km,
        }
    }
}

/// A concrete physical route between two cities.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PhysicalPath {
    /// Visited cities, endpoints included.
    pub cities: Vec<CityId>,
    /// Conduit hops, one fewer than `cities`.
    pub hops: Vec<PathHop>,
}

impl PhysicalPath {
    /// Total route length in km.
    pub fn length_km(&self) -> f64 {
        self.hops.iter().map(|h| h.length_km()).sum()
    }

    /// One-way propagation latency over this path, in ms.
    pub fn propagation_ms(&self) -> f64 {
        self.length_km() / net_model::geo::FIBER_SPEED_KM_PER_MS
    }

    /// The distinct cables this path rides, in first-traversal order.
    pub fn cables(&self) -> Vec<CableId> {
        let mut seen = Vec::new();
        for hop in &self.hops {
            if let PathHop::Cable { cable, .. } = hop {
                if !seen.contains(cable) {
                    seen.push(*cable);
                }
            }
        }
        seen
    }

    /// Whether any hop rides the given cable.
    pub fn uses_cable(&self, cable: CableId) -> bool {
        self.hops.iter().any(|h| matches!(h, PathHop::Cable { cable: c, .. } if *c == cable))
    }
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    /// Source node (kept so an undirected edge has a stable identity).
    from_hint: CityId,
    to: CityId,
    length_km: f64,
    hop: PathHop,
}

/// Adjacency-list view of the conduit graph, with Dijkstra.
#[derive(Debug, Clone)]
pub struct PhysicalGraph {
    adj: BTreeMap<CityId, Vec<Edge>>,
    node_count: usize,
}

impl PhysicalGraph {
    /// Builds the graph from cables and terrestrial edges.
    pub fn build(
        cities: &[City],
        cables: &[Cable],
        terrestrial: &[TerrestrialEdge],
    ) -> PhysicalGraph {
        let mut adj: BTreeMap<CityId, Vec<Edge>> = BTreeMap::new();
        for c in cities {
            adj.insert(c.id, Vec::new());
        }
        for cable in cables {
            for (si, seg) in cable.segments.iter().enumerate() {
                let hop = PathHop::Cable { cable: cable.id, segment: si, length_km: seg.length_km };
                adj.get_mut(&seg.a).expect("known city").push(Edge {
                    from_hint: seg.a,
                    to: seg.b,
                    length_km: seg.length_km,
                    hop,
                });
                adj.get_mut(&seg.b).expect("known city").push(Edge {
                    from_hint: seg.b,
                    to: seg.a,
                    length_km: seg.length_km,
                    hop,
                });
            }
        }
        for t in terrestrial {
            let hop = PathHop::Terrestrial { length_km: t.length_km };
            adj.get_mut(&t.a).expect("known city").push(Edge {
                from_hint: t.a,
                to: t.b,
                length_km: t.length_km,
                hop,
            });
            adj.get_mut(&t.b).expect("known city").push(Edge {
                from_hint: t.b,
                to: t.a,
                length_km: t.length_km,
                hop,
            });
        }
        // Deterministic neighbour order.
        for edges in adj.values_mut() {
            edges.sort_by(|x, y| {
                x.length_km.total_cmp(&y.length_km).then(x.to.cmp(&y.to))
            });
        }
        PhysicalGraph { adj, node_count: cities.len() }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Shortest path by length between two cities, or `None` if the graph
    /// is disconnected between them.
    pub fn shortest_path(&self, from: CityId, to: CityId) -> Option<PhysicalPath> {
        self.shortest_path_biased(from, to, None)
    }

    /// Shortest path under a deterministic per-edge weight bias.
    ///
    /// With `bias = Some(seed)`, every edge's weight is multiplied by a
    /// factor in `[0.75, 1.25)` derived from `(seed, edge identity)`. The
    /// world generator gives every IP link its own seed so that parallel
    /// cable systems on the same corridor each end up carrying links —
    /// matching the route diversity of the real Internet instead of
    /// funnelling everything onto the single geometrically-shortest system.
    pub fn shortest_path_biased(
        &self,
        from: CityId,
        to: CityId,
        bias: Option<u64>,
    ) -> Option<PhysicalPath> {
        if from == to {
            return Some(PhysicalPath { cities: vec![from], hops: vec![] });
        }

        #[derive(PartialEq)]
        struct State {
            cost_mm: u64, // millimetres, for exact integer ordering
            node: CityId,
        }
        impl Eq for State {}
        impl Ord for State {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap with deterministic tie-break on node id.
                other
                    .cost_mm
                    .cmp(&self.cost_mm)
                    .then_with(|| other.node.cmp(&self.node))
            }
        }
        impl PartialOrd for State {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let to_mm = |km: f64| (km * 1e6).round() as u64;
        let weight = |e: &Edge| -> u64 {
            match bias {
                None => to_mm(e.length_km),
                Some(seed) => {
                    let ident = match e.hop {
                        PathHop::Cable { cable, segment, .. } => {
                            0x1_0000_0000u64 | ((cable.0 as u64) << 16) | segment as u64
                        }
                        PathHop::Terrestrial { .. } => {
                            let (lo, hi) = if e.to.0 < e.from_hint.0 {
                                (e.to.0, e.from_hint.0)
                            } else {
                                (e.from_hint.0, e.to.0)
                            };
                            0x2_0000_0000u64 | ((lo as u64) << 16) | hi as u64
                        }
                    };
                    let h = crate::events::stable_hash(&[seed, ident]);
                    let factor = 0.75 + (h % 1000) as f64 / 2000.0; // [0.75, 1.25)
                    to_mm(e.length_km * factor)
                }
            }
        };

        let mut dist: BTreeMap<CityId, u64> = BTreeMap::new();
        let mut prev: BTreeMap<CityId, (CityId, PathHop)> = BTreeMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(from, 0);
        heap.push(State { cost_mm: 0, node: from });

        while let Some(State { cost_mm, node }) = heap.pop() {
            if node == to {
                break;
            }
            if cost_mm > *dist.get(&node).unwrap_or(&u64::MAX) {
                continue;
            }
            for e in self.adj.get(&node).into_iter().flatten() {
                let next = cost_mm + weight(e);
                if next < *dist.get(&e.to).unwrap_or(&u64::MAX) {
                    dist.insert(e.to, next);
                    prev.insert(e.to, (node, e.hop));
                    heap.push(State { cost_mm: next, node: e.to });
                }
            }
        }

        if !dist.contains_key(&to) {
            return None;
        }
        // Reconstruct.
        let mut cities = vec![to];
        let mut hops = Vec::new();
        let mut cur = to;
        while cur != from {
            let (p, hop) = prev.get(&cur).copied()?;
            hops.push(hop);
            cities.push(p);
            cur = p;
        }
        cities.reverse();
        hops.reverse();
        Some(PhysicalPath { cities, hops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cables::build_curated_cables;
    use crate::cities::{build_cities, city_index};

    fn graph() -> (Vec<City>, PhysicalGraph) {
        let cities = build_cities();
        let cables = build_curated_cables(&cities);
        // A couple of terrestrial edges for the test.
        let terrestrial = vec![
            TerrestrialEdge {
                a: city_index(&cities, "FR", "Marseille"),
                b: city_index(&cities, "FR", "Paris"),
                length_km: 800.0,
            },
            TerrestrialEdge {
                a: city_index(&cities, "FR", "Paris"),
                b: city_index(&cities, "GB", "London"),
                length_km: 450.0,
            },
        ];
        let g = PhysicalGraph::build(&cities, &cables, &terrestrial);
        (cities, g)
    }

    #[test]
    fn self_path_is_empty() {
        let (cities, g) = graph();
        let sg = city_index(&cities, "SG", "Singapore");
        let p = g.shortest_path(sg, sg).unwrap();
        assert_eq!(p.hops.len(), 0);
        assert_eq!(p.length_km(), 0.0);
    }

    #[test]
    fn marseille_to_singapore_rides_a_europe_asia_system() {
        let (cities, g) = graph();
        let mrs = city_index(&cities, "FR", "Marseille");
        let sg = city_index(&cities, "SG", "Singapore");
        let p = g.shortest_path(mrs, sg).expect("connected");
        assert!(!p.cables().is_empty(), "sea route must use cables");
        assert!(p.length_km() > 9_000.0, "got {}", p.length_km());
        // Propagation should be tens of milliseconds.
        assert!(p.propagation_ms() > 40.0);
    }

    #[test]
    fn paths_are_deterministic() {
        let (cities, g) = graph();
        let lon = city_index(&cities, "GB", "London");
        let hk = city_index(&cities, "HK", "Hong Kong");
        let p1 = g.shortest_path(lon, hk).unwrap();
        let p2 = g.shortest_path(lon, hk).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn terrestrial_edge_used_for_inland_city() {
        let (cities, g) = graph();
        let paris = city_index(&cities, "FR", "Paris");
        let mrs = city_index(&cities, "FR", "Marseille");
        let p = g.shortest_path(paris, mrs).unwrap();
        assert_eq!(p.hops.len(), 1);
        assert!(matches!(p.hops[0], PathHop::Terrestrial { .. }));
    }

    #[test]
    fn disconnected_when_no_conduits_reach() {
        let cities = build_cities();
        let g = PhysicalGraph::build(&cities, &[], &[]);
        let a = city_index(&cities, "FR", "Paris");
        let b = city_index(&cities, "SG", "Singapore");
        assert!(g.shortest_path(a, b).is_none());
    }

    #[test]
    fn path_endpoints_and_hop_counts_align() {
        let (cities, g) = graph();
        let ny = city_index(&cities, "US", "New York");
        let tokyo = city_index(&cities, "JP", "Tokyo");
        let p = g.shortest_path(ny, tokyo).unwrap();
        assert_eq!(p.cities.first(), Some(&ny));
        assert_eq!(p.cities.last(), Some(&tokyo));
        assert_eq!(p.cities.len(), p.hops.len() + 1);
    }
}
