//! Measurement probes: RIPE-Atlas-style vantage points.
//!
//! Probes are hosted inside access ASes and mirror the real platform's
//! Europe-heavy deployment bias — which is precisely why the paper's
//! forensic case study observes the anomaly "from European probes".

use net_model::{Asn, CityId, Country, Ipv4Addr, ProbeId, Region};
use serde::{Deserialize, Serialize};

/// A measurement vantage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Probe {
    pub id: ProbeId,
    /// Hosting (access) AS.
    pub asn: Asn,
    pub city: CityId,
    pub country: Country,
    pub region: Region,
    /// Source address used in measurements.
    pub addr: Ipv4Addr,
}

/// Probes per country by region — the deployment-density model.
/// RIPE Atlas is strongly Europe-biased; these weights keep that shape.
pub fn probes_per_country(region: Region) -> usize {
    match region {
        Region::Europe => 6,
        Region::NorthAmerica => 4,
        Region::Asia => 3,
        Region::MiddleEast => 2,
        Region::Oceania => 2,
        Region::Africa => 1,
        Region::SouthAmerica => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn europe_density_is_highest() {
        let eu = probes_per_country(Region::Europe);
        for r in Region::ALL {
            assert!(probes_per_country(r) <= eu);
        }
    }
}
