//! The world generator: one seeded, deterministic pass that assembles the
//! physical, network and measurement layers described in the crate docs.
//!
//! Generation order (and therefore id assignment) is fixed: cities → cables
//! (curated, then festoons) → terrestrial conduits → ASes (tier-1, transit,
//! access, content) → relationships → prefixes → IP links → probes. All
//! randomness flows from a single `StdRng` seeded by `WorldConfig::seed`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use net_model::{Asn, CableId, CityId, Country, Ipv4Addr, Ipv4Net, LinkId, PrefixId, ProbeId, Region};

use crate::ases::{asn_bands, AsInfo, AsRelationship, AsTier, RelKind};
use crate::cables::{build_curated_cables, sea_path_km, Cable};
use crate::cities::{build_cities, City};
use crate::links::{classify_conduit, IpLink, LinkEnd, PrefixInfo};
use crate::physical::{PhysicalGraph, TerrestrialEdge};
use crate::probes::{probes_per_country, Probe};
use crate::World;

/// Knobs for world generation. `Default` produces the standard evaluation
/// world used by every case study; the benches scale some knobs.
///
/// # Equality, hashing and the NaN policy
///
/// `WorldConfig` is the **content address** of a generated world: the
/// scenario-forge world cache keys `Arc<World>` slots by it, so equality
/// and hashing must be *total* and *stable*. Both are defined over the
/// exact IEEE-754 bit patterns of the `f64` fields
/// ([`WorldConfig::canonical_bits`]): `0.5 == 0.5` as usual; `-0.0` and
/// `0.0` have different bits and are therefore distinct addresses
/// (whether or not the generator's output differs between them); a NaN
/// **equals itself** bit-for-bit, keeping the relation reflexive, while
/// NaNs with different payloads are distinct addresses. The generator
/// itself never produces NaN; feeding NaN knobs is allowed but each NaN
/// bit pattern simply names its own cache slot.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; two configs with equal fields generate identical worlds.
    pub seed: u64,
    /// How many regional festoon cables to add on top of the curated table.
    pub festoon_cables: usize,
    /// Access (eyeball) ASes per country.
    pub access_per_country: usize,
    /// Multiplier on the per-region probe density.
    pub probe_scale: f64,
    /// Probability that two same-region transit ASes peer.
    pub transit_peering_prob: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 42,
            festoon_cables: 30,
            access_per_country: 2,
            probe_scale: 1.0,
            transit_peering_prob: 0.5,
        }
    }
}

impl WorldConfig {
    /// The canonical integer representation equality, ordering, hashing
    /// and the content hash are all defined over: every field as its raw
    /// bits, `f64`s via [`f64::to_bits`]. One array position per field,
    /// in declaration order — extend (never reorder) when adding knobs;
    /// the exhaustive destructuring below makes a forgotten field a
    /// compile error instead of a silent cache-identity hole.
    pub fn canonical_bits(&self) -> [u64; 5] {
        let WorldConfig {
            seed,
            festoon_cables,
            access_per_country,
            probe_scale,
            transit_peering_prob,
        } = self;
        [
            *seed,
            *festoon_cables as u64,
            *access_per_country as u64,
            probe_scale.to_bits(),
            transit_peering_prob.to_bits(),
        ]
    }

    /// A stable structural hash of the config — the world cache's content
    /// address. Mixed with [`crate::events::stable_hash`], so it is
    /// identical across platforms, runs and releases (unlike
    /// `std::hash::Hasher` output, which is allowed to vary).
    pub fn content_hash(&self) -> u64 {
        let bits = self.canonical_bits();
        let mut parts = [0u64; 6];
        parts[0] = 0x574F_524C_4443_4647; // "WORLDCFG"
        parts[1..].copy_from_slice(&bits);
        crate::events::stable_hash(&parts)
    }
}

impl PartialEq for WorldConfig {
    fn eq(&self, other: &Self) -> bool {
        self.canonical_bits() == other.canonical_bits()
    }
}

/// Total: bit-pattern equality is reflexive even for NaN (see the type
/// docs for the NaN policy).
impl Eq for WorldConfig {}

impl std::hash::Hash for WorldConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.canonical_bits().hash(state);
    }
}

impl PartialOrd for WorldConfig {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Ordered by [`WorldConfig::canonical_bits`] so configs can key ordered
/// maps (the world cache's slot table).
impl Ord for WorldConfig {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.canonical_bits().cmp(&other.canonical_bits())
    }
}

/// Generates a world from the given configuration.
pub fn generate(config: &WorldConfig) -> World {
    let mut rng = StdRng::seed_from_u64(config.seed);

    let cities = build_cities();
    let mut cables = build_curated_cables(&cities);
    add_festoon_cables(&mut cables, &cities, config.festoon_cables, &mut rng);
    let terrestrial = build_terrestrial(&cities);
    let graph = PhysicalGraph::build(&cities, &cables, &terrestrial);

    let ases = build_ases(&cities, config);
    let relationships = build_relationships(&ases, config, &mut rng);
    let prefixes = build_prefixes(&ases);
    let links = build_links(&ases, &relationships, &cities, &graph);
    let probes = build_probes(&ases, &prefixes, &cities, config);

    let world = World::assemble(
        config,
        cities,
        cables,
        terrestrial,
        ases,
        relationships,
        prefixes,
        links,
        probes,
    );
    debug_assert_eq!(world.validate(), Ok(()));
    world
}

// ---------------------------------------------------------------------------
// Physical layer
// ---------------------------------------------------------------------------

/// Countries that are islands (no terrestrial conduits except curated
/// exceptions like the Channel Tunnel).
fn is_island(country: Country) -> bool {
    matches!(
        country.code(),
        "GB" | "JP" | "TW" | "LK" | "MV" | "ID" | "AU" | "SG" | "HK"
    )
}

/// Landmass grouping for terrestrial reachability.
fn landmass(region: Region) -> u8 {
    match region {
        Region::Europe | Region::Asia | Region::MiddleEast | Region::Africa => 0, // Afro-Eurasia
        Region::NorthAmerica => 1,
        Region::SouthAmerica => 2,
        Region::Oceania => 3,
    }
}

/// Explicit terrestrial exceptions: tunnels and causeways.
const LAND_EXCEPTIONS: &[(&str, &str)] = &[("GB", "FR"), ("SG", "MY"), ("HK", "CN")];

fn land_exception(a: Country, b: Country) -> bool {
    LAND_EXCEPTIONS
        .iter()
        .any(|(x, y)| (a.code() == *x && b.code() == *y) || (a.code() == *y && b.code() == *x))
}

/// Builds terrestrial conduits: all intra-country city pairs, plus
/// cross-border pairs on the same landmass within 2,200 km, plus curated
/// tunnel/causeway exceptions.
fn build_terrestrial(cities: &[City]) -> Vec<TerrestrialEdge> {
    const LAND_DETOUR: f64 = 1.25;
    let mut edges = Vec::new();
    for (i, a) in cities.iter().enumerate() {
        for b in cities.iter().skip(i + 1) {
            let dist = a.location.distance_km(&b.location);
            let connect = if a.country == b.country {
                true
            } else if land_exception(a.country, b.country) {
                dist < 1_500.0
            } else {
                landmass(a.region) == landmass(b.region)
                    && !is_island(a.country)
                    && !is_island(b.country)
                    && dist < 3_200.0
            };
            if connect {
                edges.push(TerrestrialEdge { a: a.id, b: b.id, length_km: dist * LAND_DETOUR });
            }
        }
    }
    edges
}

/// Adds short regional festoon cables between nearby coastal cities that do
/// not already share a curated cable segment.
fn add_festoon_cables(cables: &mut Vec<Cable>, cities: &[City], target: usize, rng: &mut StdRng) {
    let mut candidates: Vec<(CityId, CityId, f64)> = Vec::new();
    for (i, a) in cities.iter().enumerate() {
        for b in cities.iter().skip(i + 1) {
            if !a.coastal || !b.coastal || a.country == b.country {
                continue;
            }
            let dist = a.location.distance_km(&b.location);
            if !(300.0..=3_500.0).contains(&dist) {
                continue;
            }
            let already = cables.iter().any(|c| {
                c.segments.iter().any(|s| {
                    (s.a == a.id && s.b == b.id) || (s.a == b.id && s.b == a.id)
                })
            });
            if !already {
                candidates.push((a.id, b.id, dist));
            }
        }
    }
    // Deterministic shuffle-by-score: prefer shorter crossings with a seeded
    // jitter so different seeds grow different festoon sets.
    let mut scored: Vec<(f64, CityId, CityId)> = candidates
        .into_iter()
        .map(|(a, b, d)| (d * rng.gen_range(0.6..1.4), a, b))
        .collect();
    scored.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));

    for (_, a, b) in scored.into_iter().take(target) {
        let id = CableId(cables.len() as u32);
        let name = format!(
            "Festoon {}-{}",
            cities[a.index()].name,
            cities[b.index()].name
        );
        let pa = cities[a.index()].location;
        let pb = cities[b.index()].location;
        let rfs = 2004 + (id.0 % 20) as u16;
        let cable = Cable {
            id,
            name,
            landings: vec![a, b],
            segments: vec![crate::cables::CableSegment {
                a,
                b,
                length_km: sea_path_km(&pa, &pb) * crate::cables::system_slack(id),
            }],
            rfs_year: rfs,
            capacity_tbps: 8.0,
        };
        cables.push(cable);
    }
}

// ---------------------------------------------------------------------------
// Network layer
// ---------------------------------------------------------------------------

/// Headquarters countries of the twelve tier-1 backbones.
const TIER1_HOMES: &[&str] = &["US", "US", "GB", "FR", "DE", "JP", "SG", "IN", "HK", "BR", "ZA", "AE"];

/// Headquarters of the six content providers.
const CONTENT_HOMES: &[&str] = &["US", "US", "GB", "JP", "SG", "DE"];

fn build_ases(cities: &[City], config: &WorldConfig) -> Vec<AsInfo> {
    let countries = net_model::country::all_countries();
    let hub_cities: Vec<CityId> = cities.iter().filter(|c| c.hub).map(|c| c.id).collect();
    let mut ases = Vec::new();

    // Tier-1 backbones: present at every hub plus all home-country cities.
    for (i, cc) in TIER1_HOMES.iter().enumerate() {
        let country = Country::parse(cc).expect("valid tier1 home");
        let region = country.region().expect("known country");
        let mut presence: Vec<CityId> = hub_cities.clone();
        for c in cities.iter().filter(|c| c.country == country) {
            if !presence.contains(&c.id) {
                presence.push(c.id);
            }
        }
        presence.sort();
        ases.push(AsInfo {
            asn: Asn(asn_bands::TIER1_BASE + 1 + i as u32),
            name: format!("Backbone-{}{}", cc, i + 1),
            tier: AsTier::Tier1,
            country,
            region,
            presence,
        });
    }

    // National transit: all home cities plus the region hub.
    for (ci, info) in countries.iter().enumerate() {
        let mut presence: Vec<CityId> =
            cities.iter().filter(|c| c.country == info.code).map(|c| c.id).collect();
        let hub = crate::cities::region_hub(cities, info.region);
        if !presence.contains(&hub) {
            presence.push(hub);
        }
        presence.sort();
        ases.push(AsInfo {
            asn: Asn(asn_bands::TRANSIT_BASE + ci as u32),
            name: format!("{}-Telecom", info.code.code()),
            tier: AsTier::Transit,
            country: info.code,
            region: info.region,
            presence,
        });
    }

    // Access networks: home cities only.
    let mut access_idx = 0;
    for info in &countries {
        let home: Vec<CityId> =
            cities.iter().filter(|c| c.country == info.code).map(|c| c.id).collect();
        for k in 0..config.access_per_country {
            ases.push(AsInfo {
                asn: Asn(asn_bands::ACCESS_BASE + access_idx),
                name: format!("{}-Access-{}", info.code.code(), k + 1),
                tier: AsTier::Access,
                country: info.code,
                region: info.region,
                presence: home.clone(),
            });
            access_idx += 1;
        }
    }

    // Content providers: every hub city.
    for (i, cc) in CONTENT_HOMES.iter().enumerate() {
        let country = Country::parse(cc).expect("valid content home");
        let region = country.region().expect("known country");
        ases.push(AsInfo {
            asn: Asn(asn_bands::CONTENT_BASE + i as u32),
            name: format!("CDN-{}", i + 1),
            tier: AsTier::Content,
            country,
            region,
            presence: hub_cities.clone(),
        });
    }

    ases.sort_by_key(|a| a.asn);
    ases
}

fn build_relationships(
    ases: &[AsInfo],
    config: &WorldConfig,
    rng: &mut StdRng,
) -> Vec<AsRelationship> {
    let tier1s: Vec<&AsInfo> = ases.iter().filter(|a| a.tier == AsTier::Tier1).collect();
    let transits: Vec<&AsInfo> = ases.iter().filter(|a| a.tier == AsTier::Transit).collect();
    let accesses: Vec<&AsInfo> = ases.iter().filter(|a| a.tier == AsTier::Access).collect();
    let contents: Vec<&AsInfo> = ases.iter().filter(|a| a.tier == AsTier::Content).collect();

    let mut rels = Vec::new();

    // Tier-1 clique.
    for (i, a) in tier1s.iter().enumerate() {
        for b in tier1s.iter().skip(i + 1) {
            rels.push(AsRelationship::peering(a.asn, b.asn));
        }
    }

    // Transit buys from the 2–3 nearest tier-1s (by HQ anchor distance).
    for t in &transits {
        let anchor = t.country.info().expect("known country").anchor;
        let mut ranked: Vec<(&&AsInfo, f64)> = tier1s
            .iter()
            .map(|b| {
                let banchor = b.country.info().expect("known").anchor;
                (b, anchor.distance_km(&banchor))
            })
            .collect();
        ranked.sort_by(|x, y| x.1.total_cmp(&y.1).then(x.0.asn.cmp(&y.0.asn)));
        let n_upstreams = 2 + (t.asn.0 as usize % 2); // deterministic 2 or 3
        for (b, _) in ranked.into_iter().take(n_upstreams) {
            rels.push(AsRelationship::transit(b.asn, t.asn));
        }
    }

    // Same-region transit peering (seeded coin flip per pair).
    for (i, a) in transits.iter().enumerate() {
        for b in transits.iter().skip(i + 1) {
            if a.region == b.region && rng.gen_bool(config.transit_peering_prob) {
                rels.push(AsRelationship::peering(a.asn, b.asn));
            }
        }
    }

    // Access: customer of the home transit; ~30% multihome to a second
    // same-region transit.
    for acc in &accesses {
        let home = transits
            .iter()
            .find(|t| t.country == acc.country)
            .expect("every country has a transit AS");
        rels.push(AsRelationship::transit(home.asn, acc.asn));
        if rng.gen_bool(0.3) {
            let second = transits
                .iter()
                .filter(|t| t.region == acc.region && t.country != acc.country)
                .min_by_key(|t| t.asn);
            if let Some(second) = second {
                rels.push(AsRelationship::transit(second.asn, acc.asn));
            }
        }
    }

    // Content: buys transit from two tier-1s (reachability of last resort),
    // peers with most transits in countries where it has presence.
    for c in &contents {
        for t1 in tier1s.iter().take(2) {
            rels.push(AsRelationship::transit(t1.asn, c.asn));
        }
        for t in &transits {
            let shares_city = t.presence.iter().any(|city| c.presence.contains(city));
            if shares_city && rng.gen_bool(0.7) {
                rels.push(AsRelationship::peering(t.asn, c.asn));
            }
        }
    }

    rels.sort_by_key(|r| (r.a, r.b, r.kind == RelKind::Peer));
    rels.dedup();
    rels
}

fn prefixes_for_tier(tier: AsTier) -> usize {
    match tier {
        AsTier::Tier1 => 4,
        AsTier::Transit => 3,
        AsTier::Access => 2,
        AsTier::Content => 6,
    }
}

/// Allocates /20s for every AS from 10.0.0.0/8, sequentially.
fn build_prefixes(ases: &[AsInfo]) -> Vec<PrefixInfo> {
    let mut prefixes = Vec::new();
    let mut next: u32 = 0;
    for a in ases {
        for _ in 0..prefixes_for_tier(a.tier) {
            let base = (10u32 << 24) | (next << 12);
            let net = Ipv4Net::new(Ipv4Addr(base), 20).expect("valid /20");
            prefixes.push(PrefixInfo { id: PrefixId(prefixes.len() as u32), net, origin: a.asn });
            next += 1;
            assert!(next < (1 << 12), "prefix pool exhausted");
        }
    }
    prefixes
}

/// Builds the IP-link layer.
///
/// Placement rules, chosen to reproduce the real Internet's cross-layer
/// structure (most long-haul capacity is intra-AS backbone plus *remote*
/// transit/peering, while global networks interconnect metro-side):
///
/// * **global × global** (tier-1/content pairs): metro links at up to two
///   shared hub cities;
/// * **anything involving a local AS**: the link is anchored at the local
///   AS's home city and lands on the counterparty's nearest PoP — which is
///   frequently abroad, so these links ride submarine cables (remote
///   transit, exactly how island/peninsular economies buy connectivity);
/// * **intra-AS backbones**: every multi-city AS chains its PoPs with
///   long-haul links (same ASN on both ends). They don't affect AS-level
///   adjacency but they are the bulk of what a cable failure takes down.
fn build_links(
    ases: &[AsInfo],
    rels: &[AsRelationship],
    cities: &[City],
    graph: &PhysicalGraph,
) -> Vec<IpLink> {
    let by_asn = |asn: Asn| ases.iter().find(|a| a.asn == asn).expect("known ASN");
    let mut links: Vec<IpLink> = Vec::new();
    let is_global = |a: &AsInfo| matches!(a.tier, AsTier::Tier1 | AsTier::Content);
    let nearest_presence = |of: &AsInfo, to: CityId| -> CityId {
        let target = cities[to.index()].location;
        of.presence
            .iter()
            .copied()
            .min_by(|&x, &y| {
                let dx = cities[x.index()].location.distance_km(&target);
                let dy = cities[y.index()].location.distance_km(&target);
                dx.total_cmp(&dy).then(x.cmp(&y))
            })
            .expect("ASes have at least one PoP")
    };

    for rel in rels {
        let a = by_asn(rel.a);
        let b = by_asn(rel.b);

        let endpoints: Vec<(CityId, CityId)> = if is_global(a) && is_global(b) {
            let shared: Vec<CityId> =
                a.presence.iter().copied().filter(|c| b.presence.contains(c)).collect();
            if shared.is_empty() {
                let home = a.presence[0];
                vec![(home, nearest_presence(b, home))]
            } else {
                shared.into_iter().take(2).map(|c| (c, c)).collect()
            }
        } else {
            // Anchor at the more local AS (customer in P2C, else lower tier,
            // else lower ASN). `a_is_local` keeps endpoint order aligned
            // with the link's (a, b) ends.
            let a_is_local = if is_global(a) {
                false
            } else if is_global(b) {
                true
            } else {
                rel.kind != RelKind::ProviderCustomer // in P2C, rel.b is customer
            };
            let (local, other) = if a_is_local { (a, b) } else { (b, a) };
            let anchor = *local
                .presence
                .iter()
                .find(|c| cities[c.index()].country == local.country)
                .unwrap_or(&local.presence[0]);
            let far = nearest_presence(other, anchor);
            if a_is_local {
                vec![(anchor, far)]
            } else {
                vec![(far, anchor)]
            }
        };

        for (ca, cb) in endpoints {
            // Per-link bias spreads long-haul links across parallel cable
            // systems on the same corridor (route diversity).
            let bias = crate::events::stable_hash(&[
                0x4C4E4B, // "LNK"
                rel.a.0 as u64,
                rel.b.0 as u64,
                ca.0 as u64,
                cb.0 as u64,
            ]);
            let path = match graph.shortest_path_biased(ca, cb, Some(bias)) {
                Some(p) => p,
                None => continue, // physically unreachable pair: skip
            };
            let conduit = classify_conduit(&path);
            let id = LinkId(links.len() as u32);
            // /30 per link out of 172.16.0.0/12.
            let base = (172u32 << 24) | (16u32 << 16);
            let net_base = base + id.0 * 4;
            let latency_ms = if path.hops.is_empty() {
                0.5 // metro
            } else {
                path.propagation_ms() + 0.5
            };
            let capacity_gbps = match (a.tier, b.tier) {
                (AsTier::Tier1, AsTier::Tier1) => 1_000.0,
                (AsTier::Content, _) | (_, AsTier::Content) => 400.0,
                (AsTier::Tier1, _) | (_, AsTier::Tier1) => 200.0,
                (AsTier::Transit, AsTier::Transit) => 100.0,
                _ => 40.0,
            };
            links.push(IpLink {
                id,
                a: LinkEnd { asn: a.asn, city: ca, addr: Ipv4Addr(net_base + 1) },
                b: LinkEnd { asn: b.asn, city: cb, addr: Ipv4Addr(net_base + 2) },
                latency_ms,
                capacity_gbps,
                path,
                conduit,
            });
        }
    }

    // Intra-AS backbones: chain each AS's PoPs in id order. These carry no
    // AS-level adjacency but dominate the physical-layer dependency counts.
    for a in ases {
        if a.presence.len() < 2 {
            continue;
        }
        let mut pops = a.presence.clone();
        pops.sort();
        for w in pops.windows(2) {
            let (ca, cb) = (w[0], w[1]);
            let bias = crate::events::stable_hash(&[
                0xBB0E, // backbone marker
                a.asn.0 as u64,
                ca.0 as u64,
                cb.0 as u64,
            ]);
            let path = match graph.shortest_path_biased(ca, cb, Some(bias)) {
                Some(p) => p,
                None => continue,
            };
            let conduit = classify_conduit(&path);
            let id = LinkId(links.len() as u32);
            let base = (172u32 << 24) | (16u32 << 16);
            let net_base = base + id.0 * 4;
            let latency_ms =
                if path.hops.is_empty() { 0.5 } else { path.propagation_ms() + 0.5 };
            links.push(IpLink {
                id,
                a: LinkEnd { asn: a.asn, city: ca, addr: Ipv4Addr(net_base + 1) },
                b: LinkEnd { asn: a.asn, city: cb, addr: Ipv4Addr(net_base + 2) },
                latency_ms,
                capacity_gbps: 800.0,
                path,
                conduit,
            });
        }
    }
    links
}

fn build_probes(
    ases: &[AsInfo],
    prefixes: &[PrefixInfo],
    cities: &[City],
    config: &WorldConfig,
) -> Vec<Probe> {
    let mut probes = Vec::new();
    for info in net_model::country::all_countries() {
        let count =
            ((probes_per_country(info.region) as f64) * config.probe_scale).round() as usize;
        let hosts: Vec<&AsInfo> = ases
            .iter()
            .filter(|a| a.tier == AsTier::Access && a.country == info.code)
            .collect();
        let home_cities: Vec<&City> = cities.iter().filter(|c| c.country == info.code).collect();
        if hosts.is_empty() || home_cities.is_empty() {
            continue;
        }
        for k in 0..count {
            let host = hosts[k % hosts.len()];
            let city = home_cities[k % home_cities.len()];
            let pfx = prefixes
                .iter()
                .find(|p| p.origin == host.asn)
                .expect("access AS has a prefix");
            let addr = pfx.net.host(10 + k as u32);
            probes.push(Probe {
                id: ProbeId(probes.len() as u32),
                asn: host.asn,
                city: city.id,
                country: info.code,
                region: info.region,
                addr,
            });
        }
    }
    probes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        generate(&WorldConfig::default())
    }

    #[test]
    fn generation_is_deterministic() {
        let w1 = world();
        let w2 = world();
        assert_eq!(w1.cables.len(), w2.cables.len());
        assert_eq!(w1.links.len(), w2.links.len());
        for (l1, l2) in w1.links.iter().zip(&w2.links) {
            assert_eq!(l1.a, l2.a);
            assert_eq!(l1.b, l2.b);
            assert_eq!(l1.path, l2.path);
        }
        for (p1, p2) in w1.probes.iter().zip(&w2.probes) {
            assert_eq!(p1, p2);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let w1 = generate(&WorldConfig { seed: 1, ..WorldConfig::default() });
        let w2 = generate(&WorldConfig { seed: 2, ..WorldConfig::default() });
        // Festoon sets and relationship coin-flips should diverge.
        let names1: Vec<&str> = w1.cables.iter().map(|c| c.name.as_str()).collect();
        let names2: Vec<&str> = w2.cables.iter().map(|c| c.name.as_str()).collect();
        assert_ne!(names1, names2);
    }

    #[test]
    fn world_validates_and_has_expected_shape() {
        let w = world();
        assert_eq!(w.validate(), Ok(()));
        assert_eq!(w.cables.len(), 25 + 30);
        assert!(w.ases.len() > 100, "ases: {}", w.ases.len());
        assert!(w.links.len() > 300, "links: {}", w.links.len());
        assert!(w.probes.len() > 80, "probes: {}", w.probes.len());
        assert!(w.prefixes.len() > 300, "prefixes: {}", w.prefixes.len());
    }

    #[test]
    fn some_links_are_submarine_and_depend_on_cables() {
        let w = world();
        let submarine = w
            .links
            .iter()
            .filter(|l| l.conduit == crate::links::Conduit::Submarine)
            .count();
        assert!(submarine > 20, "submarine links: {submarine}");
        let smw5 = w.cable_by_name("SeaMeWe-5").unwrap().id;
        assert!(!w.links_on_cable(smw5).is_empty());
    }

    #[test]
    fn probes_are_europe_biased() {
        let w = world();
        let eu = w.probes.iter().filter(|p| p.region == Region::Europe).count();
        let af = w.probes.iter().filter(|p| p.region == Region::Africa).count();
        assert!(eu > af * 2, "eu={eu} af={af}");
    }

    #[test]
    fn every_access_as_has_home_transit_provider() {
        let w = world();
        for acc in w.ases.iter().filter(|a| a.tier == AsTier::Access) {
            let has_provider = w.relationships.iter().any(|r| {
                r.kind == RelKind::ProviderCustomer && r.b == acc.asn
            });
            assert!(has_provider, "{} has no provider", acc.name);
        }
    }

    #[test]
    fn prefixes_do_not_overlap() {
        let w = world();
        for (i, p) in w.prefixes.iter().enumerate() {
            for q in w.prefixes.iter().skip(i + 1) {
                assert!(!p.net.overlaps(&q.net), "{} overlaps {}", p.net, q.net);
            }
        }
    }

    #[test]
    fn link_addresses_are_unique() {
        let w = world();
        let mut addrs: Vec<u32> = w
            .links
            .iter()
            .flat_map(|l| [l.a.addr.0, l.b.addr.0])
            .collect();
        addrs.sort_unstable();
        let before = addrs.len();
        addrs.dedup();
        assert_eq!(before, addrs.len());
    }

    #[test]
    fn config_equality_and_hash_are_bit_exact() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |c: &WorldConfig| {
            let mut s = DefaultHasher::new();
            c.hash(&mut s);
            s.finish()
        };
        let a = WorldConfig::default();
        let b = WorldConfig::default();
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
        assert_eq!(a.content_hash(), b.content_hash());

        let scaled = WorldConfig { probe_scale: 2.0, ..WorldConfig::default() };
        assert_ne!(a, scaled);
        assert_ne!(a.content_hash(), scaled.content_hash());
        let reseeded = WorldConfig { seed: 43, ..WorldConfig::default() };
        assert_ne!(a, reseeded);
        assert_ne!(a.content_hash(), reseeded.content_hash());

        // NaN policy: a NaN equals itself bit-for-bit (the relation stays
        // total), while -0.0 and 0.0 are distinct addresses.
        let nan1 = WorldConfig { probe_scale: f64::NAN, ..WorldConfig::default() };
        let nan2 = WorldConfig { probe_scale: f64::NAN, ..WorldConfig::default() };
        assert_eq!(nan1, nan2);
        assert_eq!(h(&nan1), h(&nan2));
        let neg0 = WorldConfig { probe_scale: -0.0, ..WorldConfig::default() };
        let pos0 = WorldConfig { probe_scale: 0.0, ..WorldConfig::default() };
        assert_ne!(neg0, pos0);

        // Ordering is consistent with equality (map-key safety).
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_ne!(a.cmp(&scaled), std::cmp::Ordering::Equal);
    }

    #[test]
    fn probe_scale_scales_probe_count() {
        let base = generate(&WorldConfig::default()).probes.len();
        let doubled =
            generate(&WorldConfig { probe_scale: 2.0, ..WorldConfig::default() }).probes.len();
        assert!(doubled > base + base / 2, "base={base} doubled={doubled}");
    }
}
