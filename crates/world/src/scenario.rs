//! Scenarios: a world plus a timeline of events plus "now".
//!
//! A [`Scenario`] is the unit the measurement substrates consume. It knows
//! which assets are failed at any instant, which the BGP simulator turns
//! into reconvergence (withdrawals/announcements) and the traceroute
//! simulator turns into path and latency changes.

use std::collections::BTreeSet;
use std::sync::Arc;

use net_model::{Asn, CableId, Ipv4Net, LinkId, Region, SimDuration, SimTime, TimeWindow};
use net_model::geo::GeoCircle;
use serde::{Deserialize, Serialize};

use crate::events::{fails, Event, EventId, EventKind};
use crate::World;

/// A world with a timeline.
///
/// The world is held behind an `Arc`: scenarios are cheap to clone, and
/// any number of scenarios can share one generated world (the
/// scenario-forge cache hands the *same* `Arc<World>` to every scenario
/// whose config matches — `Arc::ptr_eq` on [`Scenario::world`] is the
/// cache-sharing witness).
#[derive(Debug, Clone)]
pub struct Scenario {
    pub world: Arc<World>,
    pub events: Vec<Event>,
    /// The analyst's "now" — queries with relative time resolve against it.
    pub now: SimTime,
    /// The observable measurement window (dumps exist only inside it).
    pub horizon: TimeWindow,
}

/// Serializable description of a scenario timeline (the world
/// regenerates from its config, so only the world's content identity
/// and the events need persisting). `world_hash` is the config's full
/// [`crate::WorldConfig::content_hash`] — two scenarios whose worlds
/// share a seed but differ in any other knob compare unequal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    pub world_seed: u64,
    pub world_hash: u64,
    pub events: Vec<Event>,
    pub now: SimTime,
    pub horizon: TimeWindow,
}

impl Scenario {
    /// A quiet scenario: no events, `now` at the end of a `days`-long
    /// horizon. Accepts an owned [`World`] or an already-shared
    /// `Arc<World>` (cache hit) interchangeably.
    pub fn quiet(world: impl Into<Arc<World>>, days: i64) -> Scenario {
        let start = SimTime::EPOCH;
        let end = start + SimDuration::days(days);
        Scenario {
            world: world.into(),
            events: Vec::new(),
            now: end,
            horizon: TimeWindow::new(start, end),
        }
    }

    /// The shared world handle (an `Arc` clone, not a world copy).
    pub fn world_handle(&self) -> Arc<World> {
        Arc::clone(&self.world)
    }

    /// Adds an event, assigning the next [`EventId`].
    pub fn push_event(&mut self, kind: EventKind, at: SimTime, until: Option<SimTime>) -> EventId {
        let id = EventId(self.events.len() as u32);
        self.events.push(Event { id, kind, at, until });
        id
    }

    /// Builder-style variant of [`Scenario::push_event`].
    pub fn with_event(mut self, kind: EventKind, at: SimTime) -> Scenario {
        self.push_event(kind, at, None);
        self
    }

    /// Content identity of the whole scenario: world config hash, the
    /// observation window, "now", and every timeline event (id, kind,
    /// bounds) folded through [`stable_hash`]. Two scenarios hash equal
    /// iff a replay from their specs produces identical measurement
    /// records — this is the word a campaign provenance record stamps
    /// on every query result.
    pub fn content_hash(&self) -> u64 {
        let mut words = vec![
            0x5343_454E_4152_494F, // "SCENARIO"
            self.world.config.content_hash(),
            self.now.0 as u64,
            self.horizon.start.0 as u64,
            self.horizon.end.0 as u64,
            self.events.len() as u64,
        ];
        for ev in &self.events {
            words.push(ev.id.0 as u64);
            ev.kind.push_content_words(&mut words);
            words.push(ev.at.0 as u64);
            words.push(match ev.until {
                Some(t) => t.0 as u64 ^ 0x554E_5449_4C00_0001,
                None => 0x4F50_454E_5F45_4E44,
            });
        }
        crate::events::stable_hash(&words)
    }

    /// The serializable spec for this scenario.
    pub fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            world_seed: self.world.seed,
            world_hash: self.world.config.content_hash(),
            events: self.events.clone(),
            now: self.now,
            horizon: self.horizon,
        }
    }

    /// Cable segments failed at `t`, as `(cable, segment index)` pairs.
    pub fn failed_segments_at(&self, t: SimTime) -> BTreeSet<(CableId, usize)> {
        let mut out = BTreeSet::new();
        for ev in &self.events {
            if !ev.active_at(t) {
                continue;
            }
            match &ev.kind {
                EventKind::CableCut { cable } => {
                    let n = self.world.cable(*cable).segments.len();
                    out.extend((0..n).map(|s| (*cable, s)));
                }
                EventKind::SegmentCut { cable, segment } => {
                    out.insert((*cable, *segment));
                }
                EventKind::Earthquake { footprint, failure_prob }
                | EventKind::Hurricane { footprint, failure_prob } => {
                    out.extend(self.disaster_failed_segments(
                        ev.id,
                        footprint,
                        *failure_prob,
                    ));
                }
                EventKind::CongestionSurge { .. }
                | EventKind::PrefixHijack { .. }
                | EventKind::RouteLeak { .. } => {}
            }
        }
        out
    }

    /// Cables with at least one failed segment at `t`.
    pub fn degraded_cables_at(&self, t: SimTime) -> BTreeSet<CableId> {
        self.failed_segments_at(t).into_iter().map(|(c, _)| c).collect()
    }

    /// Cable segments that a disaster footprint takes out: a segment is
    /// exposed if either landing lies inside the footprint, and each exposed
    /// segment fails with the event's probability (deterministically).
    fn disaster_failed_segments(
        &self,
        event: EventId,
        footprint: &GeoCircle,
        p: f64,
    ) -> Vec<(CableId, usize)> {
        let mut out = Vec::new();
        for cable in &self.world.cables {
            for (si, seg) in cable.segments.iter().enumerate() {
                let pa = self.world.city(seg.a).location;
                let pb = self.world.city(seg.b).location;
                if footprint.contains(&pa) || footprint.contains(&pb) {
                    let asset = ((cable.id.0 as u64) << 16) | si as u64;
                    if fails(self.world.seed, event.0 as u64, asset, p) {
                        out.push((cable.id, si));
                    }
                }
            }
        }
        out
    }

    /// IP links down at `t`: a link is down if its physical path rides a
    /// failed segment, or (for disasters) if one of its path cities sits
    /// inside an active footprint and the per-asset draw fails it.
    pub fn links_down_at(&self, t: SimTime) -> BTreeSet<LinkId> {
        let failed = self.failed_segments_at(t);
        let mut down = BTreeSet::new();
        for link in &self.world.links {
            let rides_failed = link.path.hops.iter().enumerate().any(|(i, hop)| {
                if let crate::physical::PathHop::Cable { cable, segment, .. } = hop {
                    let _ = i;
                    failed.contains(&(*cable, *segment))
                } else {
                    false
                }
            });
            if rides_failed {
                down.insert(link.id);
                continue;
            }
            // Disaster footprints can also take out landing/terrestrial
            // facilities the link's path traverses.
            for ev in &self.events {
                if !ev.active_at(t) {
                    continue;
                }
                if let EventKind::Earthquake { footprint, failure_prob }
                | EventKind::Hurricane { footprint, failure_prob } = &ev.kind
                {
                    let exposed = link
                        .path
                        .cities
                        .iter()
                        .any(|&c| footprint.contains(&self.world.city(c).location));
                    if exposed {
                        let asset = 0x4C49_4E4B_0000_0000 | link.id.0 as u64; // "LINK"
                        if fails(self.world.seed, ev.id.0 as u64, asset, *failure_prob) {
                            down.insert(link.id);
                            break;
                        }
                    }
                }
            }
        }
        down
    }

    /// Extra one-way latency applied to region pairs at `t` from active
    /// congestion surges (order-insensitive on the pair).
    pub fn congestion_extra_ms(&self, t: SimTime, a: Region, b: Region) -> f64 {
        self.events
            .iter()
            .filter(|e| e.active_at(t))
            .filter_map(|e| match &e.kind {
                EventKind::CongestionSurge { from, to, extra_ms }
                    if (*from == a && *to == b) || (*from == b && *to == a) =>
                {
                    Some(*extra_ms)
                }
                _ => None,
            })
            .sum()
    }

    /// The BGP control-plane state active at `t`: which prefixes are
    /// being hijacked (and by whom) and which ASes are leaking routes.
    /// Canonically ordered and deduplicated, so two instants with the
    /// same active incidents compare equal — the BGP substrate memoizes
    /// RIB captures on exactly this state (plus the topology).
    pub fn control_plane_at(&self, t: SimTime) -> ControlPlaneState {
        let mut hijacks = Vec::new();
        let mut leakers = Vec::new();
        for ev in self.events.iter().filter(|e| e.active_at(t)) {
            match &ev.kind {
                EventKind::PrefixHijack { origin, victim_prefix } => {
                    hijacks.push((*victim_prefix, *origin));
                }
                EventKind::RouteLeak { leaker } => leakers.push(*leaker),
                _ => {}
            }
        }
        hijacks.sort();
        hijacks.dedup();
        leakers.sort();
        leakers.dedup();
        ControlPlaneState { hijacks, leakers }
    }

    /// Whether the scenario schedules any control-plane incident at all.
    pub fn has_control_plane_events(&self) -> bool {
        self.events.iter().any(|e| e.kind.is_control_plane())
    }

    /// All event (time, id) pairs inside the horizon, ordered by time.
    pub fn timeline(&self) -> Vec<(SimTime, EventId)> {
        let mut v: Vec<(SimTime, EventId)> = self
            .events
            .iter()
            .filter(|e| self.horizon.contains(e.at))
            .map(|e| (e.at, e.id))
            .collect();
        v.sort();
        v
    }
}

/// The BGP control-plane overlay at one instant: active prefix hijacks
/// (as `(victim prefix, bogus origin)` pairs) and active route leakers,
/// both canonically sorted. Quiet state compares equal to
/// [`ControlPlaneState::default`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlPlaneState {
    /// `(victim prefix, hijacking origin)` pairs, ascending.
    pub hijacks: Vec<(Ipv4Net, Asn)>,
    /// ASes re-exporting every learned route, ascending.
    pub leakers: Vec<Asn>,
}

impl ControlPlaneState {
    /// Whether no control-plane incident is active.
    pub fn is_quiet(&self) -> bool {
        self.hijacks.is_empty() && self.leakers.is_empty()
    }

    /// The hijacking origins for `prefix`, ascending (usually 0 or 1).
    pub fn hijackers_of(&self, prefix: Ipv4Net) -> impl Iterator<Item = Asn> + '_ {
        self.hijacks.iter().filter(move |(p, _)| *p == prefix).map(|(_, a)| *a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, WorldConfig};
    use net_model::GeoPoint;

    fn small_world() -> World {
        generate(&WorldConfig { seed: 7, ..WorldConfig::default() })
    }

    #[test]
    fn quiet_scenario_has_nothing_down() {
        let s = Scenario::quiet(small_world(), 10);
        assert!(s.links_down_at(s.now).is_empty());
        assert!(s.failed_segments_at(s.now).is_empty());
    }

    #[test]
    fn cable_cut_downs_exactly_the_links_riding_it() {
        let world = small_world();
        let cable = world.cable_by_name("SeaMeWe-5").expect("curated cable").id;
        let expected: BTreeSet<LinkId> = world.links_on_cable(cable).into_iter().collect();
        assert!(!expected.is_empty(), "SeaMeWe-5 should carry links");

        let cut_at = SimTime::EPOCH + SimDuration::days(5);
        let s = Scenario::quiet(world, 10).with_event(EventKind::CableCut { cable }, cut_at);

        assert!(s.links_down_at(cut_at - SimDuration::hours(1)).is_empty());
        let down = s.links_down_at(cut_at);
        assert_eq!(down, expected);
    }

    #[test]
    fn segment_cut_is_a_subset_of_full_cut() {
        let world = small_world();
        let cable = world.cable_by_name("AAE-1").unwrap().id;
        let at = SimTime::EPOCH + SimDuration::days(1);

        let full = Scenario::quiet(world.clone(), 10)
            .with_event(EventKind::CableCut { cable }, at)
            .links_down_at(at);
        let seg = Scenario::quiet(world, 10)
            .with_event(EventKind::SegmentCut { cable, segment: 0 }, at)
            .links_down_at(at);
        assert!(seg.is_subset(&full));
    }

    #[test]
    fn disaster_failures_scale_with_probability() {
        let world = small_world();
        let footprint = GeoCircle::new(GeoPoint::of(31.2, 29.9), 600.0); // Alexandria
        let at = SimTime::EPOCH + SimDuration::days(1);
        let count = |p: f64| {
            Scenario::quiet(world.clone(), 10)
                .with_event(EventKind::Earthquake { footprint, failure_prob: p }, at)
                .failed_segments_at(at)
                .len()
        };
        assert_eq!(count(0.0), 0);
        let half = count(0.5);
        let full = count(1.0);
        assert!(full >= half, "p=1 ({full}) must fail at least as many as p=0.5 ({half})");
        assert!(full > 0, "Alexandria quake with p=1 must fail something");
    }

    #[test]
    fn congestion_applies_to_region_pair_both_ways() {
        let world = small_world();
        let at = SimTime::EPOCH + SimDuration::days(2);
        let mut s = Scenario::quiet(world, 10);
        s.push_event(
            EventKind::CongestionSurge { from: Region::Europe, to: Region::Asia, extra_ms: 30.0 },
            at,
            Some(at + SimDuration::days(1)),
        );
        assert_eq!(s.congestion_extra_ms(at, Region::Asia, Region::Europe), 30.0);
        assert_eq!(s.congestion_extra_ms(at, Region::Europe, Region::Africa), 0.0);
        assert_eq!(
            s.congestion_extra_ms(at + SimDuration::days(2), Region::Europe, Region::Asia),
            0.0
        );
    }

    #[test]
    fn control_plane_events_touch_no_links() {
        let world = small_world();
        let victim = world.prefixes[0];
        let hijacker = world
            .ases
            .iter()
            .map(|a| a.asn)
            .find(|a| *a != victim.origin)
            .expect("more than one AS");
        let at = SimTime::EPOCH + SimDuration::days(3);
        let mut s = Scenario::quiet(world, 10)
            .with_event(
                EventKind::PrefixHijack { origin: hijacker, victim_prefix: victim.net },
                at,
            );
        s.push_event(
            EventKind::RouteLeak { leaker: hijacker },
            at + SimDuration::days(1),
            Some(at + SimDuration::days(2)),
        );

        assert!(s.has_control_plane_events());
        assert!(s.links_down_at(s.now).is_empty(), "control plane fails no links");
        assert!(s.failed_segments_at(s.now).is_empty());

        // Before either incident: quiet control plane.
        assert!(s.control_plane_at(at - SimDuration::hours(1)).is_quiet());
        // Hijack only.
        let early = s.control_plane_at(at);
        assert_eq!(early.hijacks, vec![(victim.net, hijacker)]);
        assert!(early.leakers.is_empty());
        assert_eq!(early.hijackers_of(victim.net).collect::<Vec<_>>(), vec![hijacker]);
        // Hijack + leak while the leak window is open.
        let mid = s.control_plane_at(at + SimDuration::days(1));
        assert_eq!(mid.leakers, vec![hijacker]);
        // Leak window closed again: same state as the hijack-only instant.
        assert_eq!(s.control_plane_at(s.now - SimDuration::hours(1)), early);
    }

    #[test]
    fn content_hash_tracks_timeline_identity() {
        let world = Arc::new(small_world());
        let at = SimTime::EPOCH + SimDuration::days(2);
        let cable = world.cables[0].id;

        let quiet = Scenario::quiet(Arc::clone(&world), 10);
        let cut = Scenario::quiet(Arc::clone(&world), 10)
            .with_event(EventKind::CableCut { cable }, at);
        let later =
            Scenario::quiet(world, 10).with_event(EventKind::CableCut { cable }, at + SimDuration::hours(1));

        assert_eq!(quiet.content_hash(), quiet.clone().content_hash());
        assert_eq!(cut.content_hash(), cut.clone().content_hash());
        assert_ne!(quiet.content_hash(), cut.content_hash());
        assert_ne!(cut.content_hash(), later.content_hash(), "event timing is content");
    }

    #[test]
    fn timeline_is_time_ordered() {
        let world = small_world();
        let c0 = world.cables[0].id;
        let c1 = world.cables[1].id;
        let mut s = Scenario::quiet(world, 10);
        s.push_event(EventKind::CableCut { cable: c1 }, SimTime(500_000), None);
        s.push_event(EventKind::CableCut { cable: c0 }, SimTime(100_000), None);
        let tl = s.timeline();
        assert_eq!(tl.len(), 2);
        assert!(tl[0].0 <= tl[1].0);
    }
}
