//! # world — a deterministic synthetic Internet
//!
//! The ArachNet paper evaluates on real measurement data (submarine-cable
//! maps, BGP dumps, RIPE-Atlas traceroutes). None of that is available
//! offline, so this crate builds the closest synthetic equivalent: a seeded,
//! fully deterministic model of the global Internet with
//!
//! * a **physical layer** — cities, cable landing stations, ~25 curated
//!   submarine cable systems with real-world names and geography (SeaMeWe-5,
//!   AAE-1, FALCON, …, exactly the systems the paper's queries mention),
//!   plus generated regional festoon cables and terrestrial conduits;
//! * a **network layer** — a tiered AS topology (tier-1 backbones, national
//!   transit, access networks, content providers) with customer/provider and
//!   peering relationships, announced prefixes, and IP-layer links whose
//!   *physical path* is computed over the conduit graph (so each IP link
//!   transparently depends on the cables it rides — the cross-layer ground
//!   truth that Nautilus infers and Xaminer analyses);
//! * a **measurement layer** — RIPE-Atlas-style probes with a Europe-heavy
//!   deployment bias;
//! * **scenarios** — timed event injections (cable cuts, earthquakes,
//!   hurricanes, congestion shifts) from which the BGP and traceroute
//!   simulators derive dumps and campaigns.
//!
//! Everything is reproducible from `WorldConfig::seed`; all containers
//! iterate in a canonical order.

pub mod ases;
pub mod cables;
pub mod cities;
pub mod events;
pub mod generator;
pub mod links;
pub mod physical;
pub mod probes;
pub mod scenario;

pub use ases::{AsInfo, AsRelationship, AsTier, RelKind};
pub use cables::{Cable, CableSegment};
pub use cities::City;
pub use events::{Event, EventId, EventKind};
pub use generator::{generate, WorldConfig};
pub use links::{Conduit, IpLink, LinkEnd, PrefixInfo};
pub use physical::{PhysicalGraph, PhysicalPath};
pub use probes::Probe;
pub use scenario::Scenario;

use std::collections::BTreeMap;

use net_model::{Asn, CableId, CityId, Country, LinkId, PrefixId, ProbeId};

/// The complete synthetic Internet. Indexed by the dense id types from
/// `net-model`; every `Vec` position matches the id's `index()`.
#[derive(Debug, Clone)]
pub struct World {
    /// Seed the world was generated from.
    pub seed: u64,
    /// All cities, indexed by [`CityId`].
    pub cities: Vec<City>,
    /// All submarine cables, indexed by [`CableId`].
    pub cables: Vec<Cable>,
    /// Terrestrial conduits between city pairs (undirected).
    pub terrestrial: Vec<physical::TerrestrialEdge>,
    /// All autonomous systems, in ascending ASN order.
    pub ases: Vec<AsInfo>,
    /// AS-level business relationships (undirected records, kind is directed).
    pub relationships: Vec<AsRelationship>,
    /// Announced prefixes, indexed by [`PrefixId`].
    pub prefixes: Vec<PrefixInfo>,
    /// IP-layer links, indexed by [`LinkId`].
    pub links: Vec<IpLink>,
    /// Measurement probes, indexed by [`ProbeId`].
    pub probes: Vec<Probe>,

    asn_index: BTreeMap<Asn, usize>,
}

impl World {
    /// Internal constructor used by the generator; computes derived indices.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        seed: u64,
        cities: Vec<City>,
        cables: Vec<Cable>,
        terrestrial: Vec<physical::TerrestrialEdge>,
        ases: Vec<AsInfo>,
        relationships: Vec<AsRelationship>,
        prefixes: Vec<PrefixInfo>,
        links: Vec<IpLink>,
        probes: Vec<Probe>,
    ) -> World {
        let asn_index = ases.iter().enumerate().map(|(i, a)| (a.asn, i)).collect();
        World {
            seed,
            cities,
            cables,
            terrestrial,
            ases,
            relationships,
            prefixes,
            links,
            probes,
            asn_index,
        }
    }

    /// Looks up a city.
    pub fn city(&self, id: CityId) -> &City {
        &self.cities[id.index()]
    }

    /// Looks up a cable.
    pub fn cable(&self, id: CableId) -> &Cable {
        &self.cables[id.index()]
    }

    /// Looks up an IP link.
    pub fn link(&self, id: LinkId) -> &IpLink {
        &self.links[id.index()]
    }

    /// Looks up a prefix.
    pub fn prefix(&self, id: PrefixId) -> &PrefixInfo {
        &self.prefixes[id.index()]
    }

    /// Looks up a probe.
    pub fn probe(&self, id: ProbeId) -> &Probe {
        &self.probes[id.index()]
    }

    /// Looks up AS metadata by ASN.
    pub fn as_info(&self, asn: Asn) -> Option<&AsInfo> {
        self.asn_index.get(&asn).map(|&i| &self.ases[i])
    }

    /// Finds a cable by (case-insensitive) name.
    pub fn cable_by_name(&self, name: &str) -> Option<&Cable> {
        let lower = name.to_ascii_lowercase();
        self.cables.iter().find(|c| c.name.to_ascii_lowercase() == lower)
    }

    /// All IP links whose physical path rides the given cable.
    ///
    /// This is the cross-layer **ground truth** that the Nautilus substrate
    /// tries to *infer* from geometry and latency.
    pub fn links_on_cable(&self, cable: CableId) -> Vec<LinkId> {
        self.links
            .iter()
            .filter(|l| l.path.cables().contains(&cable))
            .map(|l| l.id)
            .collect()
    }

    /// ASNs registered in a country.
    pub fn asns_in_country(&self, country: Country) -> Vec<Asn> {
        self.ases.iter().filter(|a| a.country == country).map(|a| a.asn).collect()
    }

    /// The country a prefix geolocates to (origin-AS home country).
    pub fn prefix_country(&self, id: PrefixId) -> Country {
        let p = self.prefix(id);
        self.as_info(p.origin).expect("prefix origin AS exists").country
    }

    /// All cities in a country, in id order.
    pub fn cities_in_country(&self, country: Country) -> Vec<&City> {
        self.cities.iter().filter(|c| c.country == country).collect()
    }

    /// Quick structural sanity check; used by tests and the generator.
    pub fn validate(&self) -> Result<(), String> {
        for (i, c) in self.cities.iter().enumerate() {
            if c.id.index() != i {
                return Err(format!("city {} stored at index {i}", c.id));
            }
        }
        for (i, c) in self.cables.iter().enumerate() {
            if c.id.index() != i {
                return Err(format!("cable {} stored at index {i}", c.id));
            }
            if c.landings.len() < 2 {
                return Err(format!("cable {} has fewer than two landings", c.name));
            }
        }
        for (i, l) in self.links.iter().enumerate() {
            if l.id.index() != i {
                return Err(format!("link {} stored at index {i}", l.id));
            }
            if self.as_info(l.a.asn).is_none() || self.as_info(l.b.asn).is_none() {
                return Err(format!("link {} references unknown AS", l.id));
            }
        }
        for r in &self.relationships {
            if self.as_info(r.a).is_none() || self.as_info(r.b).is_none() {
                return Err("relationship references unknown AS".to_string());
            }
        }
        for p in &self.prefixes {
            if self.as_info(p.origin).is_none() {
                return Err(format!("prefix {} originated by unknown AS", p.net));
            }
        }
        Ok(())
    }
}
