//! # world — a deterministic synthetic Internet
//!
//! The ArachNet paper evaluates on real measurement data (submarine-cable
//! maps, BGP dumps, RIPE-Atlas traceroutes). None of that is available
//! offline, so this crate builds the closest synthetic equivalent: a seeded,
//! fully deterministic model of the global Internet with
//!
//! * a **physical layer** — cities, cable landing stations, ~25 curated
//!   submarine cable systems with real-world names and geography (SeaMeWe-5,
//!   AAE-1, FALCON, …, exactly the systems the paper's queries mention),
//!   plus generated regional festoon cables and terrestrial conduits;
//! * a **network layer** — a tiered AS topology (tier-1 backbones, national
//!   transit, access networks, content providers) with customer/provider and
//!   peering relationships, announced prefixes, and IP-layer links whose
//!   *physical path* is computed over the conduit graph (so each IP link
//!   transparently depends on the cables it rides — the cross-layer ground
//!   truth that Nautilus infers and Xaminer analyses);
//! * a **measurement layer** — RIPE-Atlas-style probes with a Europe-heavy
//!   deployment bias;
//! * **scenarios** — timed event injections (cable cuts, earthquakes,
//!   hurricanes, congestion shifts) from which the BGP and traceroute
//!   simulators derive dumps and campaigns.
//!
//! Everything is reproducible from `WorldConfig::seed`; all containers
//! iterate in a canonical order.

pub mod ases;
pub mod cables;
pub mod cities;
pub mod events;
pub mod generator;
pub mod links;
pub mod physical;
pub mod probes;
pub mod scenario;

pub use ases::{AsInfo, AsRelationship, AsTier, RelKind};
pub use cables::{Cable, CableSegment};
pub use cities::City;
pub use events::{Event, EventId, EventKind};
pub use generator::{generate, WorldConfig};
pub use links::{Conduit, IpLink, LinkEnd, PrefixInfo};
pub use physical::{PhysicalGraph, PhysicalPath};
pub use probes::Probe;
pub use scenario::{ControlPlaneState, Scenario};

use std::collections::BTreeMap;

use net_model::{Asn, CableId, CityId, Country, LinkId, PrefixId, ProbeId};

/// The complete synthetic Internet. Indexed by the dense id types from
/// `net-model`; every `Vec` position matches the id's `index()`.
#[derive(Debug, Clone)]
pub struct World {
    /// Seed the world was generated from (`config.seed`, kept as a
    /// direct field because the deterministic failure draws key on it).
    pub seed: u64,
    /// The full configuration the world was generated from — its
    /// content address. Cache keys, scenario specs and blueprint
    /// validation compare this, not just the seed: two configs sharing
    /// a seed still generate structurally different worlds.
    pub config: WorldConfig,
    /// All cities, indexed by [`CityId`].
    pub cities: Vec<City>,
    /// All submarine cables, indexed by [`CableId`].
    pub cables: Vec<Cable>,
    /// Terrestrial conduits between city pairs (undirected).
    pub terrestrial: Vec<physical::TerrestrialEdge>,
    /// All autonomous systems, in ascending ASN order.
    pub ases: Vec<AsInfo>,
    /// AS-level business relationships (undirected records, kind is directed).
    pub relationships: Vec<AsRelationship>,
    /// Announced prefixes, indexed by [`PrefixId`].
    pub prefixes: Vec<PrefixInfo>,
    /// IP-layer links, indexed by [`LinkId`].
    pub links: Vec<IpLink>,
    /// Measurement probes, indexed by [`ProbeId`].
    pub probes: Vec<Probe>,

    asn_index: BTreeMap<Asn, usize>,
    /// Cross-layer index: cable → IP links riding it, ascending [`LinkId`].
    cable_links: Vec<Vec<LinkId>>,
    /// Lowercased cable name → cable (first cable wins on duplicate names).
    cable_name_index: BTreeMap<String, CableId>,
    /// Country → ASNs registered there, ascending.
    country_asns: BTreeMap<Country, Vec<Asn>>,
    /// Unordered AS pair (lower ASN first) → IP links between the pair,
    /// ascending [`LinkId`].
    pair_links: BTreeMap<(Asn, Asn), Vec<LinkId>>,
}

impl World {
    /// Internal constructor used by the generator; computes derived indices.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        config: &WorldConfig,
        cities: Vec<City>,
        cables: Vec<Cable>,
        terrestrial: Vec<physical::TerrestrialEdge>,
        ases: Vec<AsInfo>,
        relationships: Vec<AsRelationship>,
        prefixes: Vec<PrefixInfo>,
        links: Vec<IpLink>,
        probes: Vec<Probe>,
    ) -> World {
        let asn_index: BTreeMap<Asn, usize> =
            ases.iter().enumerate().map(|(i, a)| (a.asn, i)).collect();

        // Cross-layer index tables. These sit inside the Xaminer impact and
        // toolkit/traceroute hot loops, so they are built once here instead
        // of being recomputed by full scans on every lookup.
        let mut cable_links: Vec<Vec<LinkId>> = vec![Vec::new(); cables.len()];
        let mut pair_links: BTreeMap<(Asn, Asn), Vec<LinkId>> = BTreeMap::new();
        for link in &links {
            for cable in link.path.cables() {
                cable_links[cable.index()].push(link.id);
            }
            pair_links.entry(link.as_pair()).or_default().push(link.id);
        }
        let mut cable_name_index: BTreeMap<String, CableId> = BTreeMap::new();
        for c in &cables {
            cable_name_index.entry(c.name.to_ascii_lowercase()).or_insert(c.id);
        }
        let mut country_asns: BTreeMap<Country, Vec<Asn>> = BTreeMap::new();
        for a in &ases {
            country_asns.entry(a.country).or_default().push(a.asn);
        }

        World {
            seed: config.seed,
            config: config.clone(),
            cities,
            cables,
            terrestrial,
            ases,
            relationships,
            prefixes,
            links,
            probes,
            asn_index,
            cable_links,
            cable_name_index,
            country_asns,
            pair_links,
        }
    }

    /// Looks up a city.
    pub fn city(&self, id: CityId) -> &City {
        &self.cities[id.index()]
    }

    /// Looks up a cable.
    pub fn cable(&self, id: CableId) -> &Cable {
        &self.cables[id.index()]
    }

    /// Looks up an IP link.
    pub fn link(&self, id: LinkId) -> &IpLink {
        &self.links[id.index()]
    }

    /// Looks up a prefix.
    pub fn prefix(&self, id: PrefixId) -> &PrefixInfo {
        &self.prefixes[id.index()]
    }

    /// Looks up a probe.
    pub fn probe(&self, id: ProbeId) -> &Probe {
        &self.probes[id.index()]
    }

    /// Looks up AS metadata by ASN.
    pub fn as_info(&self, asn: Asn) -> Option<&AsInfo> {
        self.asn_index.get(&asn).map(|&i| &self.ases[i])
    }

    /// The dense position of an ASN in [`World::ases`] (ASNs ascending).
    ///
    /// This is the index space the dense routing engine and other
    /// `Vec`-backed per-AS tables share.
    pub fn asn_position(&self, asn: Asn) -> Option<usize> {
        self.asn_index.get(&asn).copied()
    }

    /// Finds a cable by (case-insensitive) name. O(log cables) via the
    /// precomputed name index.
    pub fn cable_by_name(&self, name: &str) -> Option<&Cable> {
        let lower = name.to_ascii_lowercase();
        self.cable_name_index.get(&lower).map(|&id| self.cable(id))
    }

    /// All IP links whose physical path rides the given cable, ascending.
    ///
    /// This is the cross-layer **ground truth** that the Nautilus substrate
    /// tries to *infer* from geometry and latency. O(k) map hit on the
    /// index precomputed at [`World::assemble`] time.
    pub fn links_on_cable(&self, cable: CableId) -> Vec<LinkId> {
        self.cable_links[cable.index()].clone()
    }

    /// Borrowed variant of [`World::links_on_cable`] for hot loops that
    /// only iterate.
    pub fn links_on_cable_ref(&self, cable: CableId) -> &[LinkId] {
        &self.cable_links[cable.index()]
    }

    /// ASNs registered in a country, ascending. O(k) map hit.
    pub fn asns_in_country(&self, country: Country) -> Vec<Asn> {
        self.country_asns.get(&country).cloned().unwrap_or_default()
    }

    /// How many ASes are registered in a country, without materializing
    /// the list — the Xaminer impact denominators use this per row.
    pub fn as_count_in_country(&self, country: Country) -> usize {
        self.country_asns.get(&country).map_or(0, |v| v.len())
    }

    /// IP links between an AS pair (order-insensitive), ascending
    /// [`LinkId`]. O(log pairs) — traceroute path resolution uses this
    /// instead of scanning every link per AS hop.
    pub fn links_between(&self, a: Asn, b: Asn) -> &[LinkId] {
        let pair = if a <= b { (a, b) } else { (b, a) };
        self.pair_links.get(&pair).map_or(&[], |v| v.as_slice())
    }

    /// The country a prefix geolocates to (origin-AS home country).
    pub fn prefix_country(&self, id: PrefixId) -> Country {
        let p = self.prefix(id);
        self.as_info(p.origin).expect("prefix origin AS exists").country
    }

    /// All cities in a country, in id order.
    pub fn cities_in_country(&self, country: Country) -> Vec<&City> {
        self.cities.iter().filter(|c| c.country == country).collect()
    }

    /// Quick structural sanity check; used by tests and the generator.
    pub fn validate(&self) -> Result<(), String> {
        for (i, c) in self.cities.iter().enumerate() {
            if c.id.index() != i {
                return Err(format!("city {} stored at index {i}", c.id));
            }
        }
        for (i, c) in self.cables.iter().enumerate() {
            if c.id.index() != i {
                return Err(format!("cable {} stored at index {i}", c.id));
            }
            if c.landings.len() < 2 {
                return Err(format!("cable {} has fewer than two landings", c.name));
            }
        }
        for (i, l) in self.links.iter().enumerate() {
            if l.id.index() != i {
                return Err(format!("link {} stored at index {i}", l.id));
            }
            if self.as_info(l.a.asn).is_none() || self.as_info(l.b.asn).is_none() {
                return Err(format!("link {} references unknown AS", l.id));
            }
        }
        for r in &self.relationships {
            if self.as_info(r.a).is_none() || self.as_info(r.b).is_none() {
                return Err("relationship references unknown AS".to_string());
            }
        }
        for p in &self.prefixes {
            if self.as_info(p.origin).is_none() {
                return Err(format!("prefix {} originated by unknown AS", p.net));
            }
        }
        // The precomputed cross-layer indices must agree with full scans.
        let indexed: usize = self.cable_links.iter().map(|v| v.len()).sum();
        let scanned: usize = self.links.iter().map(|l| l.path.cables().len()).sum();
        if indexed != scanned {
            return Err(format!("cable-link index covers {indexed} pairs, scan finds {scanned}"));
        }
        let paired: usize = self.pair_links.values().map(|v| v.len()).sum();
        if paired != self.links.len() {
            return Err(format!("pair-link index covers {paired}/{} links", self.links.len()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, WorldConfig};

    #[test]
    fn index_tables_match_full_scans() {
        let w = generate(&WorldConfig::default());
        for cable in &w.cables {
            let scan: Vec<LinkId> = w
                .links
                .iter()
                .filter(|l| l.path.cables().contains(&cable.id))
                .map(|l| l.id)
                .collect();
            assert_eq!(w.links_on_cable(cable.id), scan, "cable {}", cable.name);
            assert_eq!(w.links_on_cable_ref(cable.id), scan.as_slice());
            assert_eq!(w.cable_by_name(&cable.name).map(|c| c.id), Some(cable.id));
            assert_eq!(
                w.cable_by_name(&cable.name.to_ascii_uppercase()).map(|c| c.id),
                Some(cable.id)
            );
        }
        let countries: std::collections::BTreeSet<Country> =
            w.ases.iter().map(|a| a.country).collect();
        for &c in &countries {
            let scan: Vec<Asn> =
                w.ases.iter().filter(|a| a.country == c).map(|a| a.asn).collect();
            assert_eq!(w.asns_in_country(c), scan);
            assert_eq!(w.as_count_in_country(c), scan.len());
        }
        assert!(w.asns_in_country(Country(*b"ZZ")).is_empty());
        assert_eq!(w.as_count_in_country(Country(*b"ZZ")), 0);
    }

    #[test]
    fn pair_link_index_matches_connects_scan() {
        let w = generate(&WorldConfig::default());
        let probe_pairs: Vec<(Asn, Asn)> =
            w.links.iter().take(50).map(|l| l.as_pair()).collect();
        for (a, b) in probe_pairs {
            let scan: Vec<LinkId> =
                w.links.iter().filter(|l| l.connects(a, b)).map(|l| l.id).collect();
            assert_eq!(w.links_between(a, b), scan.as_slice());
            assert_eq!(w.links_between(b, a), scan.as_slice(), "order-insensitive");
        }
        assert!(w.links_between(Asn(1), Asn(2)).is_empty());
    }

    #[test]
    fn asn_position_matches_vec_order() {
        let w = generate(&WorldConfig::default());
        for (i, a) in w.ases.iter().enumerate() {
            assert_eq!(w.asn_position(a.asn), Some(i));
        }
        assert_eq!(w.asn_position(Asn(0)), None);
    }
}
