//! The autonomous-system layer: tiered topology and business relationships.
//!
//! The synthetic AS ecosystem mirrors the structure measurement research
//! cares about:
//!
//! * **Tier-1 backbones** — a global clique of transit-free networks with
//!   PoPs at every regional hub;
//! * **National transit** — one incumbent per country, customer of two or
//!   three geographically sensible tier-1s;
//! * **Access networks** — per-country eyeball ASes, customers of their
//!   national incumbent (and occasionally a second upstream for
//!   multihoming);
//! * **Content providers** — CDN-style networks present at many hubs,
//!   peering widely (the "major content providers" the paper's motivating
//!   query asks about).

use net_model::{Asn, CityId, Country, Region};
use serde::{Deserialize, Serialize};

/// Role of an AS in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AsTier {
    /// Transit-free global backbone.
    Tier1,
    /// National/regional transit provider.
    Transit,
    /// Eyeball / access network.
    Access,
    /// Content provider (CDN).
    Content,
}

impl AsTier {
    pub fn name(&self) -> &'static str {
        match self {
            AsTier::Tier1 => "tier1",
            AsTier::Transit => "transit",
            AsTier::Access => "access",
            AsTier::Content => "content",
        }
    }
}

/// Metadata for one AS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsInfo {
    pub asn: Asn,
    pub name: String,
    pub tier: AsTier,
    /// Registration country (where the operator is headquartered).
    pub country: Country,
    pub region: Region,
    /// Cities where this AS has a PoP/router presence.
    pub presence: Vec<CityId>,
}

impl AsInfo {
    /// Whether the AS has a PoP in the given city.
    pub fn present_at(&self, city: CityId) -> bool {
        self.presence.contains(&city)
    }
}

/// Kind of business relationship, directed from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelKind {
    /// `a` sells transit to `b` (`a` is the provider, `b` the customer).
    ProviderCustomer,
    /// Settlement-free peering between `a` and `b`.
    Peer,
}

/// One AS-level relationship record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsRelationship {
    pub a: Asn,
    pub b: Asn,
    pub kind: RelKind,
}

impl AsRelationship {
    /// Provider → customer edge.
    pub fn transit(provider: Asn, customer: Asn) -> Self {
        AsRelationship { a: provider, b: customer, kind: RelKind::ProviderCustomer }
    }

    /// Peering edge (stored with the lower ASN first for canonical form).
    pub fn peering(x: Asn, y: Asn) -> Self {
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        AsRelationship { a, b, kind: RelKind::Peer }
    }

    /// Whether this relationship involves the given ASN.
    pub fn involves(&self, asn: Asn) -> bool {
        self.a == asn || self.b == asn
    }

    /// The other endpoint, if `asn` is one of the two.
    pub fn other(&self, asn: Asn) -> Option<Asn> {
        if self.a == asn {
            Some(self.b)
        } else if self.b == asn {
            Some(self.a)
        } else {
            None
        }
    }
}

/// ASN allocation bands, so a raw ASN is self-describing in debug output.
pub mod asn_bands {
    /// Tier-1 backbones: 1001, 1002, …
    pub const TIER1_BASE: u32 = 1_000;
    /// National transit: 2000 + country index.
    pub const TRANSIT_BASE: u32 = 2_000;
    /// Access networks: 3000 + running index.
    pub const ACCESS_BASE: u32 = 3_000;
    /// Content providers: 15000 + i.
    pub const CONTENT_BASE: u32 = 15_000;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peering_is_canonicalized() {
        let r = AsRelationship::peering(Asn(9), Asn(3));
        assert_eq!(r.a, Asn(3));
        assert_eq!(r.b, Asn(9));
        assert_eq!(r.kind, RelKind::Peer);
    }

    #[test]
    fn transit_keeps_direction() {
        let r = AsRelationship::transit(Asn(9), Asn(3));
        assert_eq!(r.a, Asn(9), "provider first");
        assert_eq!(r.b, Asn(3));
    }

    #[test]
    fn involves_and_other() {
        let r = AsRelationship::transit(Asn(1), Asn(2));
        assert!(r.involves(Asn(1)) && r.involves(Asn(2)) && !r.involves(Asn(3)));
        assert_eq!(r.other(Asn(1)), Some(Asn(2)));
        assert_eq!(r.other(Asn(3)), None);
    }

    #[test]
    fn tier_names() {
        assert_eq!(AsTier::Tier1.name(), "tier1");
        assert_eq!(AsTier::Content.name(), "content");
    }
}
