//! Keyword search over the registry.
//!
//! A deliberately simple ranked retrieval: tokenize the query, score each
//! entry by weighted keyword overlap (id > tags > capability sentence),
//! return the top hits. One linear pass per query — the linear-scaling
//! property benchmarked in E5. Entry text is tokenized **once, at
//! `register()` time** ([`EntryTokens`]); each query only tokenizes
//! itself and probes the cached sorted token sets.

use crate::entry::CapabilityEntry;
use crate::Registry;

/// One search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit<'a> {
    pub entry: &'a CapabilityEntry,
    pub score: f64,
}

/// Lowercase alphanumeric tokens of `s`.
pub fn tokenize(s: &str) -> Vec<String> {
    s.split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| t.len() >= 2)
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

/// Cached lowercase token sets of one entry (sorted and deduplicated, so
/// membership is a binary search). Built once when the entry is
/// registered; rankings are identical to re-tokenizing on every score.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EntryTokens {
    id: Vec<String>,
    tags: Vec<String>,
    capability: Vec<String>,
}

fn sorted_tokens(mut tokens: Vec<String>) -> Vec<String> {
    tokens.sort();
    tokens.dedup();
    tokens
}

impl EntryTokens {
    /// Tokenizes an entry's searchable text.
    pub fn of(entry: &CapabilityEntry) -> EntryTokens {
        EntryTokens {
            id: sorted_tokens(tokenize(&entry.id.0)),
            tags: sorted_tokens(entry.tags.iter().flat_map(|t| tokenize(t)).collect()),
            capability: sorted_tokens(tokenize(&entry.capability)),
        }
    }
}

/// Scores cached entry tokens against pre-tokenized query terms.
fn score(tokens: &EntryTokens, terms: &[String]) -> f64 {
    if terms.is_empty() {
        return 0.0;
    }
    let mut s = 0.0;
    for term in terms {
        if tokens.id.binary_search(term).is_ok() {
            s += 3.0;
        }
        if tokens.tags.binary_search(term).is_ok() {
            s += 2.0;
        }
        if tokens.capability.binary_search(term).is_ok() {
            s += 1.0;
        }
    }
    s / terms.len() as f64
}

/// Ranked search, ties broken by function id for determinism.
pub fn search<'a>(registry: &'a Registry, query: &str, limit: usize) -> Vec<SearchHit<'a>> {
    let terms = tokenize(query);
    let mut hits: Vec<SearchHit<'a>> = registry
        .iter_with_tokens()
        .map(|(entry, tokens)| SearchHit { entry, score: score(tokens, &terms) })
        .filter(|h| h.score > 0.0)
        .collect();
    hits.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.entry.id.cmp(&b.entry.id))
    });
    hits.truncate(limit);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Param;
    use crate::DataFormat;

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register(
            CapabilityEntry::new(
                "nautilus.map_links",
                "nautilus",
                "maps IP links to submarine cables with confidence scores",
                vec![],
                DataFormat::MappingTable,
            )
            .with_tags(&["cable", "mapping", "cross-layer"]),
        )
        .unwrap();
        r.register(
            CapabilityEntry::new(
                "xaminer.process_event",
                "xaminer",
                "processes a failure event into affected links and countries",
                vec![Param::required("event", DataFormat::FailureEventSpec)],
                DataFormat::FailureImpact,
            )
            .with_tags(&["failure", "impact", "event"]),
        )
        .unwrap();
        r.register(
            CapabilityEntry::new(
                "bgp.updates",
                "bgp",
                "fetches BGP updates from collectors for a time window",
                vec![Param::required("window", DataFormat::TimeWindow)],
                DataFormat::BgpUpdates,
            )
            .with_tags(&["bgp", "routing", "updates"]),
        )
        .unwrap();
        r
    }

    #[test]
    fn relevant_entry_ranks_first() {
        let r = registry();
        let hits = r.search("map submarine cables", 10);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].entry.id.0, "nautilus.map_links");
    }

    #[test]
    fn id_tokens_score_highest() {
        let r = registry();
        let hits = r.search("process event", 10);
        assert_eq!(hits[0].entry.id.0, "xaminer.process_event");
    }

    #[test]
    fn irrelevant_query_returns_nothing() {
        let r = registry();
        assert!(r.search("quantum chromodynamics", 10).is_empty());
        assert!(r.search("", 10).is_empty());
    }

    #[test]
    fn limit_truncates() {
        let r = registry();
        let hits = r.search("event updates failure bgp", 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn tokenize_drops_punctuation_and_short_tokens() {
        assert_eq!(tokenize("IP-links, to: cables!"), vec!["ip", "links", "to", "cables"]);
        assert_eq!(tokenize("a b c"), Vec::<String>::new());
    }

    /// The register-time token cache must rank exactly like re-tokenizing
    /// every entry per query (the seed behaviour).
    #[test]
    fn cached_scores_match_retokenizing() {
        fn uncached_score(entry: &CapabilityEntry, terms: &[String]) -> f64 {
            if terms.is_empty() {
                return 0.0;
            }
            let id_tokens = tokenize(&entry.id.0);
            let tag_tokens: Vec<String> = entry.tags.iter().flat_map(|t| tokenize(t)).collect();
            let cap_tokens = tokenize(&entry.capability);
            let mut s = 0.0;
            for term in terms {
                if id_tokens.contains(term) {
                    s += 3.0;
                }
                if tag_tokens.contains(term) {
                    s += 2.0;
                }
                if cap_tokens.contains(term) {
                    s += 1.0;
                }
            }
            s / terms.len() as f64
        }

        let r = registry();
        let queries = [
            "map submarine cables",
            "process event",
            "bgp updates window",
            "failure impact cross-layer",
            "quantum chromodynamics",
            "",
            "cable cable cable",
        ];
        for q in queries {
            let terms = tokenize(q);
            for (entry, tokens) in r.iter_with_tokens() {
                assert_eq!(
                    score(tokens, &terms),
                    uncached_score(entry, &terms),
                    "entry {} query {q:?}",
                    entry.id
                );
            }
        }
    }
}
