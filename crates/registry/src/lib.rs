//! # registry — measurement capability encoding
//!
//! ArachNet's foundation: a curated catalog describing *what* measurement
//! tools can do, not *how* they do it. Each [`CapabilityEntry`] records a
//! tool function's capability sentence, typed inputs and output
//! ([`DataFormat`]), constraints, cost class and reliability — the
//! "measurement API" the agents compose against.
//!
//! Design notes carried over from the paper:
//!
//! * the registry is **compact** (capability sentences, not codebases) —
//!   agents reason over this view alone;
//! * entries are **typed**: workflow wiring is checked against input/output
//!   formats, which is what makes automated composition safe;
//! * the registry **evolves**: RegistryCurator adds validated composite
//!   capabilities ([`Implementation::Composite`]) mined from successful
//!   workflows;
//! * lookups scale **linearly** in the number of entries (benchmarked in
//!   E5).

pub mod entry;
pub mod format;
pub mod search;

pub use entry::{CapabilityEntry, CostClass, FunctionId, Implementation, Param};
pub use format::DataFormat;
pub use search::{EntryTokens, SearchHit};

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize, Value};

/// Errors raised by registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Attempted to register a function id twice.
    Duplicate(FunctionId),
    /// Composite refers to a function that is not registered.
    MissingDependency { composite: FunctionId, missing: FunctionId },
    /// (De)serialization failure.
    Serde(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Duplicate(id) => write!(f, "duplicate registry entry {id}"),
            RegistryError::MissingDependency { composite, missing } => {
                write!(f, "composite {composite} depends on unregistered {missing}")
            }
            RegistryError::Serde(e) => write!(f, "registry serialization error: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The capability registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    entries: BTreeMap<FunctionId, CapabilityEntry>,
    /// Per-entry token sets, built once at [`Registry::register`] time so
    /// search never re-tokenizes entry text (see [`search`]). Keyed in
    /// lockstep with `entries`; rebuilt (not persisted) on deserialize.
    tokens: BTreeMap<FunctionId, EntryTokens>,
}

// The token cache is derived state, so (de)serialization is hand-written:
// only `entries` is persisted (the same JSON shape the derive produced)
// and the cache is rebuilt when a registry is loaded — it can never go
// stale against its entries.
impl Serialize for Registry {
    fn serialize_json(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert("entries".to_string(), self.entries.serialize_json());
        Value::Object(obj)
    }
}

impl Deserialize for Registry {
    fn deserialize_json(v: &Value) -> Result<Self, serde::Error> {
        let obj = match v {
            Value::Object(m) => m,
            _ => return Err(serde::Error::msg("expected registry object")),
        };
        let entries_value =
            obj.get("entries").ok_or_else(|| serde::Error::msg("missing field entries"))?;
        let entries: BTreeMap<FunctionId, CapabilityEntry> =
            Deserialize::deserialize_json(entries_value)?;
        let tokens = entries.iter().map(|(id, e)| (id.clone(), EntryTokens::of(e))).collect();
        Ok(Registry { entries, tokens })
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers an entry; rejects duplicates and composites with missing
    /// dependencies.
    pub fn register(&mut self, entry: CapabilityEntry) -> Result<(), RegistryError> {
        if self.entries.contains_key(&entry.id) {
            return Err(RegistryError::Duplicate(entry.id));
        }
        if let Implementation::Composite { sequence } = &entry.implementation {
            for dep in sequence {
                if !self.entries.contains_key(dep) {
                    return Err(RegistryError::MissingDependency {
                        composite: entry.id.clone(),
                        missing: dep.clone(),
                    });
                }
            }
        }
        self.tokens.insert(entry.id.clone(), EntryTokens::of(&entry));
        self.entries.insert(entry.id.clone(), entry);
        Ok(())
    }

    /// Looks up an entry.
    pub fn get(&self, id: &FunctionId) -> Option<&CapabilityEntry> {
        self.entries.get(id)
    }

    /// Whether the function is registered.
    pub fn contains(&self, id: &FunctionId) -> bool {
        self.entries.contains_key(id)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in canonical (id) order.
    pub fn iter(&self) -> impl Iterator<Item = &CapabilityEntry> + '_ {
        self.entries.values()
    }

    /// Entries zipped with their register-time token caches, in canonical
    /// (id) order. The two maps are keyed in lockstep.
    pub(crate) fn iter_with_tokens(
        &self,
    ) -> impl Iterator<Item = (&CapabilityEntry, &EntryTokens)> + '_ {
        self.entries.values().zip(self.tokens.values())
    }

    /// Entries from one framework.
    pub fn from_framework<'a>(
        &'a self,
        framework: &'a str,
    ) -> impl Iterator<Item = &'a CapabilityEntry> + 'a {
        self.iter().filter(move |e| e.framework == framework)
    }

    /// Entries whose output format is compatible with `format`.
    pub fn producing(&self, format: DataFormat) -> Vec<&CapabilityEntry> {
        self.iter().filter(|e| e.output.compatible_with(format)).collect()
    }

    /// Keyword search over capability text and tags; see [`search`].
    pub fn search(&self, query: &str, limit: usize) -> Vec<SearchHit<'_>> {
        search::search(self, query, limit)
    }

    /// Frameworks represented, deduplicated and sorted.
    pub fn frameworks(&self) -> Vec<String> {
        let mut v: Vec<String> = self.iter().map(|e| e.framework.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Serializes to pretty JSON (the on-disk registry format).
    pub fn to_json(&self) -> Result<String, RegistryError> {
        serde_json::to_string_pretty(self).map_err(|e| RegistryError::Serde(e.to_string()))
    }

    /// Loads from JSON.
    pub fn from_json(s: &str) -> Result<Self, RegistryError> {
        serde_json::from_str(s).map_err(|e| RegistryError::Serde(e.to_string()))
    }

    /// The compact "registry view" serialized into agent prompts: one line
    /// per entry — id, capability, typed signature, cost and reliability.
    pub fn prompt_view(&self) -> String {
        let mut out = String::new();
        for e in self.iter() {
            let inputs: Vec<String> =
                e.inputs.iter().map(|p| format!("{}: {}", p.name, p.format)).collect();
            out.push_str(&format!(
                "{} [{}] ({}) -> {} | {} | cost={} reliability={:.2}\n",
                e.id,
                e.framework,
                inputs.join(", "),
                e.output,
                e.capability,
                e.cost,
                e.reliability
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, output: DataFormat) -> CapabilityEntry {
        CapabilityEntry::new(id, "test", &format!("does {id}"), vec![], output)
    }

    #[test]
    fn register_and_lookup() {
        let mut r = Registry::new();
        r.register(entry("a.f", DataFormat::ImpactReport)).unwrap();
        assert!(r.contains(&FunctionId::from("a.f")));
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn duplicate_rejected() {
        let mut r = Registry::new();
        r.register(entry("a.f", DataFormat::ImpactReport)).unwrap();
        let err = r.register(entry("a.f", DataFormat::ImpactReport)).unwrap_err();
        assert_eq!(err, RegistryError::Duplicate(FunctionId::from("a.f")));
    }

    #[test]
    fn composite_requires_dependencies() {
        let mut r = Registry::new();
        r.register(entry("a.f", DataFormat::ImpactReport)).unwrap();
        let mut comp = entry("macro.g", DataFormat::ImpactReport);
        comp.implementation = Implementation::Composite {
            sequence: vec![FunctionId::from("a.f"), FunctionId::from("a.missing")],
        };
        let err = r.register(comp).unwrap_err();
        assert!(matches!(err, RegistryError::MissingDependency { .. }));
    }

    #[test]
    fn producing_respects_compatibility() {
        let mut r = Registry::new();
        r.register(entry("a.links", DataFormat::CableDependencies)).unwrap();
        r.register(entry("a.report", DataFormat::ImpactReport)).unwrap();
        let hits = r.producing(DataFormat::CableDependencies);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, FunctionId::from("a.links"));
    }

    #[test]
    fn json_roundtrip() {
        let mut r = Registry::new();
        r.register(entry("a.f", DataFormat::ImpactReport)).unwrap();
        r.register(entry("b.g", DataFormat::CableDependencies)).unwrap();
        let json = r.to_json().unwrap();
        let back = Registry::from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back.contains(&FunctionId::from("b.g")));
    }

    #[test]
    fn prompt_view_is_one_line_per_entry() {
        let mut r = Registry::new();
        r.register(entry("a.f", DataFormat::ImpactReport)).unwrap();
        r.register(entry("b.g", DataFormat::CableDependencies)).unwrap();
        let view = r.prompt_view();
        assert_eq!(view.lines().count(), 2);
        assert!(view.contains("a.f"));
        assert!(view.contains("ImpactReport"));
    }

    #[test]
    fn frameworks_deduplicated() {
        let mut r = Registry::new();
        r.register(entry("a.f", DataFormat::CableDependencies)).unwrap();
        r.register(entry("a.g", DataFormat::CableDependencies)).unwrap();
        assert_eq!(r.frameworks(), vec!["test".to_string()]);
    }
}
