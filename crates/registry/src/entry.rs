//! Capability entries: the unit of registry knowledge.

use serde::{Deserialize, Serialize};

use crate::format::DataFormat;

/// Stable identifier of a registered function, conventionally
/// `framework.verb_object` (e.g. `xaminer.process_event`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FunctionId(pub String);

impl From<&str> for FunctionId {
    fn from(s: &str) -> Self {
        FunctionId(s.to_string())
    }
}

impl std::fmt::Display for FunctionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A declared input parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Param {
    pub name: String,
    pub format: DataFormat,
    /// Optional parameters may be omitted from a step's bindings.
    pub required: bool,
}

impl Param {
    /// A required parameter.
    pub fn required(name: &str, format: DataFormat) -> Param {
        Param { name: name.to_string(), format, required: true }
    }

    /// An optional parameter.
    pub fn optional(name: &str, format: DataFormat) -> Param {
        Param { name: name.to_string(), format, required: false }
    }
}

/// Coarse execution-cost class; WorkflowScout's trade-off scoring uses it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub enum CostClass {
    /// In-memory transformation.
    Cheap,
    /// Single-framework computation.
    #[default]
    Moderate,
    /// Large campaign / full recomputation.
    Expensive,
}

impl CostClass {
    /// Numeric weight used by the planner's cost model.
    pub fn weight(self) -> f64 {
        match self {
            CostClass::Cheap => 1.0,
            CostClass::Moderate => 3.0,
            CostClass::Expensive => 9.0,
        }
    }
}

impl std::fmt::Display for CostClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// How the function is realized by the tool runtime.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Implementation {
    /// A native tool function the runtime binds directly.
    #[default]
    Native,
    /// A curator-mined composite: run `sequence` in order, feeding each
    /// function's output into the next one's first required input.
    Composite { sequence: Vec<FunctionId> },
}

/// One registry entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapabilityEntry {
    pub id: FunctionId,
    /// Owning framework ("nautilus", "xaminer", "bgp", "traceroute",
    /// "util", "qa", or "composite" for curator-mined entries).
    pub framework: String,
    /// One-sentence capability description (search target).
    pub capability: String,
    /// Typed inputs.
    pub inputs: Vec<Param>,
    /// Output format.
    pub output: DataFormat,
    /// Free-text constraints surfaced to agents ("requires ≥ 7 days of
    /// data", "country-level granularity only").
    pub constraints: Vec<String>,
    /// Search keywords beyond the capability sentence.
    pub tags: Vec<String>,
    pub cost: CostClass,
    /// Historical reliability in `[0, 1]`; conflict resolution and
    /// trade-off scoring weigh it.
    pub reliability: f64,
    pub implementation: Implementation,
}

impl CapabilityEntry {
    /// A native entry with default cost/reliability; builder methods refine.
    pub fn new(
        id: &str,
        framework: &str,
        capability: &str,
        inputs: Vec<Param>,
        output: DataFormat,
    ) -> CapabilityEntry {
        CapabilityEntry {
            id: FunctionId::from(id),
            framework: framework.to_string(),
            capability: capability.to_string(),
            inputs,
            output,
            constraints: Vec::new(),
            tags: Vec::new(),
            cost: CostClass::Moderate,
            reliability: 0.9,
            implementation: Implementation::Native,
        }
    }

    /// Sets the cost class.
    pub fn with_cost(mut self, cost: CostClass) -> Self {
        self.cost = cost;
        self
    }

    /// Sets reliability.
    pub fn with_reliability(mut self, r: f64) -> Self {
        self.reliability = r.clamp(0.0, 1.0);
        self
    }

    /// Adds tags.
    pub fn with_tags(mut self, tags: &[&str]) -> Self {
        self.tags.extend(tags.iter().map(|t| t.to_string()));
        self
    }

    /// Adds a constraint sentence.
    pub fn with_constraint(mut self, c: &str) -> Self {
        self.constraints.push(c.to_string());
        self
    }

    /// Required parameters only.
    pub fn required_inputs(&self) -> impl Iterator<Item = &Param> + '_ {
        self.inputs.iter().filter(|p| p.required)
    }

    /// Finds a parameter by name.
    pub fn param(&self, name: &str) -> Option<&Param> {
        self.inputs.iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let e = CapabilityEntry::new(
            "x.f",
            "xaminer",
            "processes failure events",
            vec![Param::required("event", DataFormat::FailureEventSpec)],
            DataFormat::FailureImpact,
        )
        .with_cost(CostClass::Expensive)
        .with_reliability(1.5)
        .with_tags(&["failure", "impact"])
        .with_constraint("needs a dependency table");
        assert_eq!(e.cost, CostClass::Expensive);
        assert_eq!(e.reliability, 1.0, "reliability clamps to [0,1]");
        assert_eq!(e.tags.len(), 2);
        assert_eq!(e.constraints.len(), 1);
    }

    #[test]
    fn required_inputs_filters() {
        let e = CapabilityEntry::new(
            "x.f",
            "x",
            "c",
            vec![
                Param::required("a", DataFormat::Text),
                Param::optional("b", DataFormat::Scalar),
            ],
            DataFormat::Table,
        );
        let req: Vec<&str> = e.required_inputs().map(|p| p.name.as_str()).collect();
        assert_eq!(req, vec!["a"]);
        assert!(e.param("b").is_some());
        assert!(e.param("z").is_none());
    }

    #[test]
    fn cost_weights_are_ordered() {
        assert!(CostClass::Cheap.weight() < CostClass::Moderate.weight());
        assert!(CostClass::Moderate.weight() < CostClass::Expensive.weight());
    }

    #[test]
    fn function_id_display() {
        assert_eq!(FunctionId::from("a.b").to_string(), "a.b");
    }
}
