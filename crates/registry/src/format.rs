//! The data-format vocabulary: the semantic types flowing between
//! measurement tools.
//!
//! Formats are deliberately *semantic* ("a ranked table of per-country
//! impacts"), not syntactic (JSON vs CSV) — syntax is normalized by the
//! runtime; what agents must not confuse is meaning. Compatibility is
//! mostly equality plus a few safe widenings (`Any` accepts everything;
//! specific collections widen into `Table`).

use serde::{Deserialize, Serialize};

/// Semantic type of a value exchanged between workflow steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataFormat {
    // -- primitives / query-side --
    /// Free-form text.
    Text,
    /// A single number.
    Scalar,
    /// A time window on the scenario clock.
    TimeWindow,
    /// A geographic region name (continent-scale scope).
    RegionScope,
    /// A country set.
    CountrySet,
    /// A cable system reference (resolved id).
    CableRef,
    /// A set of disaster specifications parsed from a query.
    DisasterSpecs,

    // -- cross-layer cartography (Nautilus) --
    /// Inferred link→cable mapping with confidences.
    MappingTable,
    /// Cable→{links, ASes, countries} dependency view.
    DependencyTable,
    /// Dependencies of one cable.
    CableDependencies,

    // -- resilience analysis (Xaminer) --
    /// A failure event specification (cable / segment / disaster /
    /// compound).
    FailureEventSpec,
    /// Concrete failed assets and affected entities.
    FailureImpact,
    /// Aggregated per-country / per-AS impact report.
    ImpactReport,
    /// Country-level impact rows only.
    CountryImpactTable,
    /// Cascade propagation timeline.
    CascadeTimeline,
    /// Country risk profiles.
    RiskProfiles,

    // -- BGP --
    /// A stream of BGP updates.
    BgpUpdates,
    /// A RIB snapshot.
    RibSnapshot,
    /// Detected update bursts.
    BgpBursts,
    /// Detected MOAS (multiple-origin AS) conflicts.
    MoasConflicts,
    /// Announced paths violating the valley-free export rule.
    ValleyViolations,
    /// Attributed control-plane incident (hijack/leak) with the
    /// offending AS and confidence.
    ControlPlaneReport,

    // -- traceroute --
    /// A traceroute campaign (raw measurements).
    TracerouteCampaign,
    /// An RTT time series.
    RttSeries,
    /// A latency anomaly report (change points, magnitude, significance).
    AnomalyReport,

    // -- synthesis / forensic --
    /// Ranked suspect cables with scores.
    SuspectRanking,
    /// Temporal correlation between evidence streams.
    CorrelationReport,
    /// Final forensic verdict with confidence.
    ForensicVerdict,
    /// Multi-layer unified event timeline.
    UnifiedTimeline,
    /// Quality-assurance findings.
    QaReport,

    // -- generic --
    /// Generic tabular data.
    Table,
    /// Anything (used by QA probes that accept arbitrary input).
    Any,
}

impl DataFormat {
    /// Whether a value of `self` can be fed where `required` is expected.
    pub fn compatible_with(self, required: DataFormat) -> bool {
        if self == required || required == DataFormat::Any {
            return true;
        }
        // Safe widenings: structured collections can be consumed as tables.
        matches!(
            (self, required),
            (DataFormat::CountryImpactTable, DataFormat::Table)
                | (DataFormat::RiskProfiles, DataFormat::Table)
                | (DataFormat::SuspectRanking, DataFormat::Table)
                | (DataFormat::RttSeries, DataFormat::Table)
                | (DataFormat::MoasConflicts, DataFormat::Table)
                | (DataFormat::ValleyViolations, DataFormat::Table)
        )
    }

    /// All formats (for property tests and search indexing).
    pub fn all() -> Vec<DataFormat> {
        use DataFormat::*;
        vec![
            Text, Scalar, TimeWindow, RegionScope, CountrySet, CableRef, DisasterSpecs,
            MappingTable, DependencyTable, CableDependencies, FailureEventSpec, FailureImpact,
            ImpactReport, CountryImpactTable, CascadeTimeline, RiskProfiles, BgpUpdates,
            RibSnapshot, BgpBursts, MoasConflicts, ValleyViolations, ControlPlaneReport,
            TracerouteCampaign, RttSeries, AnomalyReport, SuspectRanking,
            CorrelationReport, ForensicVerdict, UnifiedTimeline, QaReport, Table, Any,
        ]
    }
}

impl std::fmt::Display for DataFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_compatible() {
        for f in DataFormat::all() {
            assert!(f.compatible_with(f));
        }
    }

    #[test]
    fn any_accepts_everything() {
        for f in DataFormat::all() {
            assert!(f.compatible_with(DataFormat::Any));
        }
    }

    #[test]
    fn any_is_not_a_universal_source() {
        assert!(!DataFormat::Any.compatible_with(DataFormat::ImpactReport));
    }

    #[test]
    fn widening_to_table_is_one_way() {
        assert!(DataFormat::RttSeries.compatible_with(DataFormat::Table));
        assert!(!DataFormat::Table.compatible_with(DataFormat::RttSeries));
    }

    #[test]
    fn incompatible_pairs_rejected() {
        assert!(!DataFormat::BgpUpdates.compatible_with(DataFormat::RttSeries));
        assert!(!DataFormat::ImpactReport.compatible_with(DataFormat::CascadeTimeline));
    }

    #[test]
    fn display_is_debug_like() {
        assert_eq!(DataFormat::ImpactReport.to_string(), "ImpactReport");
    }
}
