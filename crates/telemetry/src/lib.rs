//! Deterministic observability for the serving stack.
//!
//! The paper's workflow is only auditable if the system can explain
//! *what it did*: which tools ran, what was retried, which breakers
//! tripped, where the (logical) time went. This crate is that layer —
//! and, unusually, it is **deterministic**: spans and events are
//! timestamped on the executor's logical clock (attempt/backoff ticks),
//! ids are content-derived via `stable_hash`, and concurrent
//! observations are buffered per invocation and folded in workflow list
//! order, so the trace for a fixed (scenario, query, fault seed) is
//! byte-identical across 1/2/8 workers and reruns. That makes traces
//! *artifacts*: they can be content-hashed, linked from provenance
//! records, and diffed across runs like any other deterministic output.
//!
//! Model:
//!
//! - [`Span`] — session → workflow → step → attempt intervals,
//! - [`Event`] — retries, fault injections, breaker transitions, cache
//!   probes, epoch lifecycle, poison attribution ([`EventKind`]),
//! - [`MetricsRegistry`] / [`MetricsSnapshot`] — counters and
//!   logical-duration histograms (fixed-width buckets, the
//!   `TimeWindow::buckets` geometry),
//! - [`Recorder`] — the shared collection point handed down through
//!   `ExecOptions` / `Engine` / `CampaignRunner`,
//! - exporters — canonical JSON ([`Trace::to_canonical_json`], hashed by
//!   [`Trace::content_hash`]) and Chrome `trace_event`
//!   ([`Trace::to_chrome_json`]) for flamegraph-style profiling.

pub mod metrics;
pub mod recorder;
pub mod trace;

pub use metrics::{CounterSnapshot, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use recorder::{Recorder, StepObservation};
pub use trace::{Event, EventKind, Span, SpanKind, SpanStatus, Trace};
