//! The trace model: spans and events on a logical clock.
//!
//! A trace is a flat list of [`Span`]s (session → workflow → step →
//! attempt) and [`Event`]s (retries, fault injections, breaker
//! transitions, cache probes, epoch lifecycle, poison attribution), all
//! timestamped in **logical ticks** — the executor's own attempt/backoff
//! counters — never wall clock. Two runs of the same (scenario, query,
//! fault seed) therefore produce byte-identical traces regardless of
//! worker count or machine speed; the conformance `no-wall-clock` rule
//! enforces the discipline statically.
//!
//! Span ids are content-derived via the same SplitMix64 fold the world
//! substrate uses (`world::events::stable_hash`), salted with a
//! per-trace sequence number so repeated (kind, name) pairs stay
//! distinct.

use serde::{Deserialize, Serialize};
use world::events::stable_hash;

/// What level of the serving stack a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpanKind {
    /// One `Session::run`: generation plus execution of a single query.
    Session,
    /// One `execute_with` pass over a workflow DAG.
    Workflow,
    /// One step of the DAG (all attempts plus backoff).
    Step,
    /// A single invocation attempt of a step's tool function.
    Attempt,
}

impl SpanKind {
    /// Stable numeric tag folded into span ids.
    pub(crate) fn tag(self) -> u64 {
        match self {
            SpanKind::Session => 1,
            SpanKind::Workflow => 2,
            SpanKind::Step => 3,
            SpanKind::Attempt => 4,
        }
    }

    /// Category label used by the Chrome exporter.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Session => "session",
            SpanKind::Workflow => "workflow",
            SpanKind::Step => "step",
            SpanKind::Attempt => "attempt",
        }
    }
}

/// Terminal status of a span, mirroring `RunHealth`/`StepResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpanStatus {
    /// Completed successfully.
    Ok,
    /// Completed with non-critical failures (degraded serving).
    Degraded,
    /// Failed after exhausting its retry budget.
    Failed,
    /// Never invoked: an upstream dependency failed.
    Poisoned,
}

impl SpanStatus {
    /// Short label used by exporters and metrics counter names.
    pub fn label(self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Degraded => "degraded",
            SpanStatus::Failed => "failed",
            SpanStatus::Poisoned => "poisoned",
        }
    }
}

/// A closed interval on the logical clock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Content-derived id (`stable_hash` of kind, name, parent, seq).
    pub id: u64,
    /// Enclosing span, if any (sessions are roots).
    pub parent: Option<u64>,
    /// Stack level.
    pub kind: SpanKind,
    /// Step id, function id, or query text depending on `kind`.
    pub name: String,
    /// Logical tick at which the span opened.
    pub start: u64,
    /// Logical tick at which the span closed (`end >= start`).
    pub end: u64,
    /// Terminal status.
    pub status: SpanStatus,
}

/// Something that happened at a point on the logical clock.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// The executor scheduled another attempt after a transient failure.
    Retry { attempt: u32, backoff_ticks: u64 },
    /// The chaos runtime injected a failure for this invocation.
    FaultInjected { function: String, transient: bool },
    /// The chaos runtime replaced a successful output with garbage.
    OutputCorrupted { function: String },
    /// The chaos runtime charged synthetic latency to this invocation.
    SlowTicks { function: String, ticks: u64 },
    /// A circuit breaker changed phase (Closed/Open/HalfOpen).
    BreakerTransition {
        function: String,
        from: String,
        to: String,
    },
    /// An open breaker refused the call before it reached the tool.
    CallShed { function: String },
    /// A configured fallback function answered for a failed primary.
    FallbackInvoked { function: String, substitute: String },
    /// A cache probe found the entry warm.
    CacheHit { key: String },
    /// A cache probe missed and the entry was built.
    CacheMiss { key: String },
    /// A session pinned this registry epoch for its lifetime.
    EpochPinned { sequence: u64 },
    /// Curation published a new registry epoch.
    EpochPublished { sequence: u64 },
    /// A step was skipped because these root steps failed upstream.
    PoisonAttributed { roots: Vec<String> },
}

impl EventKind {
    /// Stable snake_case label; also the suffix of the auto-bumped
    /// `events.<label>` counter.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Retry { .. } => "retry",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::OutputCorrupted { .. } => "output_corrupted",
            EventKind::SlowTicks { .. } => "slow_ticks",
            EventKind::BreakerTransition { .. } => "breaker_transition",
            EventKind::CallShed { .. } => "call_shed",
            EventKind::FallbackInvoked { .. } => "fallback_invoked",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::EpochPinned { .. } => "epoch_pinned",
            EventKind::EpochPublished { .. } => "epoch_published",
            EventKind::PoisonAttributed { .. } => "poison_attributed",
        }
    }
}

/// An [`EventKind`] anchored to a span and a logical tick.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// The span the event belongs to (`None` for pre-session events).
    pub span: Option<u64>,
    /// Logical tick.
    pub at: u64,
    /// What happened.
    pub kind: EventKind,
}

/// A complete recorded execution: spans and events in deterministic
/// (fold) order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    pub spans: Vec<Span>,
    pub events: Vec<Event>,
}

impl Trace {
    /// Canonical JSON: object keys are sorted (the serializer builds
    /// BTreeMap objects) and collections are already in fold order, so
    /// equal traces serialize to equal bytes.
    pub fn to_canonical_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }

    /// Content hash of the canonical JSON — the value `ProvenanceRecord`
    /// links traces by.
    pub fn content_hash(&self) -> u64 {
        let json = self.to_canonical_json();
        stable_hash(&str_words(&json))
    }

    /// Chrome `trace_event` export: complete (`"ph":"X"`) events for
    /// spans and instant (`"ph":"i"`) events, logical ticks rendered as
    /// microseconds so `chrome://tracing` / Perfetto draw a flamegraph.
    pub fn to_chrome_json(&self) -> String {
        // NOTE: values are bound to locals first — the vendored `json!`
        // macro cannot carry `::` paths inside value expressions.
        let mut entries = Vec::with_capacity(self.spans.len() + self.events.len());
        for span in &self.spans {
            let id = format!("{:016x}", span.id);
            let dur = span.end.saturating_sub(span.start);
            entries.push(serde_json::json!({
                "name": span.name,
                "cat": span.kind.label(),
                "ph": "X",
                "ts": span.start,
                "dur": dur,
                "pid": 1,
                "tid": 1,
                "args": { "id": id, "status": span.status.label() },
            }));
        }
        for event in &self.events {
            let span = event.span.map(|s| format!("{s:016x}"));
            let detail = serde_json::to_string(&event.kind).unwrap_or_default();
            entries.push(serde_json::json!({
                "name": event.kind.label(),
                "cat": "event",
                "ph": "i",
                "ts": event.at,
                "s": "t",
                "pid": 1,
                "tid": 1,
                "args": { "span": span, "detail": detail },
            }));
        }
        serde_json::to_string(&serde_json::json!({ "traceEvents": entries }))
            .unwrap_or_default()
    }
}

/// Fold a string into hash words: length prefix plus packed bytes
/// (same scheme the campaign provenance layer uses).
pub(crate) fn str_words(s: &str) -> Vec<u64> {
    let bytes = s.as_bytes();
    let mut words = Vec::with_capacity(1 + bytes.len() / 8 + 1);
    words.push(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = 0u64;
        for (i, b) in chunk.iter().enumerate() {
            word |= (*b as u64) << (8 * i);
        }
        words.push(word);
    }
    words
}

/// Derive a span id from its content plus a per-trace sequence number.
pub(crate) fn span_id(kind: SpanKind, name: &str, parent: Option<u64>, seq: u64) -> u64 {
    let mut parts = vec![0x5350_414E_5350_414E, kind.tag()];
    parts.extend(str_words(name));
    parts.push(parent.unwrap_or(0));
    parts.push(seq);
    stable_hash(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_stable_and_distinct() {
        let a = span_id(SpanKind::Step, "s00", None, 0);
        let b = span_id(SpanKind::Step, "s00", None, 0);
        let c = span_id(SpanKind::Step, "s00", None, 1);
        let d = span_id(SpanKind::Attempt, "s00", None, 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn canonical_json_roundtrips() {
        let trace = Trace {
            spans: vec![Span {
                id: 7,
                parent: None,
                kind: SpanKind::Workflow,
                name: "w".into(),
                start: 0,
                end: 3,
                status: SpanStatus::Degraded,
            }],
            events: vec![Event {
                span: Some(7),
                at: 1,
                kind: EventKind::Retry {
                    attempt: 0,
                    backoff_ticks: 2,
                },
            }],
        };
        let json = trace.to_canonical_json();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.content_hash(), trace.content_hash());
    }

    #[test]
    fn chrome_export_contains_span_and_instant_phases() {
        let trace = Trace {
            spans: vec![Span {
                id: 1,
                parent: None,
                kind: SpanKind::Step,
                name: "s".into(),
                start: 0,
                end: 1,
                status: SpanStatus::Ok,
            }],
            events: vec![Event {
                span: Some(1),
                at: 0,
                kind: EventKind::CacheHit { key: "k".into() },
            }],
        };
        let chrome = trace.to_chrome_json();
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"ph\":\"X\"") || chrome.contains("\"ph\": \"X\""));
        assert!(chrome.contains("\"ph\":\"i\"") || chrome.contains("\"ph\": \"i\""));
    }
}
