//! The [`Recorder`]: thread-safe collection point for spans, events and
//! metrics.
//!
//! Determinism contract: the executor's workers call
//! [`Recorder::emit_invocation`] concurrently, but every such event is
//! *buffered* keyed by `(step id, attempt)` — nothing enters the trace
//! yet. When the executor's single-threaded fold runs (workflow list
//! order, the same fold that builds `ExecutionReport`), it calls
//! [`Recorder::record_workflow`] with per-step observations in list
//! order; that one call assembles step and attempt spans on the logical
//! clock and drains each invocation's buffered events into the trace in
//! emission order. Because fault injection and breaker decisions inside
//! a single invocation run on one thread, each buffer's internal order
//! is deterministic, and the fold ordering makes the whole trace
//! byte-identical across 1/2/8 workers.
//!
//! The serial lane ([`Recorder::begin_span`] / [`Recorder::end_span`] /
//! [`Recorder::emit`]) is for code that is already single-threaded per
//! recorder: session lifecycles, epoch pins/publishes, registration
//! cache probes.
//!
//! Logical clock: each attempt costs one tick; each retry additionally
//! advances by its backoff (`base << attempt`, the executor's own
//! schedule); a poisoned (never-invoked) step costs one tick. Wall
//! clocks never appear — the crate is in conformance's
//! `DETERMINISTIC_CRATES` and scans clean under `no-wall-clock`.

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::trace::{span_id, Event, EventKind, Span, SpanKind, SpanStatus, Trace};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;

/// Maximum shift applied to the backoff base — mirrors
/// `RetryPolicy::backoff_ticks`.
const MAX_BACKOFF_SHIFT: u32 = 16;

/// What the executor observed for one step, in workflow list order.
/// The bridge between `ExecutionReport`'s fold and the trace assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepObservation {
    /// Step id (span name for the step span).
    pub step: String,
    /// Tool function id (span name for attempt spans).
    pub function: String,
    /// False when the step was poisoned and never invoked.
    pub invoked: bool,
    /// Retries consumed (attempts = retries + 1 when invoked).
    pub retries: u32,
    /// Terminal status of the step.
    pub status: SpanStatus,
    /// Failed root steps this step's poisoning is attributed to.
    pub poison_roots: Vec<String>,
}

#[derive(Default)]
struct RecorderState {
    /// Events buffered per (step id, attempt) until the fold drains them.
    pending: BTreeMap<(String, u32), Vec<EventKind>>,
    trace: Trace,
    /// The logical clock.
    clock: u64,
    /// Indices into `trace.spans` of currently-open spans (stack).
    open: Vec<usize>,
    /// Per-trace sequence salt for span ids.
    seq: u64,
    metrics: MetricsRegistry,
}

impl RecorderState {
    fn current_span(&self) -> Option<u64> {
        self.open.last().map(|&i| self.trace.spans[i].id)
    }

    fn begin(&mut self, kind: SpanKind, name: &str) -> u64 {
        let parent = self.current_span();
        let id = span_id(kind, name, parent, self.seq);
        self.seq += 1;
        self.trace.spans.push(Span {
            id,
            parent,
            kind,
            name: name.to_string(),
            start: self.clock,
            end: self.clock,
            // Placeholder until `end` closes the span.
            status: SpanStatus::Ok,
        });
        self.open.push(self.trace.spans.len() - 1);
        id
    }

    fn end(&mut self, status: SpanStatus) {
        if let Some(index) = self.open.pop() {
            let span = &mut self.trace.spans[index];
            span.end = self.clock;
            span.status = status;
        }
    }

    fn emit(&mut self, kind: EventKind) {
        self.metrics.add(&format!("events.{}", kind.label()), 1);
        self.trace.events.push(Event {
            span: self.current_span(),
            at: self.clock,
            kind,
        });
    }

    /// Attach an event to the innermost open span at the current tick
    /// without the counter bump (used when draining buffers whose
    /// counters were bumped at emission time).
    fn attach(&mut self, kind: EventKind) {
        self.trace.events.push(Event {
            span: self.current_span(),
            at: self.clock,
            kind,
        });
    }
}

/// Thread-safe deterministic trace/metrics collector. Cheap to share as
/// `Arc<Recorder>`; all methods take `&self`.
#[derive(Default)]
pub struct Recorder {
    state: Mutex<RecorderState>,
}

impl Recorder {
    pub fn new() -> Self {
        Recorder::default()
    }

    // -- concurrent lane (workers) ------------------------------------

    /// Buffer an event observed during the invocation `(step, attempt)`.
    /// Called by runtime wrappers (chaos, resilience) from any worker
    /// thread; the event enters the trace when the executor's fold
    /// reaches that step. Also bumps the `events.<label>` counter.
    pub fn emit_invocation(&self, step: &str, attempt: u32, kind: EventKind) {
        let mut state = self.state.lock();
        state.metrics.add(&format!("events.{}", kind.label()), 1);
        state
            .pending
            .entry((step.to_string(), attempt))
            .or_default()
            .push(kind);
    }

    /// Count an event that has no invocation context (direct `invoke`
    /// outside the executor): metrics only, never enters the trace.
    pub fn count_event(&self, kind: &EventKind) {
        self.state
            .lock()
            .metrics
            .add(&format!("events.{}", kind.label()), 1);
    }

    /// Add to a named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.state.lock().metrics.add(name, delta);
    }

    /// Record a histogram observation (geometry fixed at first use).
    pub fn observe(&self, name: &str, lo: u64, hi: u64, buckets: usize, value: u64) {
        self.state.lock().metrics.observe(name, lo, hi, buckets, value);
    }

    // -- serial lane (session / engine lifecycles) --------------------

    /// Open a span as a child of the innermost open span. Returns the
    /// content-derived span id.
    pub fn begin_span(&self, kind: SpanKind, name: &str) -> u64 {
        self.state.lock().begin(kind, name)
    }

    /// Close the innermost open span with `status`.
    pub fn end_span(&self, status: SpanStatus) {
        self.state.lock().end(status);
    }

    /// Emit an event on the innermost open span at the current tick.
    pub fn emit(&self, kind: EventKind) {
        self.state.lock().emit(kind);
    }

    /// Advance the logical clock.
    pub fn advance(&self, ticks: u64) {
        self.state.lock().clock += ticks;
    }

    // -- the fold -----------------------------------------------------

    /// Assemble the workflow/step/attempt spans for one executed
    /// workflow from the executor's per-step observations (workflow list
    /// order — the same order `ExecutionReport` folds in). Drains the
    /// invocation event buffers; any buffer left over (e.g. synthetic
    /// salts from direct `invoke` calls) is discarded, its events having
    /// already been counted. One workflow is recorded at a time per
    /// recorder — the executor runs under a single `execute_with` call.
    pub fn record_workflow(&self, workflow: &str, backoff_base: u64, steps: &[StepObservation]) {
        let mut state = self.state.lock();
        state.begin(SpanKind::Workflow, workflow);
        let mut attempts_total = 0u64;
        let mut retries_total = 0u64;
        let mut backoff_total = 0u64;
        let mut worst = SpanStatus::Ok;
        for obs in steps {
            let step_start = state.clock;
            state.begin(SpanKind::Step, &obs.step);
            if !obs.invoked {
                if !obs.poison_roots.is_empty() {
                    state.emit(EventKind::PoisonAttributed {
                        roots: obs.poison_roots.clone(),
                    });
                }
                state.clock += 1;
                state.end(obs.status);
            } else {
                let attempts = obs.retries + 1;
                attempts_total += attempts as u64;
                retries_total += obs.retries as u64;
                for attempt in 0..attempts {
                    state.begin(SpanKind::Attempt, &obs.function);
                    let buffered = state
                        .pending
                        .remove(&(obs.step.clone(), attempt))
                        .unwrap_or_default();
                    for kind in buffered {
                        state.attach(kind);
                    }
                    state.clock += 1;
                    let last = attempt + 1 == attempts;
                    state.end(if last { obs.status } else { SpanStatus::Failed });
                    if !last {
                        let backoff =
                            backoff_base << attempt.min(MAX_BACKOFF_SHIFT);
                        state.emit(EventKind::Retry {
                            attempt,
                            backoff_ticks: backoff,
                        });
                        state.clock += backoff;
                        backoff_total += backoff;
                    }
                }
                state.end(obs.status);
            }
            let step_ticks = state.clock - step_start;
            state
                .metrics
                .observe("trace.step_ticks", 0, 64, 8, step_ticks);
            if obs.status > worst {
                worst = obs.status;
            }
        }
        state.end(match worst {
            SpanStatus::Ok => SpanStatus::Ok,
            // Any non-ok step degrades or fails the workflow span; the
            // session span carries the authoritative RunHealth mapping.
            _ => SpanStatus::Degraded,
        });
        state.metrics.add("trace.workflows", 1);
        state.metrics.add("trace.steps", steps.len() as u64);
        state.metrics.add("trace.attempts", attempts_total);
        state.metrics.add("trace.retries", retries_total);
        state.metrics.add("trace.backoff_ticks", backoff_total);
        state.pending.clear();
    }

    // -- exporters ----------------------------------------------------

    /// Clone of the assembled trace.
    pub fn trace(&self) -> Trace {
        self.state.lock().trace.clone()
    }

    /// Canonical JSON export (byte-identical for identical runs).
    pub fn trace_json(&self) -> String {
        self.state.lock().trace.to_canonical_json()
    }

    /// Chrome `trace_event` export for `chrome://tracing` / Perfetto.
    pub fn chrome_trace(&self) -> String {
        self.state.lock().trace.to_chrome_json()
    }

    /// Content hash of the canonical trace — the value provenance
    /// records link by.
    pub fn trace_hash(&self) -> u64 {
        self.state.lock().trace.content_hash()
    }

    /// Snapshot of every counter and histogram recorded so far.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.state.lock().metrics.snapshot()
    }
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        f.debug_struct("Recorder")
            .field("spans", &state.trace.spans.len())
            .field("events", &state.trace.events.len())
            .field("clock", &state.clock)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_step(step: &str, function: &str) -> StepObservation {
        StepObservation {
            step: step.into(),
            function: function.into(),
            invoked: true,
            retries: 0,
            status: SpanStatus::Ok,
            poison_roots: Vec::new(),
        }
    }

    #[test]
    fn record_workflow_builds_parented_spans_on_the_logical_clock() {
        let recorder = Recorder::new();
        recorder.record_workflow("w", 2, &[ok_step("s0", "f.a"), ok_step("s1", "f.b")]);
        let trace = recorder.trace();
        // workflow + 2 steps + 2 attempts
        assert_eq!(trace.spans.len(), 5);
        let workflow = &trace.spans[0];
        assert_eq!(workflow.kind, SpanKind::Workflow);
        assert_eq!(workflow.parent, None);
        assert_eq!((workflow.start, workflow.end), (0, 2));
        let step0 = &trace.spans[1];
        assert_eq!(step0.parent, Some(workflow.id));
        let attempt0 = &trace.spans[2];
        assert_eq!(attempt0.kind, SpanKind::Attempt);
        assert_eq!(attempt0.parent, Some(step0.id));
        assert_eq!((attempt0.start, attempt0.end), (0, 1));
        let step1 = &trace.spans[3];
        assert_eq!((step1.start, step1.end), (1, 2));
    }

    #[test]
    fn retries_advance_backoff_and_emit_retry_events() {
        let recorder = Recorder::new();
        let mut obs = ok_step("s0", "f.a");
        obs.retries = 2;
        obs.status = SpanStatus::Failed;
        recorder.record_workflow("w", 2, &[obs]);
        let trace = recorder.trace();
        // attempts at ticks [0,1), [3,4) (backoff 2), [8,9) (backoff 4)
        let attempts: Vec<&Span> = trace
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Attempt)
            .collect();
        assert_eq!(attempts.len(), 3);
        assert_eq!((attempts[0].start, attempts[0].end), (0, 1));
        assert_eq!((attempts[1].start, attempts[1].end), (3, 4));
        assert_eq!((attempts[2].start, attempts[2].end), (8, 9));
        assert_eq!(attempts[0].status, SpanStatus::Failed);
        let retries: Vec<&Event> = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Retry { .. }))
            .collect();
        assert_eq!(retries.len(), 2);
        let snap = recorder.metrics_snapshot();
        assert_eq!(snap.counter("trace.retries"), 2);
        assert_eq!(snap.counter("trace.backoff_ticks"), 6);
        assert_eq!(snap.counter("events.retry"), 2);
    }

    #[test]
    fn buffered_invocation_events_land_on_their_attempt_span() {
        let recorder = Recorder::new();
        recorder.emit_invocation(
            "s0",
            1,
            EventKind::FaultInjected {
                function: "f.a".into(),
                transient: true,
            },
        );
        let mut obs = ok_step("s0", "f.a");
        obs.retries = 1;
        recorder.record_workflow("w", 1, &[obs]);
        let trace = recorder.trace();
        let fault = trace
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::FaultInjected { .. }))
            .expect("fault event drained into the trace");
        let attempt1 = trace
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Attempt)
            .nth(1)
            .expect("second attempt span");
        assert_eq!(fault.span, Some(attempt1.id));
        assert_eq!(fault.at, attempt1.start);
    }

    #[test]
    fn poisoned_steps_get_attribution_events() {
        let recorder = Recorder::new();
        let mut poisoned = ok_step("s1", "f.b");
        poisoned.invoked = false;
        poisoned.status = SpanStatus::Poisoned;
        poisoned.poison_roots = vec!["s0".into()];
        recorder.record_workflow("w", 1, &[ok_step("s0", "f.a"), poisoned]);
        let trace = recorder.trace();
        let attribution = trace
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::PoisonAttributed { .. }))
            .expect("poison attribution recorded");
        let step1 = trace
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Step && s.name == "s1")
            .expect("poisoned step span");
        assert_eq!(attribution.span, Some(step1.id));
        assert_eq!(step1.status, SpanStatus::Poisoned);
    }

    #[test]
    fn serial_lane_nests_session_spans() {
        let recorder = Recorder::new();
        recorder.begin_span(SpanKind::Session, "query");
        recorder.emit(EventKind::EpochPinned { sequence: 3 });
        recorder.record_workflow("w", 1, &[ok_step("s0", "f.a")]);
        recorder.end_span(SpanStatus::Ok);
        let trace = recorder.trace();
        let session = &trace.spans[0];
        assert_eq!(session.kind, SpanKind::Session);
        let workflow = trace
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Workflow)
            .expect("workflow span");
        assert_eq!(workflow.parent, Some(session.id));
        assert_eq!(trace.events[0].span, Some(session.id));
        assert_eq!(session.end, 1, "session clock advanced by the workflow");
    }

    #[test]
    fn identical_runs_are_byte_identical() {
        let run = || {
            let recorder = Recorder::new();
            recorder.emit_invocation(
                "s0",
                0,
                EventKind::FaultInjected {
                    function: "f.a".into(),
                    transient: false,
                },
            );
            let mut obs = ok_step("s0", "f.a");
            obs.retries = 1;
            obs.status = SpanStatus::Failed;
            recorder.record_workflow("w", 4, &[obs]);
            (recorder.trace_json(), recorder.trace_hash())
        };
        assert_eq!(run(), run());
    }
}
