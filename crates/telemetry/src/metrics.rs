//! Deterministic metrics: named counters and logical-duration
//! histograms.
//!
//! Everything is keyed by `BTreeMap`, so snapshots enumerate in name
//! order and two identical runs produce identical snapshots byte for
//! byte. Histogram buckets use the same fixed-width geometry as the
//! world substrate's `TimeWindow::buckets`: `n` equal slices of
//! `[lo, hi)`, with out-of-range observations clamped into the first or
//! last bucket (never dropped — `count`/`sum`/`min`/`max` always cover
//! every observation).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Internal accumulation state for one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
struct HistogramState {
    lo: u64,
    hi: u64,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl HistogramState {
    fn new(lo: u64, hi: u64, buckets: usize) -> Self {
        HistogramState {
            lo,
            hi,
            buckets: vec![0; buckets.max(1)],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        let n = self.buckets.len() as u64;
        let width = (self.hi.saturating_sub(self.lo)) / n;
        // width == 0 (degenerate range) clamps everything to the last
        // bucket.
        let index = (value.max(self.lo) - self.lo)
            .checked_div(width)
            .unwrap_or(n - 1)
            .min(n - 1);
        self.buckets[index as usize] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }
}

/// A counter captured at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    pub name: String,
    pub value: u64,
}

/// A histogram captured at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub name: String,
    /// Lower bound of the bucketed range (inclusive).
    pub lo: u64,
    /// Upper bound of the bucketed range (exclusive).
    pub hi: u64,
    /// Fixed-width bucket occupancy over `[lo, hi)`; the first and last
    /// buckets also absorb out-of-range observations.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    /// Smallest observation (`0` when `count == 0`).
    pub min: u64,
    /// Largest observation (`0` when `count == 0`).
    pub max: u64,
}

/// An immutable, ordered view of every counter and histogram — attached
/// to `ExecutionReport`, `SessionRun` and `CampaignReport`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter, `0` when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// A histogram by name, if any observation was recorded under it.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

/// Mutable registry of counters and histograms. Name order (BTreeMap)
/// makes `snapshot()` deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramState>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `delta` to the named counter (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        let slot = self.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Record one observation into the named histogram. The bucket
    /// geometry (`lo`, `hi`, `buckets`) is fixed by the first call for a
    /// given name; later calls reuse it and ignore their own geometry
    /// arguments.
    pub fn observe(&mut self, name: &str, lo: u64, hi: u64, buckets: usize, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| HistogramState::new(lo, hi, buckets))
            .observe(value);
    }

    /// Fold another registry into this one: counters add, histograms
    /// merge bucket-wise (the earlier geometry wins on conflicts).
    pub fn merge(&mut self, snapshot: &MetricsSnapshot) {
        for counter in &snapshot.counters {
            self.add(&counter.name, counter.value);
        }
        for hist in &snapshot.histograms {
            let state = self
                .histograms
                .entry(hist.name.clone())
                .or_insert_with(|| HistogramState::new(hist.lo, hist.hi, hist.buckets.len()));
            if state.buckets.len() == hist.buckets.len() {
                for (slot, add) in state.buckets.iter_mut().zip(hist.buckets.iter()) {
                    *slot += add;
                }
            } else {
                // Geometry mismatch: keep totals exact, spread into the
                // clamped buckets via min/max as best effort.
                for _ in 0..hist.count {
                    state.observe(hist.min);
                }
            }
            state.count += hist.count;
            state.sum = state.sum.saturating_add(hist.sum);
            if hist.count > 0 {
                state.min = state.min.min(hist.min);
                state.max = state.max.max(hist.max);
            }
        }
    }

    /// Capture the current state, ordered by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, value)| CounterSnapshot {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| HistogramSnapshot {
                    name: name.clone(),
                    lo: h.lo,
                    hi: h.hi,
                    buckets: h.buckets.clone(),
                    count: h.count,
                    sum: h.sum,
                    min: if h.count == 0 { 0 } else { h.min },
                    max: h.max,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        reg.add("a", 2);
        reg.add("a", 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_clamp_out_of_range() {
        let mut reg = MetricsRegistry::new();
        // [0, 8) in 4 buckets of width 2.
        for v in [0, 1, 3, 7, 100] {
            reg.observe("h", 0, 8, 4, v);
        }
        let snap = reg.snapshot();
        let h = snap.histogram("h").expect("histogram recorded");
        assert_eq!(h.buckets, vec![2, 1, 0, 2]); // 100 clamps into the last
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 111);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100);
    }

    #[test]
    fn degenerate_geometry_is_safe() {
        let mut reg = MetricsRegistry::new();
        reg.observe("z", 5, 5, 0, 9);
        let h = reg.snapshot();
        let h = h.histogram("z").expect("histogram recorded");
        assert_eq!(h.buckets.len(), 1);
        assert_eq!(h.buckets[0], 1);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::new();
        a.add("c", 1);
        a.observe("h", 0, 8, 4, 1);
        let mut b = MetricsRegistry::new();
        b.add("c", 2);
        b.observe("h", 0, 8, 4, 7);
        a.merge(&b.snapshot());
        let snap = a.snapshot();
        assert_eq!(snap.counter("c"), 3);
        let h = snap.histogram("h").expect("merged histogram");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 8);
        assert_eq!(h.buckets, vec![1, 0, 0, 1]);
    }

    #[test]
    fn snapshots_enumerate_in_name_order() {
        let mut reg = MetricsRegistry::new();
        reg.add("zeta", 1);
        reg.add("alpha", 1);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
