//! The trace determinism suite: for arbitrary generated DAGs *and*
//! arbitrary generated fault plans, the recorder's canonical trace is
//!
//! * byte-identical across 1, 2 and 8 executor workers — concurrent
//!   invocation events are buffered per `(step, attempt)` and drained by
//!   the executor's single-threaded fold in workflow list order;
//! * byte-identical across reruns (fresh recorder, fresh runtime);
//! * structurally well-formed — every span parent and every event span
//!   reference resolves.
//!
//! A pinned degraded-CS5 serve rides along: fault injection plus a
//! circuit breaker over the full engine stack, with the expected event
//! choreography (inject, inject, trip, shed, shed, half-open probe)
//! asserted attempt by attempt.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use chaos::{ChaosRuntime, FaultKind, FaultPlan};
use registry::{CapabilityEntry, DataFormat, FunctionId, Param, Registry};
use telemetry::{EventKind, MetricsSnapshot, Recorder, SpanKind, Trace};
use workflow::{
    execute_with, ExecOptions, RetryPolicy, Step, ToolError, ToolRuntime, Value, Workflow,
};

/// The three workable functions fault plans can target (mirrors the
/// chaos determinism suite — same shape, now traced).
const FUNCTIONS: [&str; 3] = ["c.alpha", "c.beta", "c.gamma"];

fn toy_registry() -> Registry {
    let deps: Vec<Param> =
        (0..8).map(|i| Param::optional(&format!("d{i}"), DataFormat::Table)).collect();
    let mut r = Registry::new();
    for id in FUNCTIONS {
        r.register(CapabilityEntry::new(id, "chaos", "toy", deps.clone(), DataFormat::Table))
            .unwrap();
    }
    r
}

/// Deterministic base runtime: concatenates input tables and tags the
/// output with the function name.
struct BaseRuntime;

impl ToolRuntime for BaseRuntime {
    fn invoke(
        &self,
        function: &FunctionId,
        args: &BTreeMap<String, Value>,
    ) -> Result<Value, ToolError> {
        let mut rows: Vec<serde_json::Value> = Vec::new();
        for (name, v) in args {
            if let Some(a) = v.json().as_array() {
                rows.extend(a.iter().cloned());
            }
            rows.push(serde_json::Value::String(name.clone()));
        }
        rows.push(serde_json::Value::String(function.0.clone()));
        Ok(Value::new(DataFormat::Table, serde_json::Value::Array(rows)))
    }
}

#[derive(Debug, Clone)]
struct StepSpec {
    /// Index into [`FUNCTIONS`].
    function: usize,
    /// Bitmask over earlier steps.
    deps: u8,
    critical: bool,
}

fn step_spec() -> impl Strategy<Value = StepSpec> {
    (0usize..FUNCTIONS.len(), any::<u8>(), any::<bool>())
        .prop_map(|(function, deps, critical)| StepSpec { function, deps, critical })
}

fn fault_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        (1u32..4).prop_map(|failures| FaultKind::Transient { failures }),
        Just(FaultKind::Persistent),
        Just(FaultKind::Corrupt),
        (1u64..100).prop_map(|ticks| FaultKind::Slow { ticks }),
    ]
}

fn maybe_fault() -> impl Strategy<Value = Option<FaultKind>> {
    prop_oneof![Just(None), fault_kind().prop_map(Some)]
}

fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        proptest::collection::vec(maybe_fault(), FUNCTIONS.len()),
        0u32..300_000,
    )
        .prop_map(|(seed, kinds, ppm)| {
            let mut plan = FaultPlan::new(seed).with_background_failures(ppm);
            for (i, kind) in kinds.into_iter().enumerate() {
                if let Some(kind) = kind {
                    plan = plan.with_fault(FUNCTIONS[i], kind);
                }
            }
            plan
        })
}

fn build_workflow(specs: &[StepSpec]) -> Workflow {
    let mut wf = Workflow::new("trace-dag", "generated");
    for (i, spec) in specs.iter().enumerate() {
        let mut step = Step::new(&format!("s{i:02}"), FUNCTIONS[spec.function]);
        if !spec.critical {
            step = step.non_critical();
        }
        for j in 0..i.min(8) {
            if spec.deps & (1 << j) != 0 {
                step = step.bind_step(&format!("d{j}"), &format!("s{j:02}"));
            }
        }
        wf.push(step);
    }
    for i in 0..specs.len() {
        wf = wf.with_output(&format!("s{i:02}"));
    }
    wf
}

/// One traced chaos execution with a fresh recorder and runtime.
/// Returns the canonical JSON, its content hash, the Chrome export and
/// the metrics snapshot — everything a replay must reproduce exactly.
fn traced_run(
    wf: &Workflow,
    registry: &Registry,
    plan: &FaultPlan,
    workers: usize,
    retry: RetryPolicy,
) -> (String, u64, String, MetricsSnapshot, Trace) {
    let recorder = Arc::new(Recorder::new());
    let runtime =
        ChaosRuntime::new(BaseRuntime, plan.clone()).with_recorder(Arc::clone(&recorder));
    let _ = execute_with(
        wf,
        registry,
        &runtime,
        &BTreeMap::new(),
        &ExecOptions { workers, retry, recorder: Some(Arc::clone(&recorder)) },
    );
    (
        recorder.trace_json(),
        recorder.trace_hash(),
        recorder.chrome_trace(),
        recorder.metrics_snapshot(),
        recorder.trace(),
    )
}

/// Every span parent and event span reference must resolve to a span in
/// the same trace; span intervals must sit on the logical clock.
fn assert_well_formed(trace: &Trace) {
    let ids: std::collections::BTreeSet<u64> = trace.spans.iter().map(|s| s.id).collect();
    assert_eq!(ids.len(), trace.spans.len(), "span ids are unique");
    for span in &trace.spans {
        if let Some(parent) = span.parent {
            assert!(ids.contains(&parent), "dangling parent {parent:#x}");
        }
        assert!(span.start <= span.end, "span runs backwards");
    }
    for event in &trace.events {
        if let Some(span) = event.span {
            assert!(ids.contains(&span), "event on unknown span {span:#x}");
        }
    }
}

fn check_plan(specs: &[StepSpec], plan: &FaultPlan) {
    let wf = build_workflow(specs);
    let registry = toy_registry();
    let retry = RetryPolicy::with_retries(2);
    let baseline = traced_run(&wf, &registry, plan, 1, retry);
    assert_well_formed(&baseline.4);
    // Byte-identical across worker counts: same JSON, hash, Chrome
    // export and metrics snapshot.
    for workers in [2usize, 8] {
        let run = traced_run(&wf, &registry, plan, workers, retry);
        assert_eq!(run.0, baseline.0, "workers={workers}: canonical trace diverged");
        assert_eq!(run.1, baseline.1, "workers={workers}: trace hash diverged");
        assert_eq!(run.2, baseline.2, "workers={workers}: chrome export diverged");
        assert_eq!(run.3, baseline.3, "workers={workers}: metrics diverged");
    }
    // Byte-identical on rerun (fresh recorder, fresh chaos counters).
    let again = traced_run(&wf, &registry, plan, 1, retry);
    assert_eq!(again.0, baseline.0, "rerun diverged");
    assert_eq!(again.1, baseline.1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_fault_plans_trace_deterministically(
        specs in proptest::collection::vec(step_spec(), 1..10),
        plan in fault_plan(),
    ) {
        check_plan(&specs, &plan);
    }
}

/// The CI seed matrix: pinned plans over a pinned diamond DAG.
#[test]
fn fixed_seed_matrix_traces_deterministically() {
    let specs = vec![
        StepSpec { function: 0, deps: 0, critical: true },
        StepSpec { function: 1, deps: 0b1, critical: false },
        StepSpec { function: 2, deps: 0b1, critical: true },
        StepSpec { function: 0, deps: 0b110, critical: true },
        StepSpec { function: 1, deps: 0, critical: false },
    ];
    for seed in [1u64, 7, 42, 1337] {
        let plan = FaultPlan::new(seed)
            .with_fault("c.beta", FaultKind::Transient { failures: (seed % 4) as u32 })
            .with_fault(
                "c.gamma",
                if seed % 2 == 0 {
                    FaultKind::Persistent
                } else {
                    FaultKind::Slow { ticks: seed % 97 }
                },
            )
            .with_background_failures((seed % 5) as u32 * 50_000);
        check_plan(&specs, &plan);
    }
}

// ---------------------------------------------------------------------
// Pinned degraded-CS5 serve over the full engine stack.
// ---------------------------------------------------------------------

/// Serves the CS5 hijack-forensics query with a transient outage on
/// `bgp.valley_violations` behind a tight circuit breaker, tracing the
/// whole session. With `trip_after: 2`, `cooldown_invocations: 2` and a
/// retry budget of 4, the five attempts choreograph as: inject, inject
/// (trips Closed→Open), shed, shed (cooldown spent), half-open probe
/// (injects again, re-opens).
fn serve_degraded_cs5() -> (Arc<Recorder>, workflow::RunHealth) {
    let recorder = Arc::new(Recorder::new());
    let engine = arachnet::Engine::new(
        Arc::new(arachnet::DeterministicExpertModel::new()),
        toolkit::standard_registry(),
    )
    .with_fault_plan(
        FaultPlan::new(7)
            .with_fault("bgp.valley_violations", FaultKind::Transient { failures: 10 }),
    )
    .with_resilience(toolkit::ResilienceConfig::new(toolkit::BreakerConfig {
        trip_after: 2,
        cooldown_invocations: 2,
    }))
    .with_retry_policy(RetryPolicy::with_retries(4))
    .with_recorder(Arc::clone(&recorder));
    engine.register_scenario("cs5", toolkit::scenarios::cs5_hijack_scenario());
    let session = engine.session("cs5").expect("cs5 registered");
    let scenario = session.scenario();
    let horizon_days = scenario.horizon.duration().as_seconds() / 86_400;
    let context = toolkit::query_context(&scenario.world, scenario.now, horizon_days);
    let run = session
        .run(toolkit::scenarios::CS5_QUERY, &context)
        .expect("query serves despite faults");
    (recorder, run.health)
}

#[test]
fn degraded_cs5_trace_pins_the_breaker_choreography() {
    let (recorder, health) = serve_degraded_cs5();
    assert!(health.is_degraded(), "valley detector is non-critical: {health:?}");
    let trace = recorder.trace();
    assert_well_formed(&trace);

    // The outage target gets five attempt spans (1 + 4 retries), all
    // parented under one step span.
    let attempts: Vec<&telemetry::Span> = trace
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Attempt && s.name == "bgp.valley_violations")
        .collect();
    assert_eq!(attempts.len(), 5, "1 attempt + 4 retries");
    let step = attempts[0].parent.expect("attempt has a step parent");
    assert!(attempts.iter().all(|a| a.parent == Some(step)));

    // Attempt index an event landed on, by matching its span id.
    let attempt_of = |span: Option<u64>| {
        attempts.iter().position(|a| Some(a.id) == span)
    };
    let mut injected: Vec<usize> = Vec::new();
    let mut shed: Vec<usize> = Vec::new();
    let mut transitions: Vec<(String, String)> = Vec::new();
    for event in &trace.events {
        match &event.kind {
            EventKind::FaultInjected { function, transient } if function == "bgp.valley_violations" => {
                assert!(*transient);
                injected.push(attempt_of(event.span).expect("fault on an attempt span"));
            }
            EventKind::CallShed { function } if function == "bgp.valley_violations" => {
                shed.push(attempt_of(event.span).expect("shed on an attempt span"));
            }
            EventKind::BreakerTransition { function, from, to }
                if function == "bgp.valley_violations" =>
            {
                transitions.push((from.clone(), to.clone()));
            }
            _ => {}
        }
    }
    assert_eq!(injected, vec![0, 1, 4], "inject, inject, …, half-open probe");
    assert_eq!(shed, vec![2, 3], "breaker sheds while open");
    assert_eq!(
        transitions,
        vec![
            ("Closed".to_string(), "Open".to_string()),
            ("Open".to_string(), "HalfOpen".to_string()),
            ("HalfOpen".to_string(), "Open".to_string()),
        ],
        "trip, half-open probe, re-open"
    );

    // Parentage chain: attempt → step → workflow → session (the root),
    // with the epoch pin recorded on the session span.
    let span_by_id = |id: u64| trace.spans.iter().find(|s| s.id == id).expect("span");
    let step_span = span_by_id(step);
    assert_eq!(step_span.kind, SpanKind::Step);
    let workflow_span = span_by_id(step_span.parent.expect("step has workflow parent"));
    assert_eq!(workflow_span.kind, SpanKind::Workflow);
    let session_span = span_by_id(workflow_span.parent.expect("workflow has session parent"));
    assert_eq!(session_span.kind, SpanKind::Session);
    assert_eq!(session_span.parent, None, "session is the root");
    assert_eq!(session_span.status, telemetry::SpanStatus::Degraded);
    assert!(trace.events.iter().any(|e| matches!(e.kind, EventKind::EpochPinned { sequence: 0 })
        && e.span == Some(session_span.id)));

    // The whole degraded serve replays byte-identically.
    let (again, _) = serve_degraded_cs5();
    assert_eq!(again.trace_json(), recorder.trace_json());
    assert_eq!(again.trace_hash(), recorder.trace_hash());
}
