//! Per-rule fixture coverage: one violating and one clean fixture per
//! rule, pragma-allow behavior, and baseline matching/expiry.

use std::path::PathBuf;

use conformance::{scan, Baseline, Finding};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures")).join(name)
}

fn rule_count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn violating_fixture_trips_every_rule() {
    let scan = scan(&fixture("violating")).expect("fixture scans");
    let f = &scan.findings;

    // no-unordered-iteration: the import, the annotation and the
    // HashSet use — but not the #[cfg(test)] module's maps.
    assert_eq!(rule_count(f, "no-unordered-iteration"), 3);
    assert!(f
        .iter()
        .filter(|x| x.rule == "no-unordered-iteration")
        .all(|x| x.file == "crates/world/src/iteration.rs"));

    // no-wall-clock: Instant + SystemTime.
    assert_eq!(rule_count(f, "no-wall-clock"), 2);

    // no-unseeded-rng: thread_rng + rand::random.
    assert_eq!(rule_count(f, "no-unseeded-rng"), 2);

    // scoped-threads-only: the detached spawn + the lock-and-push.
    assert_eq!(rule_count(f, "scoped-threads-only"), 2);
    assert!(f
        .iter()
        .any(|x| x.rule == "scoped-threads-only" && x.snippet.contains("push")));

    // panic-budget: one crate-level aggregate for `core`.
    assert_eq!(rule_count(f, "panic-budget"), 1);
    let budget = f.iter().find(|x| x.rule == "panic-budget").expect("present");
    assert_eq!(budget.file, "crates/core");
    assert!(budget.message.contains("panics.rs"), "sites listed: {}", budget.message);

    // float-total-order: the partial_cmp sort and the bare float cast —
    // but not the clean tree's `.trunc()`/`.round()` casts.
    assert_eq!(rule_count(f, "float-total-order"), 2);
    assert!(f
        .iter()
        .filter(|x| x.rule == "float-total-order")
        .all(|x| x.file == "crates/world/src/floats.rs"));

    // no-shared-mutation: static mut + thread_local! + Relaxed.
    assert_eq!(rule_count(f, "no-shared-mutation"), 3);
    assert!(f
        .iter()
        .any(|x| x.rule == "no-shared-mutation" && x.snippet.contains("static mut")));

    // unused-pragma: the allow that suppresses nothing.
    assert_eq!(rule_count(f, "unused-pragma"), 1);
    let stale = f.iter().find(|x| x.rule == "unused-pragma").expect("present");
    assert_eq!(stale.file, "crates/world/src/stale_pragma.rs");
    assert!(stale.message.contains("no-wall-clock"), "{}", stale.message);

    // paired-engines: the dense-only field and the dense-only variant.
    assert_eq!(rule_count(f, "paired-engines"), 2);
    let drifted: Vec<&str> = f
        .iter()
        .filter(|x| x.rule == "paired-engines")
        .map(|x| x.message.split('`').nth(1).expect("name quoted"))
        .collect();
    assert!(drifted.contains(&"drop_prefixes"), "got {drifted:?}");
    assert!(drifted.contains(&"PrefixHijack"), "got {drifted:?}");

    assert!(scan.allowed.is_empty());
}

#[test]
fn clean_fixture_is_silent() {
    let scan = scan(&fixture("clean")).expect("fixture scans");
    assert_eq!(
        scan.findings,
        Vec::new(),
        "clean fixtures must produce zero findings"
    );
}

#[test]
fn pragma_allow_suppresses_with_reason_only() {
    let scan = scan(&fixture("pragma")).expect("fixture scans");

    // allowed.rs: both pragmas (standalone + preceding-line) suppress.
    assert!(!scan
        .findings
        .iter()
        .any(|f| f.file == "crates/world/src/allowed.rs"));
    assert_eq!(
        scan.allowed
            .iter()
            .filter(|f| f.file == "crates/world/src/allowed.rs")
            .count(),
        2
    );

    // malformed.rs: the reason-less pragma is a finding and suppresses
    // nothing — the HashMap it hoped to cover still fires.
    assert_eq!(rule_count(&scan.findings, "pragma-syntax"), 1);
    assert!(scan
        .findings
        .iter()
        .any(|f| f.rule == "no-unordered-iteration"
            && f.file == "crates/world/src/malformed.rs"
            && f.snippet.contains("use std::collections::HashMap")));
}

#[test]
fn deps_violating_fixture_breaks_the_closure() {
    let scan = scan(&fixture("deps-violating")).expect("fixture scans");
    let closure: Vec<&Finding> = scan
        .findings
        .iter()
        .filter(|f| f.rule == "deterministic-closure")
        .collect();
    assert_eq!(closure.len(), 5, "got {closure:#?}");

    // Marker/list drift, both directions.
    assert!(closure
        .iter()
        .any(|f| f.file == "crates/registry/Cargo.toml" && f.message.contains("lacks")));
    assert!(closure.iter().any(|f| f.file == "crates/extra/Cargo.toml"
        && f.message.contains("absent from DETERMINISTIC_CRATES")));

    // All three bad edges out of `world`: the nondeterministic workspace
    // dep, the unapproved vendored path dep, and the external spec.
    let world: Vec<_> =
        closure.iter().filter(|f| f.file == "crates/world/Cargo.toml").collect();
    assert_eq!(world.len(), 3);
    assert!(world.iter().any(|f| f.message.contains("`llm`")));
    assert!(world.iter().any(|f| f.message.contains("`vendor/criterion`")));
    assert!(world
        .iter()
        .any(|f| f.message.contains("external dependency `rand_core`")));

    // The findings are semantic, not parse failures.
    assert!(scan.graph.as_ref().expect("graph parsed").errors.is_empty());
}

#[test]
fn deps_clean_fixture_closure_holds() {
    let scan = scan(&fixture("deps-clean")).expect("fixture scans");
    assert_eq!(rule_count(&scan.findings, "deterministic-closure"), 0);
    // The only finding is paired-engines noting the tree has no routing
    // engines to pair — this fixture exercises the manifest layer only.
    assert!(
        scan.findings.iter().all(|f| f.rule == "paired-engines"),
        "closure-clean tree is clean at the manifest layer: {:#?}",
        scan.findings
    );

    let graph = scan.graph.as_ref().expect("manifests parsed");
    assert!(graph.is_deterministic("world"));
    assert!(graph.is_deterministic("net-model"));
    let world = graph.package("world").expect("world in graph");
    assert!(
        world.deps.iter().any(|d| d.key.as_deref() == Some("vendor/serde")),
        "the workspace-table serde dep resolves to the vendored stand-in"
    );
}

#[test]
fn baseline_covers_then_expires() {
    let violating = scan(&fixture("violating")).expect("fixture scans");

    // Grandfather everything: nothing new, nothing stale.
    let baseline = Baseline::from_findings(&violating.findings);
    let outcome = baseline.apply(violating.findings.clone());
    assert!(outcome.new.is_empty());
    assert!(outcome.stale.is_empty());
    assert_eq!(outcome.baselined.len(), violating.findings.len());

    // Round-trip through JSON keeps covering.
    let reloaded = Baseline::from_json(&baseline.to_json()).expect("parses");
    assert!(reloaded.apply(violating.findings.clone()).new.is_empty());

    // Drop one entry: exactly the findings it covered become new.
    let mut shrunk = baseline.clone();
    let removed = shrunk.entries.remove(0);
    let outcome = shrunk.apply(violating.findings.clone());
    assert_eq!(outcome.new.len(), removed.count);
    assert!(outcome.new.iter().all(|f| f.rule == removed.rule));

    // Fix the findings (here: scan the clean tree instead): every entry
    // is now expired and the scan demands the baseline shrink.
    let clean = scan(&fixture("clean")).expect("fixture scans");
    let outcome = baseline.apply(clean.findings);
    assert!(outcome.new.is_empty());
    assert_eq!(outcome.stale.len(), baseline.entries.len());
}
