//! Per-rule fixture coverage: one violating and one clean fixture per
//! rule, pragma-allow behavior, and baseline matching/expiry.

use std::path::PathBuf;

use conformance::{scan, Baseline, Finding};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures")).join(name)
}

fn rule_count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn violating_fixture_trips_every_rule() {
    let scan = scan(&fixture("violating")).expect("fixture scans");
    let f = &scan.findings;

    // no-unordered-iteration: the import, the annotation and the
    // HashSet use — but not the #[cfg(test)] module's maps.
    assert_eq!(rule_count(f, "no-unordered-iteration"), 3);
    assert!(f
        .iter()
        .filter(|x| x.rule == "no-unordered-iteration")
        .all(|x| x.file == "crates/world/src/iteration.rs"));

    // no-wall-clock: Instant + SystemTime.
    assert_eq!(rule_count(f, "no-wall-clock"), 2);

    // no-unseeded-rng: thread_rng + rand::random.
    assert_eq!(rule_count(f, "no-unseeded-rng"), 2);

    // scoped-threads-only: the detached spawn + the lock-and-push.
    assert_eq!(rule_count(f, "scoped-threads-only"), 2);
    assert!(f
        .iter()
        .any(|x| x.rule == "scoped-threads-only" && x.snippet.contains("push")));

    // panic-budget: one crate-level aggregate for `core`.
    assert_eq!(rule_count(f, "panic-budget"), 1);
    let budget = f.iter().find(|x| x.rule == "panic-budget").expect("present");
    assert_eq!(budget.file, "crates/core");
    assert!(budget.message.contains("panics.rs"), "sites listed: {}", budget.message);

    // paired-engines: the dense-only field and the dense-only variant.
    assert_eq!(rule_count(f, "paired-engines"), 2);
    let drifted: Vec<&str> = f
        .iter()
        .filter(|x| x.rule == "paired-engines")
        .map(|x| x.message.split('`').nth(1).expect("name quoted"))
        .collect();
    assert!(drifted.contains(&"drop_prefixes"), "got {drifted:?}");
    assert!(drifted.contains(&"PrefixHijack"), "got {drifted:?}");

    assert!(scan.allowed.is_empty());
}

#[test]
fn clean_fixture_is_silent() {
    let scan = scan(&fixture("clean")).expect("fixture scans");
    assert_eq!(
        scan.findings,
        Vec::new(),
        "clean fixtures must produce zero findings"
    );
}

#[test]
fn pragma_allow_suppresses_with_reason_only() {
    let scan = scan(&fixture("pragma")).expect("fixture scans");

    // allowed.rs: both pragmas (standalone + preceding-line) suppress.
    assert!(!scan
        .findings
        .iter()
        .any(|f| f.file == "crates/world/src/allowed.rs"));
    assert_eq!(
        scan.allowed
            .iter()
            .filter(|f| f.file == "crates/world/src/allowed.rs")
            .count(),
        2
    );

    // malformed.rs: the reason-less pragma is a finding and suppresses
    // nothing — the HashMap it hoped to cover still fires.
    assert_eq!(rule_count(&scan.findings, "pragma-syntax"), 1);
    assert!(scan
        .findings
        .iter()
        .any(|f| f.rule == "no-unordered-iteration"
            && f.file == "crates/world/src/malformed.rs"
            && f.snippet.contains("use std::collections::HashMap")));
}

#[test]
fn baseline_covers_then_expires() {
    let violating = scan(&fixture("violating")).expect("fixture scans");

    // Grandfather everything: nothing new, nothing stale.
    let baseline = Baseline::from_findings(&violating.findings);
    let outcome = baseline.apply(violating.findings.clone());
    assert!(outcome.new.is_empty());
    assert!(outcome.stale.is_empty());
    assert_eq!(outcome.baselined.len(), violating.findings.len());

    // Round-trip through JSON keeps covering.
    let reloaded = Baseline::from_json(&baseline.to_json()).expect("parses");
    assert!(reloaded.apply(violating.findings.clone()).new.is_empty());

    // Drop one entry: exactly the findings it covered become new.
    let mut shrunk = baseline.clone();
    let removed = shrunk.entries.remove(0);
    let outcome = shrunk.apply(violating.findings.clone());
    assert_eq!(outcome.new.len(), removed.count);
    assert!(outcome.new.iter().all(|f| f.rule == removed.rule));

    // Fix the findings (here: scan the clean tree instead): every entry
    // is now expired and the scan demands the baseline shrink.
    let clean = scan(&fixture("clean")).expect("fixture scans");
    let outcome = baseline.apply(clean.findings);
    assert!(outcome.new.is_empty());
    assert_eq!(outcome.stale.len(), baseline.entries.len());
}
