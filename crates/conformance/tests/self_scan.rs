//! The workspace scans itself clean — and the gate actually fires when
//! a violation is injected.

use std::path::{Path, PathBuf};

use conformance::{scan_workspace, Baseline, SourceFile, Workspace, BASELINE_PATH};

fn workspace_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_has_zero_non_baselined_findings() {
    let root = workspace_root();
    let scan = conformance::scan(&root).expect("workspace scans");
    assert!(scan.files_scanned > 80, "scanned {} files", scan.files_scanned);
    assert!(conformance::all_rules().len() >= 5);

    let baseline = Baseline::load(&root.join(BASELINE_PATH)).expect("baseline loads");
    let outcome = baseline.apply(scan.findings);
    assert_eq!(
        outcome.new,
        Vec::new(),
        "the workspace must scan clean against the committed baseline"
    );
    assert_eq!(outcome.stale.len(), 0, "stale baseline entries must be removed");

    // The committed baseline grandfathers no determinism findings in
    // the crates whose byte-identical outputs the ROADMAP pins.
    for entry in &baseline.entries {
        let determinism = matches!(
            entry.rule.as_str(),
            "no-unordered-iteration" | "no-wall-clock" | "no-unseeded-rng"
        );
        let pinned_crate = ["crates/core", "crates/workflow", "crates/scenario-forge"]
            .iter()
            .any(|p| entry.file.starts_with(p));
        assert!(
            !(determinism && pinned_crate),
            "determinism finding grandfathered in a pinned crate: {entry:?}"
        );
    }
}

#[test]
fn injected_violation_fails_the_gate() {
    let root = workspace_root();
    let mut ws = Workspace::load(&root).expect("workspace loads");

    // Inject a determinism violation into a pinned crate, exactly as a
    // bad PR would.
    ws.files.push(SourceFile::from_text(
        "crates/world/src/injected.rs",
        "use std::collections::HashMap;\n\
         pub fn drift() -> HashMap<u32, u32> { HashMap::new() }\n\
         pub fn when() -> std::time::Instant { std::time::Instant::now() }\n"
            .to_string(),
    ));

    let scan = scan_workspace(&ws);
    let baseline =
        Baseline::load(&root.join(BASELINE_PATH)).expect("baseline loads");
    let outcome = baseline.apply(scan.findings);
    let injected: Vec<_> = outcome
        .new
        .iter()
        .filter(|f| f.file == "crates/world/src/injected.rs")
        .collect();
    assert!(
        injected.iter().any(|f| f.rule == "no-unordered-iteration"),
        "injected HashMap must surface as a new finding"
    );
    assert!(
        injected.iter().any(|f| f.rule == "no-wall-clock"),
        "injected Instant must surface as a new finding"
    );
}

#[test]
fn scan_is_deterministic() {
    let root = workspace_root();
    let a = conformance::scan(&root).expect("scans");
    let b = conformance::scan(&root).expect("scans");
    assert_eq!(a.findings, b.findings);
    assert_eq!(a.allowed, b.allowed);
    assert_eq!(a.files_scanned, b.files_scanned);
}

#[test]
fn fixture_trees_are_not_part_of_the_workspace_scan() {
    let root = workspace_root();
    let files = conformance::source::collect_files(&root).expect("collects");
    assert!(files.iter().all(|f| !f.contains("/fixtures/")));
    assert!(files.iter().all(|f| !f.starts_with("vendor")));
    assert!(files.contains(&"crates/bgp-sim/src/routing.rs".to_string()));
    assert!(Path::new(&root).join(BASELINE_PATH).is_file());
}
