//! The workspace scans itself clean — and the gate actually fires when
//! a violation is injected, for every rule class.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use conformance::{scan_workspace, Baseline, SourceFile, Workspace, BASELINE_PATH};

fn workspace_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_has_zero_non_baselined_findings() {
    let root = workspace_root();
    let scan = conformance::scan(&root).expect("workspace scans");
    assert!(scan.files_scanned > 80, "scanned {} files", scan.files_scanned);
    assert!(conformance::all_rules().len() >= 10);

    let baseline = Baseline::load(&root.join(BASELINE_PATH)).expect("baseline loads");
    let outcome = baseline.apply(scan.findings);
    assert_eq!(
        outcome.new,
        Vec::new(),
        "the workspace must scan clean against the committed baseline"
    );
    assert_eq!(outcome.stale.len(), 0, "stale baseline entries must be removed");

    // The committed baseline grandfathers no determinism findings in
    // the crates whose byte-identical outputs the ROADMAP pins.
    for entry in &baseline.entries {
        let determinism = matches!(
            entry.rule.as_str(),
            "no-unordered-iteration"
                | "no-wall-clock"
                | "no-unseeded-rng"
                | "float-total-order"
                | "no-shared-mutation"
        );
        let pinned_crate = ["crates/core", "crates/workflow", "crates/scenario-forge"]
            .iter()
            .any(|p| entry.file.starts_with(p));
        assert!(
            !(determinism && pinned_crate),
            "determinism finding grandfathered in a pinned crate: {entry:?}"
        );
    }
}

#[test]
fn workspace_graph_covers_the_deterministic_closure() {
    let root = workspace_root();
    let ws = Workspace::load(&root).expect("workspace loads");
    let graph = ws.graph.as_ref().expect("real workspace has a crate graph");

    // Every DETERMINISTIC_CRATES member exists, carries the manifest
    // marker, and the marked set matches the const exactly.
    let marked: Vec<&str> = graph
        .packages
        .iter()
        .filter(|p| p.deterministic)
        .map(|p| p.key.as_str())
        .collect();
    let mut expected: Vec<&str> =
        conformance::rules::determinism::DETERMINISTIC_CRATES.to_vec();
    expected.sort_unstable();
    assert_eq!(marked, expected, "manifest markers must mirror the const list");

    // The graph resolved real dependency edges (spot-check a few).
    let world = graph.package("world").expect("world in graph");
    assert!(world.deps.iter().any(|d| d.key.as_deref() == Some("net-model")));
    let bench = graph.package("bench").expect("bench in graph");
    assert!(
        bench.deps.iter().any(|d| d.key.as_deref() == Some("arachnet-repro")),
        "bench's `path = \"../..\"` dep resolves to the root package"
    );
    assert!(graph.errors.is_empty(), "manifests parse clean: {:?}", graph.errors);
}

#[test]
fn injected_violation_fails_the_gate() {
    let root = workspace_root();
    let mut ws = Workspace::load(&root).expect("workspace loads");

    // Inject a determinism violation into a pinned crate, exactly as a
    // bad PR would.
    ws.files.push(Arc::new(SourceFile::from_text(
        "crates/world/src/injected.rs",
        "use std::collections::HashMap;\n\
         pub fn drift() -> HashMap<u32, u32> { HashMap::new() }\n\
         pub fn when() -> std::time::Instant { std::time::Instant::now() }\n"
            .to_string(),
    )));

    let scan = scan_workspace(&ws);
    let baseline =
        Baseline::load(&root.join(BASELINE_PATH)).expect("baseline loads");
    let outcome = baseline.apply(scan.findings);
    let injected: Vec<_> = outcome
        .new
        .iter()
        .filter(|f| f.file == "crates/world/src/injected.rs")
        .collect();
    assert!(
        injected.iter().any(|f| f.rule == "no-unordered-iteration"),
        "injected HashMap must surface as a new finding"
    );
    assert!(
        injected.iter().any(|f| f.rule == "no-wall-clock"),
        "injected Instant must surface as a new finding"
    );
}

#[test]
fn injected_float_and_sharing_violations_fail_the_gate() {
    let root = workspace_root();
    let mut ws = Workspace::load(&root).expect("workspace loads");

    ws.files.push(Arc::new(SourceFile::from_text(
        "crates/world/src/injected_v2.rs",
        "pub fn rank(xs: &mut Vec<f64>) {\n\
             xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
         }\n\
         pub fn bucket(intensity: f64) -> usize { (intensity * 8.0) as usize }\n\
         pub static mut COUNTER: u64 = 0;\n\
         use std::sync::atomic::{AtomicU64, Ordering};\n\
         pub fn peek(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n\
         // conformance: allow(no-wall-clock, reason = \"nothing here reads a clock\")\n\
         pub fn idle() {}\n"
            .to_string(),
    )));

    let scan = scan_workspace(&ws);
    let rules_hit: Vec<&str> = scan
        .findings
        .iter()
        .filter(|f| f.file == "crates/world/src/injected_v2.rs")
        .map(|f| f.rule)
        .collect();
    assert!(
        rules_hit.iter().filter(|r| **r == "float-total-order").count() >= 2,
        "partial_cmp and the bare float cast must both surface: {rules_hit:?}"
    );
    assert!(
        rules_hit.iter().filter(|r| **r == "no-shared-mutation").count() >= 2,
        "static mut and Ordering::Relaxed must both surface: {rules_hit:?}"
    );
    assert!(
        rules_hit.contains(&"unused-pragma"),
        "a pragma suppressing nothing must surface: {rules_hit:?}"
    );
}

#[test]
fn injected_closure_violation_fails_the_gate() {
    let root = workspace_root();
    let mut ws = Workspace::load(&root).expect("workspace loads");

    // Grow a nondeterministic dependency onto a deterministic crate —
    // the exact rot the closure rule exists to catch.
    {
        let graph = ws.graph.as_mut().expect("real workspace has a crate graph");
        let world = graph
            .packages
            .iter_mut()
            .find(|p| p.key == "world")
            .expect("world in graph");
        world.deps.push(conformance::deps::Dep {
            name: "llm".to_string(),
            key: Some("llm".to_string()),
            spec: conformance::deps::DepSpec::Workspace,
            line: 99,
        });
    }

    let scan = scan_workspace(&ws);
    let closure: Vec<_> = scan
        .findings
        .iter()
        .filter(|f| f.rule == "deterministic-closure")
        .collect();
    assert_eq!(closure.len(), 1, "exactly the injected edge: {closure:?}");
    assert_eq!(closure[0].file, "crates/world/Cargo.toml");
    assert!(closure[0].message.contains("`llm`"), "{}", closure[0].message);
}

#[test]
fn scan_is_deterministic() {
    let root = workspace_root();
    let a = conformance::scan(&root).expect("scans");
    let b = conformance::scan(&root).expect("scans");
    assert_eq!(a.findings, b.findings);
    assert_eq!(a.allowed, b.allowed);
    assert_eq!(a.files_scanned, b.files_scanned);
    assert_eq!(a.graph, b.graph);
}

#[test]
fn fixture_trees_are_not_part_of_the_workspace_scan() {
    let root = workspace_root();
    let files = conformance::source::collect_files(&root).expect("collects");
    assert!(files.iter().all(|f| !f.contains("/fixtures/")));
    assert!(files.iter().all(|f| !f.starts_with("vendor")));
    assert!(files.contains(&"crates/bgp-sim/src/routing.rs".to_string()));
    assert!(Path::new(&root).join(BASELINE_PATH).is_file());
}
