//! The lexer's one hard contract: token spans tile the input exactly,
//! so concatenating every token's text reproduces the source byte for
//! byte. Pinned twice — over generated token soup, and over every real
//! source file in the workspace.

use std::path::PathBuf;

use conformance::lexer::{lex, TokenKind};
use conformance::source;
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::Union;

fn assert_roundtrip(src: &str) -> Result<(), String> {
    let tokens = lex(src);
    let mut cursor = 0usize;
    for t in &tokens {
        prop_assert!(
            t.start == cursor,
            "gap or overlap at byte {} (token starts at {}) in {:?}",
            cursor,
            t.start,
            src
        );
        prop_assert!(t.end > t.start, "empty token at {} in {:?}", t.start, src);
        cursor = t.end;
    }
    prop_assert!(
        cursor == src.len(),
        "lexer stopped at byte {} of {} in {:?}",
        cursor,
        src.len(),
        src
    );
    let rebuilt: String = tokens.iter().map(|t| &src[t.start..t.end]).collect();
    prop_assert_eq!(rebuilt, src.to_string());

    // Line numbers never decrease and start at 1.
    let mut line = 1;
    for t in &tokens {
        prop_assert!(t.line >= line, "line went backwards in {src:?}");
        line = t.line;
    }
    Ok(())
}

/// Fragments deliberately include pathological prefixes: unterminated
/// strings, lone quotes, raw-string openers, escapes at EOF.
fn fragment() -> Union<String> {
    let lit = |s: &'static str| Just(s.to_string()).boxed();
    Union::new(vec![
        lit("HashMap"),
        lit("r#type"),
        lit("fn main() {}"),
        lit("// line comment"),
        lit("/* block /* nested */ */"),
        lit("/* unterminated"),
        lit("\"string with HashMap\""),
        lit("\"unterminated"),
        lit("\"escape at eof \\"),
        lit("r#\"raw \"inner\" body\"#"),
        lit("r#\"unterminated raw"),
        lit("b\"bytes\""),
        lit("b'x'"),
        lit("'a'"),
        lit("'\\n'"),
        lit("'static"),
        lit("'"),
        lit("1..2"),
        lit("1.5e-3f64"),
        lit("0x1F_u32"),
        lit("\n"),
        lit("\t "),
        lit("::<>!&|"),
        lit("λ→∀"),
        (0u32..1000).prop_map(|n| format!("ident_{n}")).boxed(),
        (0u64..u64::MAX).prop_map(|n| n.to_string()).boxed(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn generated_token_soup_roundtrips(parts in vec(fragment(), 0..24)) {
        let src = parts.concat();
        assert_roundtrip(&src)?;
    }

    #[test]
    fn soup_with_separators_roundtrips(parts in vec(fragment(), 0..24)) {
        let src = parts.join(" ");
        assert_roundtrip(&src)?;
        // With spaces between fragments, literal fragments cannot run
        // into each other, so known-code fragments keep their kinds —
        // unless an earlier fragment legitimately swallows what follows:
        // an unterminated literal eats to EOF, and a line comment eats
        // to the next newline fragment (the joiner is a space).
        let mut in_line_comment = false;
        let mut visible_hashmap = false;
        for p in &parts {
            if p.contains("unterminated") || p == "'" || p.ends_with('\\') {
                break; // eats the rest of the input
            }
            if p.contains('\n') {
                in_line_comment = false;
            } else if p.starts_with("//") {
                in_line_comment = true;
            }
            if !in_line_comment && p == "HashMap" {
                visible_hashmap = true;
            }
        }
        if visible_hashmap {
            let found = lex(&src)
                .iter()
                .any(|t| t.kind == TokenKind::Ident && &src[t.start..t.end] == "HashMap");
            prop_assert!(found, "HashMap fragment lost its Ident kind in {src:?}");
        }
    }
}

#[test]
fn every_workspace_source_roundtrips() {
    let root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let files = source::collect_files(&root).expect("collects workspace sources");
    assert!(files.len() > 80, "expected a real workspace, got {} files", files.len());
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel)).expect("readable");
        assert_roundtrip(&text).unwrap_or_else(|msg| panic!("{rel}: {msg}"));
    }
}
