//! The parallel incremental scanner is an optimization, not a semantic
//! change: its output is pinned byte-identical to the serial scan at
//! 1, 2 and 8 workers, cold or warm cache.

use std::path::{Path, PathBuf};

use conformance::scan::{scan_parallel, FileCache};
use conformance::{report, Baseline, Scan, BASELINE_PATH};

fn workspace_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// The full observable surface of one scan, rendered: the JSON report
/// and the text report, against the committed baseline.
fn rendered(root: &Path, scan: &Scan) -> (String, String) {
    let baseline = Baseline::load(&root.join(BASELINE_PATH)).expect("baseline loads");
    let outcome = baseline.apply(scan.findings.clone());
    let json = report::to_json(scan, &outcome).to_string();
    let text = report::render_text(scan, &outcome);
    (json, text)
}

#[test]
fn parallel_scan_is_byte_identical_to_serial_at_every_width() {
    let root = workspace_root();
    let serial = conformance::scan(&root).expect("serial scan");
    let serial_rendered = rendered(&root, &serial);

    for workers in [1, 2, 8] {
        let par = scan_parallel(&root, workers, None).expect("parallel scan");
        assert_eq!(par.findings, serial.findings, "findings differ at {workers} workers");
        assert_eq!(par.allowed, serial.allowed, "allowed differ at {workers} workers");
        assert_eq!(
            par.files_scanned, serial.files_scanned,
            "file count differs at {workers} workers"
        );
        assert_eq!(par.graph, serial.graph, "crate graph differs at {workers} workers");
        assert_eq!(
            rendered(&root, &par),
            serial_rendered,
            "rendered reports differ at {workers} workers"
        );
    }
}

#[test]
fn warm_cache_rescan_is_identical_and_hits() {
    let root = workspace_root();
    let cache = FileCache::new();
    assert!(cache.is_empty());

    let cold = scan_parallel(&root, 4, Some(&cache)).expect("cold scan");
    assert_eq!(cache.len(), cold.files_scanned, "one cache entry per file");

    let warm = scan_parallel(&root, 4, Some(&cache)).expect("warm scan");
    assert_eq!(warm.findings, cold.findings);
    assert_eq!(warm.allowed, cold.allowed);
    assert_eq!(warm.files_scanned, cold.files_scanned);
    assert_eq!(warm.graph, cold.graph);
    assert_eq!(
        cache.len(),
        cold.files_scanned,
        "unchanged files reuse their entries instead of growing the cache"
    );
    assert_eq!(rendered(&root, &warm), rendered(&root, &cold));
}

#[test]
fn default_worker_count_matches_serial_too() {
    let root = workspace_root();
    let serial = conformance::scan(&root).expect("serial scan");
    // 0 = one worker per available core, whatever this machine has.
    let par = scan_parallel(&root, 0, None).expect("parallel scan");
    assert_eq!(par.findings, serial.findings);
    assert_eq!(par.allowed, serial.allowed);
    assert_eq!(par.files_scanned, serial.files_scanned);
}
