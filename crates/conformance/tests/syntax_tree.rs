//! The item tree's structural contract, pinned like the lexer's: sibling
//! spans never overlap and ascend, children nest strictly inside their
//! parents, and on brace-balanced input (every real source file) the
//! top-level spans cover every significant token — proved over generated
//! item soup and over every workspace source.

use std::path::PathBuf;

use conformance::lexer::{lex, TokenKind};
use conformance::source;
use conformance::syntax::{Item, ItemKind, ItemTree};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::Union;

fn sig_indices(src: &str) -> Vec<usize> {
    let tokens = lex(src);
    (0..tokens.len())
        .filter(|&i| {
            !matches!(
                tokens[i].kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect()
}

/// Checks one sibling list: spans non-empty, ascending, non-overlapping,
/// inside `[lo, hi)`, recursively for children.
fn check_siblings(items: &[Item], lo: usize, hi: usize, src: &str) -> Result<(), String> {
    let mut cursor = lo;
    for item in items {
        prop_assert!(
            item.start >= cursor,
            "sibling spans overlap at byte {} (prev ended {}) in {:?}",
            item.start,
            cursor,
            src
        );
        prop_assert!(
            item.end > item.start,
            "empty item span at byte {} in {:?}",
            item.start,
            src
        );
        prop_assert!(
            item.end <= hi,
            "item span [{}, {}) escapes its parent (ends {}) in {:?}",
            item.start,
            item.end,
            hi,
            src
        );
        check_siblings(&item.children, item.start, item.end, src)?;
        cursor = item.end;
    }
    Ok(())
}

/// Parses `src` and checks every tree invariant. Returns whether the
/// significant token stream was brace-balanced (the precondition for the
/// full-coverage invariant, which is asserted whenever it holds).
fn check_tree(src: &str) -> Result<bool, String> {
    let tokens = lex(src);
    let sig = sig_indices(src);
    let tree = ItemTree::parse(src, &tokens, &sig);
    check_siblings(&tree.items, 0, src.len(), src)?;

    // A stray top-level `}` legitimately truncates the item list (the
    // parser treats it as closing an enclosing body), so coverage is
    // only promised on balanced input.
    let mut depth = 0i64;
    let mut balanced = true;
    for &i in &sig {
        match &src[tokens[i].start..tokens[i].end] {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    balanced = false;
                    break;
                }
            }
            _ => {}
        }
    }
    if balanced {
        for &i in &sig {
            let s = tokens[i].start;
            prop_assert!(
                tree.items.iter().any(|it| s >= it.start && s < it.end),
                "significant token at byte {} ({:?}) not covered by any item in {:?}",
                s,
                &src[tokens[i].start..tokens[i].end],
                src
            );
        }
    }
    Ok(balanced)
}

/// Item-shaped fragments plus deliberate junk (stray punctuation, inner
/// attributes, literals) the resilient parser must keep as `Other`
/// leaves without breaking the tiling.
fn item_fragment() -> Union<String> {
    let lit = |s: &'static str| Just(s.to_string()).boxed();
    Union::new(vec![
        lit("pub fn f(x: u64) -> u64 { x + 1 }"),
        lit("#[cfg(test)]\nmod tests { fn t() { helper(); } }"),
        lit("#[cfg(not(test))]\nfn live() {}"),
        lit("#[test]\nfn check() { assert!(true); }"),
        lit("#[cfg(all(test, feature = \"x\"))]\nfn gated() {}"),
        lit("use std::collections::BTreeMap;"),
        lit("pub(crate) struct S { x: u64 }"),
        lit("enum E { A, B(u32) }"),
        lit("impl S { fn m(&self) {} }"),
        lit("unsafe impl Send for S {}"),
        lit("trait T { fn r(&self); }"),
        lit("static mut G: u64 = 0;"),
        lit("const C: usize = 3;"),
        lit("pub const fn k() -> u8 { 0 }"),
        lit("type Alias = Vec<u8>;"),
        lit("macro_rules! m { () => {} }"),
        lit("proptest! { fn p() {} }"),
        lit("thread_local! { static X: u8 = 0; }"),
        lit("vec![1, 2, 3];"),
        lit("extern \"C\" { fn ffi(); }"),
        lit("extern crate alloc;"),
        lit("mod empty;"),
        lit("mod nested { mod deeper { fn leaf() {} } }"),
        lit("// a comment\n"),
        lit("/* block */"),
        lit(";"),
        lit("=>"),
        lit("#![allow(dead_code)]"),
        lit("\"a string with } inside\""),
        lit("\"unterminated"),
        lit("'a'"),
        lit("1.5e-3f64"),
        (0u32..100).prop_map(|n| format!("fn gen_{n}() {{ let v = {n}; }}")).boxed(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn generated_item_soup_parses_well_formed(parts in vec(item_fragment(), 0..16)) {
        let src = parts.join("\n");
        check_tree(&src)?;
    }
}

#[test]
fn every_workspace_source_has_a_covering_tree() {
    let root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let files = source::collect_files(&root).expect("collects workspace sources");
    assert!(files.len() > 80, "expected a real workspace, got {} files", files.len());
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel)).expect("readable");
        let balanced =
            check_tree(&text).unwrap_or_else(|msg| panic!("{rel}: {msg}"));
        assert!(balanced, "{rel}: real sources must be brace-balanced");
    }
}

#[test]
fn cfg_predicates_attribute_test_code_precisely() {
    let src = "#[cfg(not(test))]\npub fn live() { h(); }\n\
               #[cfg(test)]\nmod tests {\n    fn t() { x(); }\n}\n\
               #[cfg(all(test, feature = \"slow\"))]\nfn slow_check() {}\n";
    let tokens = lex(src);
    let sig = sig_indices(src);
    let tree = ItemTree::parse(src, &tokens, &sig);

    let spans = tree.test_spans();
    let covered = |needle: &str| {
        let at = src.find(needle).expect("needle present");
        spans.iter().any(|&(s, e)| at >= s && at < e)
    };
    assert!(!covered("fn live"), "cfg(not(test)) is live code");
    assert!(covered("fn t"), "cfg(test) module contents are test code");
    assert!(covered("fn slow_check"), "cfg(all(test, ...)) is test code");

    let m = tree.find(ItemKind::Mod, "tests").expect("mod tests found");
    assert!(m.test_attr);
}
