//! The item-tree syntax layer: a brace-matched view of one source file.
//!
//! The lexer guarantees token spans tile the file; this layer adds the
//! next structural level — *items*. Modules, functions, impl/trait
//! blocks, `use` declarations and the rest are parsed into a tree whose
//! spans nest properly and tile the file (siblings never overlap, every
//! child sits inside its parent's body). Rules ride the tree instead of
//! re-deriving structure from token offsets: test attribution
//! ([`SourceFile::is_test_code`](crate::source::SourceFile::is_test_code))
//! walks item attributes, and cross-file rules look items up by kind and
//! name.
//!
//! The parser is *resilient*, not validating: a token sequence that does
//! not start a recognized item becomes a one-token [`ItemKind::Other`]
//! leaf, so the tree invariants hold on any input the lexer accepts.
//! Its contract is pinned the same way the lexer's is — a proptest over
//! generated item soup plus an exhaustive pass over every workspace
//! source (`tests/syntax_tree.rs`).
//!
//! Test attribution is predicate-aware where the old span heuristic was
//! not: `#[cfg(test)]`, `#[test]` and `#[cfg(all(test, ...))]` mark an
//! item (and everything nested in it) as test code, while
//! `#[cfg(not(test))]` — *live* code, compiled out of test builds — does
//! not.

use crate::lexer::{Token, TokenKind};

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { ... }` or `mod name;`
    Mod,
    /// `fn name(...) { ... }` (body is a leaf: statements are not items)
    Fn,
    /// `impl ... { ... }` — children are the associated items.
    Impl,
    /// `trait Name { ... }` — children are the associated items.
    Trait,
    /// `struct` / `enum` / `union` declarations.
    Type,
    /// `use ...;` / `extern crate ...;`
    Use,
    /// `static NAME: T = ...;` (including `static mut`).
    Static,
    /// `const NAME: T = ...;`
    Const,
    /// `type Name = ...;`
    TypeAlias,
    /// `macro_rules! name { ... }`
    MacroDef,
    /// A macro invoked in item position: `proptest! { ... }`.
    MacroInvocation,
    /// `extern "C" { ... }` — children are the foreign items.
    ExternBlock,
    /// A token the parser could not attach to an item (kept as a
    /// one-token leaf so spans still tile the file).
    Other,
}

/// One node of the item tree.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// The declared name (`""` for impl blocks, extern blocks, `Other`).
    pub name: String,
    /// Byte span, *including* any outer attributes.
    pub start: usize,
    pub end: usize,
    /// 1-based line of the first token (attribute or keyword).
    pub line: u32,
    /// Whether an outer attribute gates this item on test compilation:
    /// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]` — but not
    /// `#[cfg(not(test))]`.
    pub test_attr: bool,
    /// Items nested in this item's body (mod / impl / trait / extern).
    pub children: Vec<Item>,
}

/// The parsed item tree of one file.
#[derive(Debug, Clone, Default)]
pub struct ItemTree {
    pub items: Vec<Item>,
}

impl ItemTree {
    /// Parses `text` (already lexed into `tokens`; `sig` indexes the
    /// significant tokens) into an item tree.
    pub fn parse(text: &str, tokens: &[Token], sig: &[usize]) -> ItemTree {
        let mut p = Parser { text, tokens, sig };
        let (items, _) = p.parse_items(0, sig.len());
        ItemTree { items }
    }

    /// Byte spans of every item (with everything nested inside it) that
    /// is gated on test compilation.
    pub fn test_spans(&self) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        collect_test_spans(&self.items, &mut spans);
        spans
    }

    /// Depth-first search for the first item of `kind` named `name`
    /// (searching children too).
    pub fn find(&self, kind: ItemKind, name: &str) -> Option<&Item> {
        find_in(&self.items, kind, name)
    }

    /// Every item in the tree, depth first.
    pub fn walk(&self) -> Vec<&Item> {
        let mut out = Vec::new();
        walk_into(&self.items, &mut out);
        out
    }
}

fn collect_test_spans(items: &[Item], out: &mut Vec<(usize, usize)>) {
    for item in items {
        if item.test_attr {
            // The span covers every nested item too; no need to descend.
            out.push((item.start, item.end));
        } else {
            collect_test_spans(&item.children, out);
        }
    }
}

fn find_in<'a>(items: &'a [Item], kind: ItemKind, name: &str) -> Option<&'a Item> {
    for item in items {
        if item.kind == kind && item.name == name {
            return Some(item);
        }
        if let Some(found) = find_in(&item.children, kind, name) {
            return Some(found);
        }
    }
    None
}

fn walk_into<'a>(items: &'a [Item], out: &mut Vec<&'a Item>) {
    for item in items {
        out.push(item);
        walk_into(&item.children, out);
    }
}

/// Item keywords that modify the item that follows rather than starting
/// one themselves.
const MODIFIERS: [&str; 4] = ["pub", "unsafe", "async", "default"];

struct Parser<'a> {
    text: &'a str,
    tokens: &'a [Token],
    sig: &'a [usize],
}

impl<'a> Parser<'a> {
    fn txt(&self, i: usize) -> &str {
        let t = &self.tokens[self.sig[i]];
        &self.text[t.start..t.end]
    }

    fn kind(&self, i: usize) -> TokenKind {
        self.tokens[self.sig[i]].kind
    }

    fn start_of(&self, i: usize) -> usize {
        self.tokens[self.sig[i]].start
    }

    fn end_of(&self, i: usize) -> usize {
        self.tokens[self.sig[i]].end
    }

    fn line_of(&self, i: usize) -> u32 {
        self.tokens[self.sig[i]].line
    }

    /// Parses items in `[i, end)` of the significant-token stream,
    /// stopping early at a `}` that closes the enclosing body (which the
    /// caller consumes). Returns the items and the index it stopped at.
    fn parse_items(&mut self, mut i: usize, end: usize) -> (Vec<Item>, usize) {
        let mut items = Vec::new();
        while i < end {
            if self.txt(i) == "}" {
                break; // closes the enclosing body; caller owns it
            }
            let (item, next) = self.parse_item(i, end);
            debug_assert!(next > i, "item parser must advance");
            items.push(item);
            i = next;
        }
        (items, i)
    }

    /// Parses one item starting at significant index `i`.
    fn parse_item(&mut self, i: usize, end: usize) -> (Item, usize) {
        let start_byte = self.start_of(i);
        let line = self.line_of(i);
        let mut j = i;
        let mut test_attr = false;

        // Inner attributes (`#![...]`) and outer attributes (`#[...]`).
        // Inner attributes configure the enclosing scope; they are kept
        // as part of this item's leading span but never mark it as test.
        while j < end && self.txt(j) == "#" {
            let mut k = j + 1;
            if k < end && self.txt(k) == "!" {
                k += 1;
            }
            if k >= end || self.txt(k) != "[" {
                break; // a stray `#`: not an attribute
            }
            let close = self.matching(k, end);
            let inner = self.txt(j + 1) == "!";
            if !inner && attr_is_test(self, k + 1, close) {
                test_attr = true;
            }
            j = close.min(end.saturating_sub(1)) + 1;
            if close >= end {
                // Unterminated attribute: swallow to the end.
                return (
                    self.leaf(ItemKind::Other, "", start_byte, line, test_attr, end),
                    end,
                );
            }
        }
        if j >= end {
            return (self.leaf(ItemKind::Other, "", start_byte, line, test_attr, end), end);
        }

        // Modifiers: `pub` (with optional `(crate)`/`(super)`/`(in ...)`),
        // `unsafe`, `async`, `default`, `const fn`, `extern "C" fn`.
        loop {
            let t = self.txt(j);
            if MODIFIERS.contains(&t) {
                j += 1;
                if t == "pub" && j < end && self.txt(j) == "(" {
                    j = self.matching(j, end).min(end.saturating_sub(1)) + 1;
                }
            } else if t == "const" && j + 1 < end && self.txt(j + 1) == "fn" {
                j += 1; // `const fn`: const is a modifier here
            } else if t == "extern"
                && j + 1 < end
                && self.kind(j + 1) == TokenKind::StrLit
                && j + 2 < end
                && self.txt(j + 2) == "fn"
            {
                j += 2; // `extern "C" fn`
            } else {
                break;
            }
            if j >= end {
                return (
                    self.leaf(ItemKind::Other, "", start_byte, line, test_attr, end),
                    end,
                );
            }
        }

        let keyword = self.txt(j);
        match keyword {
            "mod" => {
                let name = self.name_after(j, end);
                let (children, stop) = self.braced_or_semi(j, end, true);
                (self.node(ItemKind::Mod, name, start_byte, line, test_attr, children, stop), stop)
            }
            "impl" => {
                let (children, stop) = self.braced_or_semi(j, end, true);
                (self.node(ItemKind::Impl, String::new(), start_byte, line, test_attr, children, stop), stop)
            }
            "trait" => {
                let name = self.name_after(j, end);
                let (children, stop) = self.braced_or_semi(j, end, true);
                (self.node(ItemKind::Trait, name, start_byte, line, test_attr, children, stop), stop)
            }
            "fn" => {
                let name = self.name_after(j, end);
                let (_, stop) = self.braced_or_semi(j, end, false);
                (self.node(ItemKind::Fn, name, start_byte, line, test_attr, Vec::new(), stop), stop)
            }
            "struct" | "enum" | "union" => {
                let name = self.name_after(j, end);
                let (_, stop) = self.braced_or_semi(j, end, false);
                (self.node(ItemKind::Type, name, start_byte, line, test_attr, Vec::new(), stop), stop)
            }
            "use" => {
                let stop = self.to_semi(j, end);
                (self.node(ItemKind::Use, String::new(), start_byte, line, test_attr, Vec::new(), stop), stop)
            }
            "extern" => {
                // `extern crate name;` or `extern "C" { ... }`.
                if j + 1 < end && self.txt(j + 1) == "crate" {
                    let stop = self.to_semi(j, end);
                    (self.node(ItemKind::Use, self.name_after(j + 1, end), start_byte, line, test_attr, Vec::new(), stop), stop)
                } else {
                    let (children, stop) = self.braced_or_semi(j, end, true);
                    (self.node(ItemKind::ExternBlock, String::new(), start_byte, line, test_attr, children, stop), stop)
                }
            }
            "static" => {
                let stop = self.to_semi(j, end);
                let name_at = if j + 1 < end && self.txt(j + 1) == "mut" { j + 1 } else { j };
                (self.node(ItemKind::Static, self.name_after(name_at, end), start_byte, line, test_attr, Vec::new(), stop), stop)
            }
            "const" => {
                let stop = self.to_semi(j, end);
                (self.node(ItemKind::Const, self.name_after(j, end), start_byte, line, test_attr, Vec::new(), stop), stop)
            }
            "type" => {
                let stop = self.to_semi(j, end);
                (self.node(ItemKind::TypeAlias, self.name_after(j, end), start_byte, line, test_attr, Vec::new(), stop), stop)
            }
            "macro_rules" => {
                // `macro_rules! name { ... }` (no trailing `;` for `{}`).
                let name = if j + 2 < end && self.txt(j + 1) == "!" {
                    self.txt(j + 2).to_string()
                } else {
                    String::new()
                };
                let (_, stop) = self.braced_or_semi(j, end, false);
                (self.node(ItemKind::MacroDef, name, start_byte, line, test_attr, Vec::new(), stop), stop)
            }
            _ if self.kind(j) == TokenKind::Ident
                && j + 1 < end
                && self.txt(j + 1) == "!" =>
            {
                // Macro invocation in item position: `name! { ... }`,
                // `path::name! ( ... );`. Skip the path tail first.
                let name = self.txt(j).to_string();
                let mut k = j + 2;
                // `name! ident` (e.g. `macro_rules`-style declarators) —
                // an optional single ident before the delimiter.
                if k < end && self.kind(k) == TokenKind::Ident {
                    k += 1;
                }
                let stop = if k < end && self.txt(k) == "{" {
                    self.matching(k, end).min(end.saturating_sub(1)) + 1
                } else if k < end && (self.txt(k) == "(" || self.txt(k) == "[") {
                    let close = self.matching(k, end);
                    let mut stop = close.min(end.saturating_sub(1)) + 1;
                    if stop < end && self.txt(stop) == ";" {
                        stop += 1;
                    }
                    stop
                } else {
                    k.min(end)
                };
                (self.node(ItemKind::MacroInvocation, name, start_byte, line, test_attr, Vec::new(), stop), stop)
            }
            _ => {
                // Not an item start: keep the single token as a leaf so
                // spans still tile the file.
                (self.leaf(ItemKind::Other, "", start_byte, line, test_attr, j + 1), j + 1)
            }
        }
    }

    /// The first identifier after position `j` (the declared name).
    fn name_after(&self, j: usize, end: usize) -> String {
        if j + 1 < end && self.kind(j + 1) == TokenKind::Ident {
            self.txt(j + 1).to_string()
        } else if j + 1 < end && self.txt(j + 1) == "_" {
            "_".to_string()
        } else {
            String::new()
        }
    }

    /// Scans from keyword position `j` to the item's end: the matching
    /// `}` of the first body brace at delimiter depth 0, or a `;` before
    /// any brace. With `recurse`, the body's contents are parsed as
    /// child items. Returns `(children, index after the item)`.
    fn braced_or_semi(&mut self, j: usize, end: usize, recurse: bool) -> (Vec<Item>, usize) {
        let mut depth = 0usize;
        let mut k = j;
        while k < end {
            match self.txt(k) {
                "{" if depth == 0 => {
                    if recurse {
                        let (children, stopped) = self.parse_items(k + 1, end);
                        // parse_items stops at the closing `}` (or end).
                        let after = if stopped < end { stopped + 1 } else { end };
                        return (children, after);
                    }
                    let close = self.matching(k, end);
                    return (Vec::new(), close.min(end.saturating_sub(1)) + 1);
                }
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => return (Vec::new(), k + 1),
                _ => {}
            }
            k += 1;
        }
        (Vec::new(), end)
    }

    /// Scans to the `;` ending a brace-less item (brace/paren/bracket
    /// groups along the way are skipped whole, so `use a::{b, c};` and
    /// initializer expressions with blocks stay inside the item).
    fn to_semi(&self, j: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut k = j;
        while k < end {
            match self.txt(k) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return k; // closes the enclosing body: stop before it
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => return k + 1,
                _ => {}
            }
            k += 1;
        }
        end
    }

    /// Index of the token matching the opening delimiter at `open`
    /// (any of `(`/`[`/`{`); `end` if unbalanced.
    fn matching(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        for k in open..end {
            match self.txt(k) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
        end
    }

    fn leaf(
        &self,
        kind: ItemKind,
        name: &str,
        start: usize,
        line: u32,
        test_attr: bool,
        stop: usize,
    ) -> Item {
        Item {
            kind,
            name: name.to_string(),
            start,
            end: self.end_at(stop, start),
            line,
            test_attr,
            children: Vec::new(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn node(
        &self,
        kind: ItemKind,
        name: String,
        start: usize,
        line: u32,
        test_attr: bool,
        children: Vec<Item>,
        stop: usize,
    ) -> Item {
        Item { kind, name, start, end: self.end_at(stop, start), line, test_attr, children }
    }

    /// Byte end of the item whose last significant token is `stop - 1`.
    fn end_at(&self, stop: usize, start: usize) -> usize {
        if stop == 0 {
            return start;
        }
        if stop > self.sig.len() {
            return self.text.len();
        }
        self.end_of(stop - 1).max(start)
    }
}

/// Whether the attribute body in `(open, close)` (significant indices
/// just inside `[` and `]`) gates on test compilation. `#[test]` and
/// path attributes whose last segment is `test` count; `#[cfg(...)]`
/// counts when the predicate mentions `test` outside any `not(...)`.
fn attr_is_test(p: &Parser<'_>, open: usize, close: usize) -> bool {
    if open >= close {
        return false;
    }
    // The attribute's leading path: idents separated by `::`.
    let mut path_end = open;
    let mut last_segment = String::new();
    while path_end < close {
        if p.kind(path_end) == TokenKind::Ident {
            last_segment = p.txt(path_end).to_string();
            path_end += 1;
            if path_end + 1 < close && p.txt(path_end) == ":" && p.txt(path_end + 1) == ":" {
                path_end += 2;
                continue;
            }
        }
        break;
    }
    if last_segment == "test" {
        return true; // #[test], #[tokio::test]
    }
    if last_segment != "cfg" {
        return false;
    }
    // Scan the cfg predicate for `test` outside `not(...)`.
    let mut not_depths: Vec<usize> = Vec::new();
    let mut depth = 0usize;
    let mut k = path_end;
    while k < close {
        match p.txt(k) {
            "(" => {
                depth += 1;
                // Did an ident `not` immediately precede this paren?
                if k > open && p.txt(k - 1) == "not" {
                    not_depths.push(depth);
                }
            }
            ")" => {
                if not_depths.last() == Some(&depth) {
                    not_depths.pop();
                }
                depth = depth.saturating_sub(1);
            }
            "test" if p.kind(k) == TokenKind::Ident && not_depths.is_empty() => {
                // `test` as a bare predicate, not the value of `feature = "..."`
                // (values are string literals, so an Ident here is a predicate).
                return true;
            }
            _ => {}
        }
        k += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> ItemTree {
        let tokens = lex(src);
        let sig: Vec<usize> = (0..tokens.len())
            .filter(|&i| {
                !matches!(
                    tokens[i].kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .collect();
        ItemTree::parse(src, &tokens, &sig)
    }

    #[test]
    fn parses_basic_items() {
        let src = "use std::fmt;\n\
                   pub fn live() -> u32 { if true { 1 } else { 2 } }\n\
                   pub struct S { pub x: u32 }\n\
                   impl S { fn m(&self) {} }\n\
                   mod inner { pub const K: u32 = 1; }\n";
        let t = tree(src);
        let kinds: Vec<ItemKind> = t.items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            vec![ItemKind::Use, ItemKind::Fn, ItemKind::Type, ItemKind::Impl, ItemKind::Mod]
        );
        assert_eq!(t.items[1].name, "live");
        assert_eq!(t.items[3].children.len(), 1);
        assert_eq!(t.items[3].children[0].name, "m");
        assert_eq!(t.items[4].children[0].kind, ItemKind::Const);
        assert_eq!(t.items[4].children[0].name, "K");
    }

    #[test]
    fn cfg_test_marks_but_cfg_not_test_does_not() {
        let src = "#[cfg(test)]\nmod tests { fn t() {} }\n\
                   #[cfg(not(test))]\nfn live_only() {}\n\
                   #[cfg(all(test, feature = \"x\"))]\nfn gated() {}\n";
        let t = tree(src);
        assert!(t.items[0].test_attr, "cfg(test) mod");
        assert!(!t.items[1].test_attr, "cfg(not(test)) is live code");
        assert!(t.items[2].test_attr, "cfg(all(test, ...))");
    }

    #[test]
    fn nested_mod_spans_cover_children() {
        let src = "#[cfg(test)]\nmod tests {\n  mod deep { fn a() { x.unwrap(); } }\n  #[test]\n  fn t() {}\n}\nfn live() {}\n";
        let t = tree(src);
        let spans = t.test_spans();
        assert_eq!(spans.len(), 1, "outer mod covers everything nested");
        let unwrap_at = src.find("x.unwrap").unwrap();
        let live_at = src.find("fn live").unwrap();
        assert!(spans[0].0 <= unwrap_at && unwrap_at < spans[0].1);
        assert!(!(spans[0].0 <= live_at && live_at < spans[0].1));
    }

    #[test]
    fn macro_invocations_and_defs_are_items() {
        let src = "thread_local! { static X: u32 = 0; }\n\
                   macro_rules! m { () => {}; }\n\
                   proptest! { #[test] fn p() {} }\n";
        let t = tree(src);
        assert_eq!(t.items[0].kind, ItemKind::MacroInvocation);
        assert_eq!(t.items[0].name, "thread_local");
        assert_eq!(t.items[1].kind, ItemKind::MacroDef);
        assert_eq!(t.items[1].name, "m");
        assert_eq!(t.items[2].kind, ItemKind::MacroInvocation);
    }

    #[test]
    fn finds_named_modules() {
        let src = "pub mod reference { pub fn compute() {} }\n";
        let t = tree(src);
        let m = t.find(ItemKind::Mod, "reference").expect("found");
        assert_eq!(m.children.len(), 1);
        assert!(t.find(ItemKind::Mod, "dense").is_none());
    }

    #[test]
    fn static_and_braceless_items_end_at_semicolon() {
        let src = "static mut COUNTER: u64 = 0;\ntype Alias = Vec<u32>;\nfn after() {}\n";
        let t = tree(src);
        assert_eq!(t.items[0].kind, ItemKind::Static);
        assert_eq!(t.items[0].name, "COUNTER");
        assert_eq!(t.items[1].kind, ItemKind::TypeAlias);
        assert_eq!(t.items[2].name, "after");
    }
}
