//! The committed baseline of grandfathered findings.
//!
//! A baseline entry matches findings by `(rule, file, snippet)` — the
//! trimmed source line, not the line number — so unrelated edits don't
//! invalidate it, but *any* change to the offending line re-surfaces
//! the finding. Entries are shrink-only: when fewer findings match than
//! an entry's count, the entry has **expired** and the scan demands it
//! be removed (`--update-baseline` rewrites the file). Grandfathering
//! new findings requires a deliberate baseline edit in the same PR.

use std::collections::BTreeMap;
use std::path::Path;

use serde_json::{json, Value};

use crate::rules::Finding;

/// One grandfathered finding class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    pub snippet: String,
    /// How many identical findings this entry covers.
    pub count: usize,
}

/// The committed set of grandfathered findings.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    pub entries: Vec<BaselineEntry>,
}

/// The result of reconciling a scan against the baseline.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Findings not covered by any entry — these fail the gate.
    pub new: Vec<Finding>,
    /// Findings covered by an entry — reported, but passing.
    pub baselined: Vec<Finding>,
    /// Entries covering more findings than still exist — expired; the
    /// baseline must shrink.
    pub stale: Vec<BaselineEntry>,
}

impl Baseline {
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        Baseline::from_json(&text)
    }

    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let value: Value = serde_json::from_str(text)
            .map_err(|e| format!("baseline is not valid JSON: {e:?}"))?;
        let Some(entries) = value.get("entries").and_then(Value::as_array) else {
            return Err("baseline must be an object with an `entries` array".to_string());
        };
        let mut out = Vec::new();
        for e in entries {
            let field = |k: &str| -> Result<String, String> {
                e.get(k)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry is missing `{k}`: {e:?}"))
            };
            out.push(BaselineEntry {
                rule: field("rule")?,
                file: field("file")?,
                snippet: field("snippet")?,
                count: e.get("count").and_then(Value::as_u64).unwrap_or(1) as usize,
            });
        }
        Ok(Baseline { entries: out })
    }

    pub fn to_json(&self) -> String {
        let entries: Vec<Value> = self
            .entries
            .iter()
            .map(|e| {
                json!({
                    "rule": e.rule,
                    "file": e.file,
                    "snippet": e.snippet,
                    "count": e.count,
                })
            })
            .collect();
        let doc = json!({
            "comment": "Grandfathered conformance findings. Shrink-only: remove \
                        entries as findings are burned down; adding one requires \
                        justification in the PR.",
            "entries": entries,
        });
        let mut text = serde_json::to_string_pretty(&doc).expect("baseline serializes");
        text.push('\n');
        text
    }

    /// A baseline that grandfathers exactly the given findings.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for f in findings {
            *counts.entry(f.key()).or_default() += 1;
        }
        Baseline {
            entries: counts
                .into_iter()
                .map(|((rule, file, snippet), count)| BaselineEntry {
                    rule,
                    file,
                    snippet,
                    count,
                })
                .collect(),
        }
    }

    /// Reconciles findings against the baseline.
    pub fn apply(&self, findings: Vec<Finding>) -> BaselineOutcome {
        let mut remaining: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for e in &self.entries {
            *remaining
                .entry((e.rule.clone(), e.file.clone(), e.snippet.clone()))
                .or_default() += e.count;
        }
        let mut outcome = BaselineOutcome::default();
        for f in findings {
            match remaining.get_mut(&f.key()) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    outcome.baselined.push(f);
                }
                _ => outcome.new.push(f),
            }
        }
        for e in &self.entries {
            let key = (e.rule.clone(), e.file.clone(), e.snippet.clone());
            if let Some(n) = remaining.get_mut(&key) {
                if *n > 0 {
                    let mut stale = e.clone();
                    stale.count = *n;
                    outcome.stale.push(stale);
                    *n = 0; // attribute leftovers to one entry per key
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 3,
            message: "m".to_string(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn round_trips_json() {
        let b = Baseline::from_findings(&[
            finding("no-wall-clock", "src/a.rs", "Instant::now();"),
            finding("no-wall-clock", "src/a.rs", "Instant::now();"),
        ]);
        let parsed = Baseline::from_json(&b.to_json()).expect("parses");
        assert_eq!(parsed.entries, b.entries);
        assert_eq!(parsed.entries[0].count, 2);
    }

    #[test]
    fn covers_matches_and_flags_new() {
        let b = Baseline::from_findings(&[finding("r", "f", "s")]);
        let out = b.apply(vec![
            Finding { rule: "r", ..finding("r", "f", "s") },
            finding("r", "f", "other"),
        ]);
        assert_eq!(out.baselined.len(), 1);
        assert_eq!(out.new.len(), 1);
        assert!(out.stale.is_empty());
    }

    #[test]
    fn expired_entries_are_stale() {
        let b = Baseline::from_findings(&[
            finding("r", "f", "s"),
            finding("r", "f", "s"),
        ]);
        let out = b.apply(vec![finding("r", "f", "s")]);
        assert_eq!(out.baselined.len(), 1);
        assert!(out.new.is_empty());
        assert_eq!(out.stale.len(), 1);
        assert_eq!(out.stale[0].count, 1, "one covered finding no longer exists");
    }
}
