//! A hand-rolled Rust lexer, just deep enough for static analysis.
//!
//! The lexer's contract is *round-tripping*: concatenating the text of
//! every token reproduces the input byte for byte (pinned by a proptest
//! over all workspace sources). Token boundaries do not have to match
//! rustc exactly — what matters for the rules is that comments, string
//! literals and identifiers are classified correctly, so an occurrence
//! of `HashMap` inside a doc comment or a `"HashMap"` string never
//! counts as code.

/// The classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace (including newlines).
    Whitespace,
    /// A `// ...` comment, up to but not including the newline.
    LineComment,
    /// A `/* ... */` comment, nesting respected.
    BlockComment,
    /// An identifier or keyword (including raw `r#ident`s).
    Ident,
    /// A lifetime such as `'static` (no closing quote).
    Lifetime,
    /// A character or byte literal: `'x'`, `b'\n'`.
    CharLit,
    /// A string literal: `"..."`, `r#"..."#`, `b"..."`.
    StrLit,
    /// A numeric literal (loose: suffixes and exponents are consumed).
    NumLit,
    /// Any single punctuation character (or unknown byte).
    Punct,
}

/// One token: a classification plus its byte span and 1-based line.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

/// Lexes `src` into a token stream that round-trips exactly.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { src, pos: 0, line: 1 }.run()
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always advance");
            out.push(Token { kind, start, end: self.pos, line });
        }
        out
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        if c == '\n' {
            self.line += 1;
        }
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while matches!(self.peek(), Some(c) if pred(c)) {
            self.bump();
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let c = self.peek().expect("next_kind called at end of input");
        if c.is_whitespace() {
            self.eat_while(|c| c.is_whitespace());
            return TokenKind::Whitespace;
        }
        if c == '/' {
            match self.peek_at(1) {
                Some('/') => {
                    self.eat_while(|c| c != '\n');
                    return TokenKind::LineComment;
                }
                Some('*') => return self.block_comment(),
                _ => {}
            }
        }
        // String-ish prefixes: r"", r#""#, b"", b'', br"", br#""#.
        if c == 'r' || c == 'b' {
            if let Some(kind) = self.try_prefixed_literal() {
                return kind;
            }
        }
        if c == '"' {
            return self.string(0);
        }
        if c == '\'' {
            return self.char_or_lifetime();
        }
        if c.is_ascii_digit() {
            return self.number();
        }
        if c == '_' || c.is_alphabetic() {
            self.eat_while(|c| c == '_' || c.is_alphanumeric());
            return TokenKind::Ident;
        }
        self.bump();
        TokenKind::Punct
    }

    fn block_comment(&mut self) -> TokenKind {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: swallow to EOF
            }
        }
        TokenKind::BlockComment
    }

    /// Handles `r`/`b`-prefixed literals; returns `None` when the prefix
    /// is actually the start of a plain identifier (`raw`, `bytes`, or a
    /// raw ident `r#foo`).
    fn try_prefixed_literal(&mut self) -> Option<TokenKind> {
        let c = self.peek().expect("caller checked");
        match (c, self.peek_at(1)) {
            ('r', Some('"')) => {
                self.bump();
                Some(self.raw_string())
            }
            ('r', Some('#')) => {
                // `r#"` is a raw string; `r#ident` is a raw identifier.
                let mut n = 1;
                while self.peek_at(n) == Some('#') {
                    n += 1;
                }
                if self.peek_at(n) == Some('"') {
                    self.bump();
                    Some(self.raw_string())
                } else {
                    self.bump(); // r
                    self.bump(); // #
                    self.eat_while(|c| c == '_' || c.is_alphanumeric());
                    Some(TokenKind::Ident)
                }
            }
            ('b', Some('"')) => {
                self.bump();
                Some(self.string(0))
            }
            ('b', Some('\'')) => {
                self.bump();
                Some(self.char_literal())
            }
            ('b', Some('r')) if matches!(self.peek_at(2), Some('"') | Some('#')) => {
                self.bump();
                self.bump();
                Some(self.raw_string())
            }
            _ => None,
        }
    }

    /// Lexes `"..."` with escape handling; `self.pos` is at the quote.
    fn string(&mut self, _hashes: usize) -> TokenKind {
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump(); // the escaped char, whatever it is
                }
                Some('"') | None => break,
                Some(_) => {}
            }
        }
        TokenKind::StrLit
    }

    /// Lexes a raw string; `self.pos` is at the `#`s or the quote.
    fn raw_string(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                None => break, // unterminated
                Some(_) => {}
            }
        }
        TokenKind::StrLit
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime): a char literal
    /// closes after one (possibly escaped) character.
    fn char_or_lifetime(&mut self) -> TokenKind {
        match (self.peek_at(1), self.peek_at(2)) {
            (Some('\\'), _) => self.char_literal(),
            (Some(c1), Some('\'')) if c1 != '\'' => self.char_literal(),
            (Some(c1), _) if c1 == '_' || c1.is_alphabetic() => {
                self.bump(); // '
                self.eat_while(|c| c == '_' || c.is_alphanumeric());
                TokenKind::Lifetime
            }
            _ => self.char_literal(),
        }
    }

    /// Lexes `'x'`, `'\n'`, `'\u{1F600}'`; `self.pos` is at the quote.
    fn char_literal(&mut self) -> TokenKind {
        self.bump(); // opening quote
        match self.bump() {
            Some('\\') => {
                // Consume the escape head, then scan to the closing quote
                // (covers \u{...} of any length).
                self.bump();
                while !matches!(self.peek(), Some('\'') | None) {
                    self.bump();
                }
                self.bump();
            }
            Some('\'') | None => {} // empty / malformed: stop here
            Some(_) => {
                if self.peek() == Some('\'') {
                    self.bump();
                }
            }
        }
        TokenKind::CharLit
    }

    /// Lexes a numeric literal, loosely: digits, radix prefixes, type
    /// suffixes, `1.5`, `1e-5`. `1..2` stays two tokens (the `.` is only
    /// consumed when a digit follows).
    fn number(&mut self) -> TokenKind {
        let hex = self.peek() == Some('0')
            && matches!(self.peek_at(1), Some('x') | Some('X') | Some('b') | Some('o'));
        let mut last = '\0';
        loop {
            match self.peek() {
                Some(c) if c == '_' || c.is_ascii_alphanumeric() => {
                    last = c;
                    self.bump();
                }
                Some('.') if matches!(self.peek_at(1), Some(d) if d.is_ascii_digit()) => {
                    last = '.';
                    self.bump();
                }
                Some(c @ ('+' | '-')) if !hex && matches!(last, 'e' | 'E') => {
                    last = c;
                    self.bump();
                }
                _ => break,
            }
        }
        TokenKind::NumLit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Vec<Token> {
        let tokens = lex(src);
        let rebuilt: String = tokens.iter().map(|t| &src[t.start..t.end]).collect();
        assert_eq!(rebuilt, src, "lexer must round-trip");
        tokens
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        roundtrip(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn classifies_comments_and_strings() {
        assert_eq!(kinds("// HashMap\n"), vec![TokenKind::LineComment]);
        assert_eq!(kinds("/* a /* nested */ b */"), vec![TokenKind::BlockComment]);
        assert_eq!(kinds(r#""HashMap::new()""#), vec![TokenKind::StrLit]);
        assert_eq!(kinds(r##"r#"raw "quoted" body"#"##), vec![TokenKind::StrLit]);
        assert_eq!(kinds("b\"bytes\""), vec![TokenKind::StrLit]);
    }

    #[test]
    fn classifies_chars_and_lifetimes() {
        assert_eq!(kinds("'a'"), vec![TokenKind::CharLit]);
        assert_eq!(kinds(r"'\n'"), vec![TokenKind::CharLit]);
        assert_eq!(kinds(r"'\u{1F600}'"), vec![TokenKind::CharLit]);
        assert_eq!(kinds("'static"), vec![TokenKind::Lifetime]);
        assert_eq!(kinds("&'a str"), vec![
            TokenKind::Punct,
            TokenKind::Lifetime,
            TokenKind::Ident,
        ]);
        assert_eq!(kinds("b'x'"), vec![TokenKind::CharLit]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        assert_eq!(kinds("1..2"), vec![
            TokenKind::NumLit,
            TokenKind::Punct,
            TokenKind::Punct,
            TokenKind::NumLit,
        ]);
        assert_eq!(kinds("1.5e-3f64"), vec![TokenKind::NumLit]);
        assert_eq!(kinds("0x1F_u32"), vec![TokenKind::NumLit]);
    }

    #[test]
    fn raw_idents_are_idents() {
        assert_eq!(kinds("r#type"), vec![TokenKind::Ident]);
    }

    #[test]
    fn lines_are_tracked() {
        let tokens = roundtrip("a\nbb\n  c");
        let line_of = |text: &str| {
            tokens
                .iter()
                .find(|t| &"a\nbb\n  c"[t.start..t.end] == text)
                .map(|t| t.line)
        };
        assert_eq!(line_of("a"), Some(1));
        assert_eq!(line_of("bb"), Some(2));
        assert_eq!(line_of("c"), Some(3));
    }
}
