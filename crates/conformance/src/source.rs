//! Workspace file collection and the per-file source model rules run on.

use std::path::Path;

use crate::lexer::{lex, Token, TokenKind};
use crate::pragma::{parse_pragmas, Allow, PragmaError};
use crate::syntax::ItemTree;

/// Top-level directories scanned, relative to the workspace root.
const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Directory names skipped anywhere in the walk: vendored stand-ins and
/// build output are not our code, and `fixtures/` trees are deliberately
/// violating inputs for the conformance tests themselves.
const SKIP_DIRS: [&str; 3] = ["vendor", "target", "fixtures"];

/// One lexed workspace source file plus everything the rules need to
/// interpret it: the item tree, which spans are test code, and which
/// findings the author explicitly allowed.
pub struct SourceFile {
    /// Path relative to the scanned root, `/`-separated.
    pub rel_path: String,
    pub text: String,
    pub tokens: Vec<Token>,
    /// The brace-matched item tree (see [`crate::syntax`]). Test
    /// attribution and item lookups ride this instead of offset
    /// heuristics.
    pub tree: ItemTree,
    /// Byte spans of items gated on test compilation (`#[cfg(test)]`,
    /// `#[test]`), flattened from the item tree.
    pub test_spans: Vec<(usize, usize)>,
    /// Whether the whole file is test/measurement context (under a
    /// `tests/` or `benches/` directory).
    pub whole_file_test: bool,
    /// Whether the file lives under a `benches/` directory (exempt from
    /// the wall-clock and rng rules, like `crates/bench` via pragmas).
    pub in_benches_dir: bool,
    pub allows: Vec<Allow>,
    pub pragma_errors: Vec<PragmaError>,
    /// Indices of significant tokens (everything except whitespace and
    /// comments), computed once; rules pattern-match over this stream.
    sig_idx: Vec<usize>,
}

impl SourceFile {
    /// Loads and lexes one file. `rel_path` uses `/` separators.
    pub fn load(root: &Path, rel_path: &str) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(root.join(rel_path))?;
        Ok(SourceFile::from_text(rel_path, text))
    }

    pub fn from_text(rel_path: &str, text: String) -> SourceFile {
        let tokens = lex(&text);
        let sig_idx: Vec<usize> = (0..tokens.len())
            .filter(|&i| {
                !matches!(
                    tokens[i].kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .collect();
        let tree = ItemTree::parse(&text, &tokens, &sig_idx);
        let test_spans = tree.test_spans();
        let (allows, pragma_errors) = parse_pragmas(&text, &tokens);
        let components: Vec<&str> = rel_path.split('/').collect();
        let whole_file_test =
            components.contains(&"tests") || components.contains(&"benches");
        let in_benches_dir = components.contains(&"benches");
        SourceFile {
            rel_path: rel_path.to_string(),
            text,
            tokens,
            tree,
            test_spans,
            whole_file_test,
            in_benches_dir,
            allows,
            pragma_errors,
            sig_idx,
        }
    }

    /// The crate this file belongs to: `crates/<name>/...` → `<name>`,
    /// everything else (root `src/`, `tests/`, `examples/`) → the root
    /// package.
    pub fn crate_name(&self) -> &str {
        let mut parts = self.rel_path.split('/');
        match (parts.next(), parts.next()) {
            (Some("crates"), Some(name)) => name,
            _ => "arachnet-repro",
        }
    }

    pub fn token_text(&self, t: &Token) -> &str {
        &self.text[t.start..t.end]
    }

    /// Whether the byte offset falls in test context: whole-file test
    /// context, or inside an item the tree attributes to test
    /// compilation (`#[cfg(test)]` / `#[test]` — but not
    /// `#[cfg(not(test))]`, which is live code).
    pub fn is_test_code(&self, offset: usize) -> bool {
        self.whole_file_test
            || self.test_spans.iter().any(|&(s, e)| offset >= s && offset < e)
    }

    /// Whether a finding of `rule` at `line` was explicitly allowed by an
    /// inline pragma.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| a.rule == rule && a.target_line == line)
    }

    /// Indices of significant tokens: everything except whitespace and
    /// comments.
    pub fn sig(&self) -> &[usize] {
        &self.sig_idx
    }

    /// The trimmed text of a 1-based line (for diagnostics and baseline
    /// keys).
    pub fn line_text(&self, line: u32) -> &str {
        self.text
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
    }
}

/// Recursively collects the workspace's `.rs` files under the scan
/// roots, skipping vendored/generated/fixture trees. Paths are sorted
/// for deterministic output.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, Path::new(top), &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, rel: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let path = entry.path();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, &rel.join(name.as_ref()), out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_string(&rel.join(name.as_ref())));
        }
    }
    Ok(())
}

fn rel_string(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_cfg_test_module_span() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let f = SourceFile::from_text("crates/demo/src/lib.rs", src.to_string());
        let live = src.find("x.unwrap").unwrap();
        let test = src.find("y.unwrap").unwrap();
        assert!(!f.is_test_code(live));
        assert!(f.is_test_code(test));
    }

    #[test]
    fn detects_test_fn_and_braceless_items() {
        let src = "#[test]\nfn check() { a.unwrap(); }\n\
                   #[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
        let f = SourceFile::from_text("crates/demo/src/lib.rs", src.to_string());
        assert!(f.is_test_code(src.find("a.unwrap").unwrap()));
        assert!(f.is_test_code(src.find("HashMap").unwrap()));
        assert!(!f.is_test_code(src.find("fn live").unwrap()));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        // The pre-item-tree span heuristic treated any attribute
        // containing `cfg` + `test` as test-gated, so `#[cfg(not(test))]`
        // items escaped every rule. The tree reads the predicate.
        let src = "#[cfg(not(test))]\nfn live_only() { h(HashMap::new()); }\n";
        let f = SourceFile::from_text("crates/demo/src/lib.rs", src.to_string());
        assert!(!f.is_test_code(src.find("HashMap").unwrap()));
    }

    #[test]
    fn nested_items_inside_cfg_test_mod_are_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n  mod helpers {\n    pub fn mk() { x.unwrap(); }\n  }\n  struct Fixture { map: HashMap<u32, u32> }\n}\nfn live() {}\n";
        let f = SourceFile::from_text("crates/demo/src/lib.rs", src.to_string());
        assert!(f.is_test_code(src.find("x.unwrap").unwrap()));
        assert!(f.is_test_code(src.find("HashMap").unwrap()));
        assert!(!f.is_test_code(src.find("fn live").unwrap()));
    }

    #[test]
    fn tests_dir_is_whole_file_test_context() {
        let f = SourceFile::from_text("crates/demo/tests/it.rs", "fn x() {}".into());
        assert!(f.is_test_code(0));
        assert_eq!(f.crate_name(), "demo");
        let root = SourceFile::from_text("src/lib.rs", "fn x() {}".into());
        assert_eq!(root.crate_name(), "arachnet-repro");
    }
}
