//! Workspace file collection and the per-file source model rules run on.

use std::path::Path;

use crate::lexer::{lex, Token, TokenKind};
use crate::pragma::{parse_pragmas, Allow, PragmaError};

/// Top-level directories scanned, relative to the workspace root.
const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Directory names skipped anywhere in the walk: vendored stand-ins and
/// build output are not our code, and `fixtures/` trees are deliberately
/// violating inputs for the conformance tests themselves.
const SKIP_DIRS: [&str; 3] = ["vendor", "target", "fixtures"];

/// One lexed workspace source file plus everything the rules need to
/// interpret it: which spans are test code, and which findings the
/// author explicitly allowed.
pub struct SourceFile {
    /// Path relative to the scanned root, `/`-separated.
    pub rel_path: String,
    pub text: String,
    pub tokens: Vec<Token>,
    /// Byte spans of `#[cfg(test)]` / `#[test]` items.
    pub test_spans: Vec<(usize, usize)>,
    /// Whether the whole file is test/measurement context (under a
    /// `tests/` or `benches/` directory).
    pub whole_file_test: bool,
    /// Whether the file lives under a `benches/` directory (exempt from
    /// the wall-clock and rng rules, like `crates/bench` via pragmas).
    pub in_benches_dir: bool,
    pub allows: Vec<Allow>,
    pub pragma_errors: Vec<PragmaError>,
}

impl SourceFile {
    /// Loads and lexes one file. `rel_path` uses `/` separators.
    pub fn load(root: &Path, rel_path: &str) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(root.join(rel_path))?;
        Ok(SourceFile::from_text(rel_path, text))
    }

    pub fn from_text(rel_path: &str, text: String) -> SourceFile {
        let tokens = lex(&text);
        let test_spans = test_spans(&text, &tokens);
        let (allows, pragma_errors) = parse_pragmas(&text, &tokens);
        let components: Vec<&str> = rel_path.split('/').collect();
        let whole_file_test =
            components.contains(&"tests") || components.contains(&"benches");
        let in_benches_dir = components.contains(&"benches");
        SourceFile {
            rel_path: rel_path.to_string(),
            text,
            tokens,
            test_spans,
            whole_file_test,
            in_benches_dir,
            allows,
            pragma_errors,
        }
    }

    /// The crate this file belongs to: `crates/<name>/...` → `<name>`,
    /// everything else (root `src/`, `tests/`, `examples/`) → the root
    /// package.
    pub fn crate_name(&self) -> &str {
        let mut parts = self.rel_path.split('/');
        match (parts.next(), parts.next()) {
            (Some("crates"), Some(name)) => name,
            _ => "arachnet-repro",
        }
    }

    pub fn token_text(&self, t: &Token) -> &str {
        &self.text[t.start..t.end]
    }

    /// Whether the byte offset falls in test context (whole-file or a
    /// `#[cfg(test)]` span).
    pub fn is_test_code(&self, offset: usize) -> bool {
        self.whole_file_test
            || self.test_spans.iter().any(|&(s, e)| offset >= s && offset < e)
    }

    /// Whether a finding of `rule` at `line` was explicitly allowed by an
    /// inline pragma.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| a.rule == rule && a.target_line == line)
    }

    /// Indices of significant tokens: everything except whitespace and
    /// comments. Rules pattern-match over this stream.
    pub fn sig(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| {
                !matches!(
                    self.tokens[i].kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .collect()
    }

    /// The trimmed text of a 1-based line (for diagnostics and baseline
    /// keys).
    pub fn line_text(&self, line: u32) -> &str {
        self.text
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
    }
}

/// Finds byte spans of test-only items: an outer attribute sequence
/// containing `cfg(test)` or `test`, covering the item it annotates (to
/// its closing brace, or to `;` for brace-less items).
fn test_spans(text: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| {
            !matches!(
                tokens[i].kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let txt = |i: usize| &text[tokens[sig[i]].start..tokens[sig[i]].end];

    let mut spans = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        if txt(i) != "#" || i + 1 >= sig.len() || txt(i + 1) != "[" {
            i += 1;
            continue;
        }
        let attr_start = tokens[sig[i]].start;
        // Scan the bracketed attribute, remembering whether it gates on
        // test compilation.
        let mut j = i + 1;
        let mut depth = 0usize;
        let mut is_test_attr = false;
        let mut saw_cfg = false;
        while j < sig.len() {
            match txt(j) {
                "[" | "(" => depth += 1,
                "]" | ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "cfg" => saw_cfg = true,
                // `#[test]` or `#[cfg(test)]` (also matches inside
                // `#[cfg(all(test, ...))]`, which is what we want).
                "test" if saw_cfg || depth == 1 => is_test_attr = true,
                _ => {}
            }
            j += 1;
        }
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then cover the annotated item.
        let mut k = j + 1;
        while k + 1 < sig.len() && txt(k) == "#" && txt(k + 1) == "[" {
            let mut d = 0usize;
            k += 1;
            while k < sig.len() {
                match txt(k) {
                    "[" | "(" => d += 1,
                    "]" | ")" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        // Find the item body: the first `{` at nesting level 0 (then its
        // matching `}`), or a `;` before any brace.
        let mut d = 0usize;
        let mut end = None;
        while k < sig.len() {
            match txt(k) {
                "{" => d += 1,
                "}" => {
                    d = d.saturating_sub(1);
                    if d == 0 {
                        end = Some(tokens[sig[k]].end);
                        break;
                    }
                }
                ";" if d == 0 => {
                    end = Some(tokens[sig[k]].end);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let end = end.unwrap_or(text.len());
        spans.push((attr_start, end));
        // Continue after the span.
        while i < sig.len() && tokens[sig[i]].start < end {
            i += 1;
        }
    }
    spans
}

/// Recursively collects the workspace's `.rs` files under the scan
/// roots, skipping vendored/generated/fixture trees. Paths are sorted
/// for deterministic output.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, Path::new(top), &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, rel: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let path = entry.path();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, &rel.join(name.as_ref()), out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_string(&rel.join(name.as_ref())));
        }
    }
    Ok(())
}

fn rel_string(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_cfg_test_module_span() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let f = SourceFile::from_text("crates/demo/src/lib.rs", src.to_string());
        let live = src.find("x.unwrap").unwrap();
        let test = src.find("y.unwrap").unwrap();
        assert!(!f.is_test_code(live));
        assert!(f.is_test_code(test));
    }

    #[test]
    fn detects_test_fn_and_braceless_items() {
        let src = "#[test]\nfn check() { a.unwrap(); }\n\
                   #[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
        let f = SourceFile::from_text("crates/demo/src/lib.rs", src.to_string());
        assert!(f.is_test_code(src.find("a.unwrap").unwrap()));
        assert!(f.is_test_code(src.find("HashMap").unwrap()));
        assert!(!f.is_test_code(src.find("fn live").unwrap()));
    }

    #[test]
    fn tests_dir_is_whole_file_test_context() {
        let f = SourceFile::from_text("crates/demo/tests/it.rs", "fn x() {}".into());
        assert!(f.is_test_code(0));
        assert_eq!(f.crate_name(), "demo");
        let root = SourceFile::from_text("src/lib.rs", "fn x() {}".into());
        assert_eq!(root.crate_name(), "arachnet-repro");
    }
}
