//! The parallel incremental scanner.
//!
//! File scans (read + lex + item-tree parse + per-file rules) are
//! sharded across `std::thread::scope` workers in contiguous
//! path-order chunks, and the per-shard results are folded back **in
//! path order** — never in completion order — so the scan is
//! bit-identical to the serial one at any worker count (pinned by
//! `tests/scan_determinism.rs` at 1/2/8 workers). Workspace-level rules
//! (panic-budget, paired-engines, deterministic-closure) and pragma
//! hygiene then run serially over the folded result, exactly as in
//! [`crate::scan_workspace`].
//!
//! A [`FileCache`] memoizes the per-file work content-addressed, keyed
//! `(rel_path, fnv1a(content))` like the world layer's `WorldCache`
//! (`Mutex<BTreeMap>` of build-once slots): a rescan after touching one
//! file re-lexes only that file. The cache never changes *what* is
//! computed — hits and misses produce identical bytes — only how much
//! is recomputed.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

use crate::rules::{file_rules, Finding};
use crate::source::{collect_files, SourceFile};
use crate::{deps, finish_scan, Scan, Workspace};

/// Runs every per-file rule over one parsed file.
pub(crate) fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for rule in file_rules() {
        rule.check_file(file, &mut out);
    }
    out
}

/// One memoized per-file scan: the parsed file and its per-file rule
/// findings.
pub struct CachedFile {
    pub file: Arc<SourceFile>,
    pub findings: Vec<Finding>,
}

/// One build-once cache slot.
type FileSlot = Arc<OnceLock<Arc<CachedFile>>>;

/// Content-addressed per-file scan cache, keyed like `WorldCache`:
/// a `Mutex<BTreeMap>` of build-once [`OnceLock`] slots, so concurrent
/// workers hitting the same key parse once and share the `Arc`.
#[derive(Default)]
pub struct FileCache {
    slots: Mutex<BTreeMap<(String, u64), FileSlot>>,
}

impl FileCache {
    pub fn new() -> FileCache {
        FileCache::default()
    }

    /// Number of cached (path, content-hash) entries.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("file cache poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the memoized scan of `(rel_path, text)`, computing it on
    /// first sight of this content.
    pub fn get_or_scan(&self, rel_path: &str, text: String) -> Arc<CachedFile> {
        let key = (rel_path.to_string(), fnv1a(text.as_bytes()));
        let slot = {
            let mut slots = self.slots.lock().expect("file cache poisoned");
            Arc::clone(slots.entry(key).or_default())
        };
        Arc::clone(slot.get_or_init(|| {
            let file = Arc::new(SourceFile::from_text(rel_path, text));
            let findings = check_file(&file);
            Arc::new(CachedFile { file, findings })
        }))
    }
}

/// The process-global scan cache (what the bench and repeated
/// programmatic scans share).
pub fn global_cache() -> &'static FileCache {
    static CACHE: OnceLock<FileCache> = OnceLock::new();
    CACHE.get_or_init(FileCache::new)
}

/// FNV-1a, the workspace's stock content hash for cache keys.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Scans the workspace at `root` with `workers` threads (`0` = one per
/// available CPU), optionally through a [`FileCache`]. Bit-identical to
/// [`crate::scan`] at every worker count.
pub fn scan_parallel(
    root: &Path,
    workers: usize,
    cache: Option<&FileCache>,
) -> std::io::Result<Scan> {
    let rels = collect_files(root)?;
    let workers = effective_workers(workers, rels.len());

    // Shard the sorted path list into contiguous chunks. Each worker
    // owns its output slots; nothing is pushed through a shared lock.
    let mut slots: Vec<Option<std::io::Result<Arc<CachedFile>>>> = Vec::new();
    slots.resize_with(rels.len(), || None);
    let chunk = rels.len().div_ceil(workers).max(1);
    std::thread::scope(|s| {
        for (rel_chunk, out_chunk) in rels.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            s.spawn(move || {
                for (rel, slot) in rel_chunk.iter().zip(out_chunk.iter_mut()) {
                    let scanned = std::fs::read_to_string(root.join(rel)).map(|text| {
                        match cache {
                            Some(c) => c.get_or_scan(rel, text),
                            None => {
                                let file = Arc::new(SourceFile::from_text(rel, text));
                                let findings = check_file(&file);
                                Arc::new(CachedFile { file, findings })
                            }
                        }
                    });
                    *slot = Some(scanned);
                }
            });
        }
    });

    // Fold in path order (slot order == sorted path order).
    let mut files = Vec::with_capacity(rels.len());
    let mut file_findings = Vec::new();
    for slot in slots {
        let cached = slot.expect("every slot filled by its shard")?;
        files.push(Arc::clone(&cached.file));
        file_findings.extend(cached.findings.iter().cloned());
    }

    let ws = Workspace {
        root: root.to_path_buf(),
        files,
        graph: deps::CrateGraph::load(root),
    };
    Ok(finish_scan(&ws, file_findings))
}

/// Resolves a worker count: `0` means one per available CPU, and no
/// point spawning more workers than files.
fn effective_workers(requested: usize, files: usize) -> usize {
    let auto = || {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    };
    let n = if requested == 0 { auto() } else { requested };
    n.clamp(1, files.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable() {
        // Pinned values: cache keys must not drift across builds.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"fn a() {}"), fnv1a(b"fn b() {}"));
    }

    #[test]
    fn cache_shares_parsed_files() {
        let cache = FileCache::new();
        let a = cache.get_or_scan("crates/world/src/x.rs", "fn f() {}".to_string());
        let b = cache.get_or_scan("crates/world/src/x.rs", "fn f() {}".to_string());
        assert!(Arc::ptr_eq(&a, &b), "same content hits the same slot");
        assert_eq!(cache.len(), 1);
        // Different content under the same path is a different entry.
        let c = cache.get_or_scan("crates/world/src/x.rs", "fn g() {}".to_string());
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn worker_resolution_clamps() {
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(2, 100), 2);
        assert_eq!(effective_workers(3, 0), 1);
        assert!(effective_workers(0, 100) >= 1);
    }
}
