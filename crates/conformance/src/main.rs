//! The conformance gate CI runs.
//!
//! ```text
//! cargo run -p conformance                       # scan, report, fail on new findings
//! cargo run -p conformance -- --deny-new        # CI mode: stale baseline entries fail too
//! cargo run -p conformance -- --update-baseline # rewrite the baseline from this scan
//! cargo run -p conformance -- --json report.json
//! cargo run -p conformance -- --workers 4       # shard the scan (0 = one per CPU)
//! ```
//!
//! The scan is sharded across workers and folded in path order, so its
//! output is bit-identical at any `--workers` value (including the
//! serial scan the library exposes).

use std::path::PathBuf;
use std::process::ExitCode;

use conformance::{Baseline, BASELINE_PATH};

struct Args {
    root: PathBuf,
    deny_new: bool,
    update_baseline: bool,
    json_out: Option<PathBuf>,
    workers: usize,
}

fn parse_args() -> Result<Args, String> {
    // The binary lives in crates/conformance; the workspace root is two
    // levels up.
    let mut args = Args {
        root: PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")),
        deny_new: false,
        update_baseline: false,
        json_out: None,
        workers: 0, // one per available CPU
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-new" => args.deny_new = true,
            "--update-baseline" => args.update_baseline = true,
            "--json" => {
                let path = it.next().ok_or("--json requires a path")?;
                args.json_out = Some(PathBuf::from(path));
            }
            "--root" => {
                let path = it.next().ok_or("--root requires a path")?;
                args.root = PathBuf::from(path);
            }
            "--workers" => {
                let n = it.next().ok_or("--workers requires a count")?;
                args.workers = n
                    .parse()
                    .map_err(|_| format!("--workers: `{n}` is not a count"))?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("conformance: {e}");
            return ExitCode::FAILURE;
        }
    };

    let result = conformance::scan::scan_parallel(&args.root, args.workers, None);
    let scan = match result {
        Ok(s) => s,
        Err(e) => {
            eprintln!("conformance: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let baseline_path = args.root.join(BASELINE_PATH);
    if args.update_baseline {
        let baseline = Baseline::from_findings(&scan.findings);
        if let Err(e) = std::fs::write(&baseline_path, baseline.to_json()) {
            eprintln!("conformance: cannot write baseline: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "conformance: baseline rewritten with {} entr{} at {}",
            baseline.entries.len(),
            if baseline.entries.len() == 1 { "y" } else { "ies" },
            baseline_path.display(),
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("conformance: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = baseline.apply(scan.findings.clone());

    print!("{}", conformance::report::render_text(&scan, &outcome));
    if let Some(json_path) = &args.json_out {
        let doc = conformance::report::to_json(&scan, &outcome);
        let text = serde_json::to_string_pretty(&doc).expect("report serializes");
        if let Err(e) = std::fs::write(json_path, format!("{text}\n")) {
            eprintln!("conformance: cannot write {}: {e}", json_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("conformance: wrote {}", json_path.display());
    }

    let failed =
        !outcome.new.is_empty() || (args.deny_new && !outcome.stale.is_empty());
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
