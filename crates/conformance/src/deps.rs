//! The workspace graph layer: every crate's `Cargo.toml` parsed into a
//! crate-dependency DAG.
//!
//! The `deterministic-closure` rule proves over this graph that the
//! `DETERMINISTIC_CRATES` list is closed under path dependencies — a
//! deterministic crate can never silently grow a nondeterministic
//! dependency, and the manifest markers
//! (`[package.metadata.conformance] deterministic = true`) can never
//! drift from the list the token rules enforce.
//!
//! The parser covers exactly the TOML subset this workspace uses:
//! `[section]` headers, `key = "string"`, `key = true`, and single-line
//! inline tables (`key = { workspace = true }`, `key = { path = "…" }`).
//! Only `[dependencies]` entries feed the graph — dev-dependencies
//! never ship in the serving path, so they carry no closure obligation.

use std::collections::BTreeMap;
use std::path::Path;

/// How one dependency entry is declared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepSpec {
    /// `{ workspace = true }` — resolved through the root
    /// `[workspace.dependencies]` table.
    Workspace,
    /// `{ path = "..." }` — resolved relative to the declaring manifest.
    Path(String),
    /// Anything else (a registry version). This workspace has none; the
    /// closure rule flags one appearing in a deterministic crate.
    External,
}

/// One `[dependencies]` entry of one manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dep {
    /// The dependency name as written in the manifest.
    pub name: String,
    /// The graph key of the package it resolves to (`None` for
    /// [`DepSpec::External`] or an unresolvable path).
    pub key: Option<String>,
    pub spec: DepSpec,
    /// 1-based line of the entry in the manifest.
    pub line: u32,
}

/// One workspace member (or the root package).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CratePackage {
    /// Graph key: `crates/<dir>` → `<dir>`, `vendor/<dir>` →
    /// `vendor/<dir>`, root package → its package name. Matches
    /// [`crate::source::SourceFile::crate_name`] for workspace members.
    pub key: String,
    /// Directory relative to the workspace root (`""` for the root).
    pub dir: String,
    /// The `[package] name` (may differ from the key: `crates/core` is
    /// package `arachnet`).
    pub package: String,
    /// `[package.metadata.conformance] deterministic = true`.
    pub deterministic: bool,
    /// Whether this is a vendored stand-in under `vendor/`.
    pub vendored: bool,
    /// Manifest path relative to the workspace root.
    pub manifest: String,
    pub deps: Vec<Dep>,
}

/// The parsed crate-dependency DAG.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrateGraph {
    /// All packages, sorted by key.
    pub packages: Vec<CratePackage>,
    /// Manifest problems (unresolvable workspace deps, unreadable
    /// files). The closure rule surfaces these as findings rather than
    /// silently analyzing a partial graph.
    pub errors: Vec<GraphError>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphError {
    /// Manifest path relative to the workspace root.
    pub manifest: String,
    pub message: String,
}

impl CrateGraph {
    /// Parses the workspace rooted at `root` into a graph. Returns
    /// `None` when `root` has no `Cargo.toml` (fixture workspaces
    /// assembled from strings); manifest-level problems inside an
    /// existing workspace are collected in [`CrateGraph::errors`].
    pub fn load(root: &Path) -> Option<CrateGraph> {
        let root_manifest = std::fs::read_to_string(root.join("Cargo.toml")).ok()?;
        let mut graph = CrateGraph::default();
        let root_doc = Manifest::parse(&root_manifest);

        // Member manifests: crates/* and vendor/*, plus the root package.
        let mut members: Vec<(String, Manifest)> = Vec::new();
        if !root_doc.package_name.is_empty() {
            members.push((String::new(), root_doc.clone()));
        }
        for parent in ["crates", "vendor"] {
            let dir = root.join(parent);
            let Ok(entries) = std::fs::read_dir(&dir) else { continue };
            let mut names: Vec<String> = entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().join("Cargo.toml").is_file())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect();
            names.sort();
            for name in names {
                let rel = format!("{parent}/{name}");
                match std::fs::read_to_string(root.join(&rel).join("Cargo.toml")) {
                    Ok(text) => members.push((rel, Manifest::parse(&text))),
                    Err(e) => graph.errors.push(GraphError {
                        manifest: format!("{rel}/Cargo.toml"),
                        message: format!("unreadable manifest: {e}"),
                    }),
                }
            }
        }

        for (dir, doc) in &members {
            let manifest = if dir.is_empty() {
                "Cargo.toml".to_string()
            } else {
                format!("{dir}/Cargo.toml")
            };
            if doc.package_name.is_empty() {
                graph.errors.push(GraphError {
                    manifest,
                    message: "manifest has no [package] name".to_string(),
                });
                continue;
            }
            let key = dir_key(dir, &doc.package_name);
            let mut deps = Vec::new();
            for raw in &doc.deps {
                let (key_resolved, err) = resolve(raw, dir, &root_doc.workspace_deps);
                if let Some(message) = err {
                    graph.errors.push(GraphError { manifest: manifest.clone(), message });
                }
                deps.push(Dep {
                    name: raw.name.clone(),
                    key: key_resolved,
                    spec: raw.spec.clone(),
                    line: raw.line,
                });
            }
            graph.packages.push(CratePackage {
                key,
                dir: dir.clone(),
                package: doc.package_name.clone(),
                deterministic: doc.deterministic,
                vendored: dir.starts_with("vendor/"),
                manifest,
                deps,
            });
        }
        graph.packages.sort_by(|a, b| a.key.cmp(&b.key));
        graph.errors.sort_by(|a, b| (&a.manifest, &a.message).cmp(&(&b.manifest, &b.message)));
        Some(graph)
    }

    /// Looks a package up by graph key.
    pub fn package(&self, key: &str) -> Option<&CratePackage> {
        self.packages.iter().find(|p| p.key == key)
    }

    /// Whether the package behind `key` carries the deterministic
    /// manifest marker.
    pub fn is_deterministic(&self, key: &str) -> bool {
        self.package(key).is_some_and(|p| p.deterministic)
    }
}

/// Graph key for a member directory.
fn dir_key(dir: &str, package_name: &str) -> String {
    match dir.strip_prefix("crates/") {
        Some(name) => name.to_string(),
        None if dir.is_empty() => package_name.to_string(),
        None => dir.to_string(), // vendor/<name>
    }
}

/// Resolves one raw dependency to a graph key. Returns
/// `(key, error message)`.
fn resolve(
    raw: &RawDep,
    member_dir: &str,
    workspace_deps: &BTreeMap<String, String>,
) -> (Option<String>, Option<String>) {
    let path = match &raw.spec {
        DepSpec::Workspace => match workspace_deps.get(&raw.name) {
            Some(p) => p.clone(),
            None => {
                return (
                    None,
                    Some(format!(
                        "dependency `{}` says `workspace = true` but the root \
                         [workspace.dependencies] table has no such entry",
                        raw.name
                    )),
                )
            }
        },
        DepSpec::Path(p) => join_rel(member_dir, p),
        DepSpec::External => return (None, None),
    };
    (Some(dir_key(&path, &raw.name)), None)
}

/// Joins a manifest-relative path onto a root-relative member dir and
/// normalizes `..`/`.` components. `crates/bench` + `../..` → `""`.
fn join_rel(base: &str, rel: &str) -> String {
    let mut parts: Vec<&str> =
        base.split('/').filter(|s| !s.is_empty() && *s != ".").collect();
    for c in rel.split('/') {
        match c {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            other => parts.push(other),
        }
    }
    parts.join("/")
}

/// One parsed manifest (the subset the graph needs).
#[derive(Debug, Clone, Default)]
struct Manifest {
    package_name: String,
    deterministic: bool,
    deps: Vec<RawDep>,
    /// Root manifest only: `[workspace.dependencies]` name → path.
    workspace_deps: BTreeMap<String, String>,
}

#[derive(Debug, Clone)]
struct RawDep {
    name: String,
    spec: DepSpec,
    line: u32,
}

impl Manifest {
    fn parse(text: &str) -> Manifest {
        let mut doc = Manifest::default();
        let mut section = String::new();
        for (ix, raw_line) in text.lines().enumerate() {
            let line = strip_toml_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                section = header
                    .trim_start_matches('[')
                    .trim_end_matches(']')
                    .trim()
                    .to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else { continue };
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            match section.as_str() {
                "package" if key == "name" => {
                    doc.package_name = unquote(value).to_string();
                }
                "package.metadata.conformance" if key == "deterministic" => {
                    doc.deterministic = value == "true";
                }
                "dependencies" => {
                    doc.deps.push(RawDep {
                        name: key.to_string(),
                        spec: parse_dep_value(value),
                        line: ix as u32 + 1,
                    });
                }
                "workspace.dependencies" => {
                    if let DepSpec::Path(p) = parse_dep_value(value) {
                        doc.workspace_deps.insert(key.to_string(), p);
                    }
                }
                _ => {}
            }
        }
        doc
    }
}

/// Classifies one dependency value: inline table with `workspace = true`
/// or `path = "…"`, else an external registry spec.
fn parse_dep_value(value: &str) -> DepSpec {
    if !value.starts_with('{') {
        return DepSpec::External;
    }
    let inner = value.trim_start_matches('{').trim_end_matches('}');
    let mut path: Option<String> = None;
    let mut workspace = false;
    // Split on commas outside quotes (paths here never contain commas,
    // but feature lists like `features = ["a", "b"]` do).
    for part in split_top_level(inner) {
        let Some((k, v)) = part.split_once('=') else { continue };
        match (k.trim(), v.trim()) {
            ("workspace", "true") => workspace = true,
            ("path", v) => path = Some(unquote(v).to_string()),
            _ => {}
        }
    }
    if workspace {
        DepSpec::Workspace
    } else if let Some(p) = path {
        DepSpec::Path(p)
    } else {
        DepSpec::External
    }
}

/// Splits an inline-table body on commas that are not inside `[...]` or
/// a quoted string.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth = depth.saturating_sub(1),
            ',' if !in_str && depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Drops a `#` comment that is not inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(s: &str) -> &str {
    s.trim().trim_matches('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_member_manifest() {
        let doc = Manifest::parse(
            "[package]\nname = \"world\"\nversion = \"0.1.0\"\n\n\
             [package.metadata.conformance]\ndeterministic = true\n\n\
             [dependencies]\nnet-model = { workspace = true }\n\
             serde = { workspace = true, features = [\"derive\"] }\n\n\
             [dev-dependencies]\nproptest = { workspace = true }\n",
        );
        assert_eq!(doc.package_name, "world");
        assert!(doc.deterministic);
        let names: Vec<&str> = doc.deps.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["net-model", "serde"], "dev-deps are ignored");
        assert!(doc.deps.iter().all(|d| d.spec == DepSpec::Workspace));
    }

    #[test]
    fn parses_workspace_table_and_path_deps() {
        let doc = Manifest::parse(
            "[workspace]\nmembers = [\"crates/*\"]\n\n\
             [workspace.dependencies]\nserde = { path = \"vendor/serde\" }\n\
             arachnet = { path = \"crates/core\" }\n\n\
             [package]\nname = \"root\"\n\n\
             [dependencies]\nlocal = { path = \"../..\" }\nregistry-dep = \"1.0\"\n",
        );
        assert_eq!(doc.workspace_deps.get("serde").unwrap(), "vendor/serde");
        assert_eq!(doc.workspace_deps.get("arachnet").unwrap(), "crates/core");
        assert_eq!(doc.deps[0].spec, DepSpec::Path("../..".to_string()));
        assert_eq!(doc.deps[1].spec, DepSpec::External);
    }

    #[test]
    fn path_join_normalizes() {
        assert_eq!(join_rel("crates/bench", "../.."), "");
        assert_eq!(join_rel("crates/bench", "../conformance"), "crates/conformance");
        assert_eq!(join_rel("", "vendor/serde"), "vendor/serde");
    }

    #[test]
    fn dir_keys_match_crate_name_convention() {
        assert_eq!(dir_key("crates/world", "world"), "world");
        assert_eq!(dir_key("crates/core", "arachnet"), "core");
        assert_eq!(dir_key("vendor/serde", "serde"), "vendor/serde");
        assert_eq!(dir_key("", "arachnet-repro"), "arachnet-repro");
    }
}
