//! Diagnostic rendering: human-readable text and the JSON artifact CI
//! uploads.

use serde_json::{json, Value};

use crate::baseline::BaselineOutcome;
use crate::deps::CrateGraph;
use crate::rules::{all_rules, Finding};
use crate::Scan;

fn finding_json(f: &Finding) -> Value {
    json!({
        "rule": f.rule,
        "file": f.file,
        "line": f.line,
        "message": f.message,
        "snippet": f.snippet,
    })
}

/// The `deps` section: the crate DAG the `deterministic-closure` rule
/// ran over, and whether the closure held.
fn deps_json(graph: &CrateGraph, findings: &[Finding]) -> Value {
    let packages: Vec<Value> = graph
        .packages
        .iter()
        .map(|p| {
            let path_deps: Vec<&str> = p
                .deps
                .iter()
                .filter_map(|d| d.key.as_deref())
                .collect();
            json!({
                "name": p.key,
                "package": p.package,
                "deterministic": p.deterministic,
                "vendored": p.vendored,
                "manifest": p.manifest,
                "path_deps": path_deps,
            })
        })
        .collect();
    let deterministic: Vec<&str> = graph
        .packages
        .iter()
        .filter(|p| p.deterministic)
        .map(|p| p.key.as_str())
        .collect();
    let closure_ok =
        !findings.iter().any(|f| f.rule == "deterministic-closure");
    json!({
        "packages": packages,
        "deterministic": deterministic,
        "closure_ok": closure_ok,
    })
}

/// The machine-readable report (uploaded as a CI artifact alongside the
/// BENCH trajectory files).
pub fn to_json(scan: &Scan, outcome: &BaselineOutcome) -> Value {
    let rules: Vec<Value> = all_rules()
        .iter()
        .map(|r| {
            let id = r.id;
            let description = r.description;
            json!({ "id": id, "description": description })
        })
        .collect();
    let files_scanned = scan.files_scanned;
    let new_count = outcome.new.len();
    let baselined_count = outcome.baselined.len();
    let allowed_count = scan.allowed.len();
    let stale_count = outcome.stale.len();
    let summary = json!({
        "files_scanned": files_scanned,
        "new": new_count,
        "baselined": baselined_count,
        "allowed": allowed_count,
        "stale_baseline_entries": stale_count,
    });
    let new: Vec<Value> = outcome.new.iter().map(finding_json).collect();
    let baselined: Vec<Value> = outcome.baselined.iter().map(finding_json).collect();
    let allowed: Vec<Value> = scan.allowed.iter().map(finding_json).collect();
    let stale: Vec<Value> = outcome
        .stale
        .iter()
        .map(|e| {
            let rule = e.rule.clone();
            let file = e.file.clone();
            let snippet = e.snippet.clone();
            let count = e.count;
            json!({ "rule": rule, "file": file, "snippet": snippet, "count": count })
        })
        .collect();
    let deps = match &scan.graph {
        Some(graph) => deps_json(graph, &scan.findings),
        None => Value::Null,
    };
    json!({
        "tool": "conformance",
        "rules": rules,
        "summary": summary,
        "new": new,
        "baselined": baselined,
        "allowed": allowed,
        "stale_baseline_entries": stale,
        "deps": deps,
    })
}

fn render_finding(f: &Finding) -> String {
    let loc = if f.line > 0 {
        format!("{}:{}", f.file, f.line)
    } else {
        f.file.clone()
    };
    let mut line = format!("{loc}: [{}] {}", f.rule, f.message);
    if !f.snippet.is_empty() {
        line.push_str(&format!("\n    | {}", f.snippet));
    }
    line
}

/// The human-readable report printed by the binary.
pub fn render_text(scan: &Scan, outcome: &BaselineOutcome) -> String {
    let mut out = String::new();
    for f in &outcome.new {
        out.push_str(&render_finding(f));
        out.push('\n');
    }
    for e in &outcome.stale {
        out.push_str(&format!(
            "{}: [baseline-expired] entry for rule `{}` covers {} finding(s) that no \
             longer exist — shrink the baseline (`--update-baseline`)\n",
            e.file, e.rule, e.count,
        ));
    }
    if let Some(graph) = &scan.graph {
        let det = graph.packages.iter().filter(|p| p.deterministic).count();
        out.push_str(&format!(
            "conformance: crate graph: {} packages, {} deterministic\n",
            graph.packages.len(),
            det,
        ));
    }
    out.push_str(&format!(
        "conformance: {} files scanned, {} rules active; {} new, {} baselined, \
         {} allowed by pragma, {} stale baseline entries\n",
        scan.files_scanned,
        all_rules().len(),
        outcome.new.len(),
        outcome.baselined.len(),
        scan.allowed.len(),
        outcome.stale.len(),
    ));
    out
}
