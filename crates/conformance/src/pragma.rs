//! Inline suppression pragmas.
//!
//! A finding can be acknowledged at the site with
//!
//! ```text
//! // conformance: allow(<rule-id>, reason = "why this is sound")
//! ```
//!
//! A pragma on its own line covers the next line that carries code; a
//! trailing pragma covers its own line. The reason is mandatory and must
//! be non-empty — an allow without a justification is itself reported
//! (rule `pragma-syntax`).

use crate::lexer::{Token, TokenKind};

/// One parsed allow pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    pub rule: String,
    pub reason: String,
    /// Line the pragma comment sits on.
    pub line: u32,
    /// Line whose findings it suppresses.
    pub target_line: u32,
}

/// A malformed `conformance:` comment (reported as a finding).
#[derive(Debug, Clone)]
pub struct PragmaError {
    pub line: u32,
    pub message: String,
}

/// Extracts pragmas from the comment tokens of one file.
pub fn parse_pragmas(text: &str, tokens: &[Token]) -> (Vec<Allow>, Vec<PragmaError>) {
    let mut allows = Vec::new();
    let mut errors = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let body = comment_body(&text[tok.start..tok.end]);
        let Some(rest) = body.strip_prefix("conformance:") else { continue };
        match parse_allow(rest.trim()) {
            Ok((rule, reason)) => {
                let target_line = pragma_target_line(tokens, i, tok.line);
                allows.push(Allow { rule, reason, line: tok.line, target_line });
            }
            Err(message) => errors.push(PragmaError { line: tok.line, message }),
        }
    }
    (allows, errors)
}

/// Strips exactly one comment introducer (`//`, `/*`) plus an optional
/// doc marker (`/`, `!`, `*`). Stripping only one layer means a pragma
/// *example* quoted inside a doc comment (`//! // conformance: ...`)
/// still reads as a nested comment, not as a live pragma.
fn comment_body(raw: &str) -> &str {
    let raw = raw
        .strip_prefix("//")
        .or_else(|| raw.strip_prefix("/*"))
        .unwrap_or(raw);
    let raw = raw.strip_suffix("*/").unwrap_or(raw);
    let raw = raw
        .strip_prefix('/')
        .or_else(|| raw.strip_prefix('!'))
        .or_else(|| raw.strip_prefix('*'))
        .unwrap_or(raw);
    raw.trim()
}

/// Parses `allow(<rule>, reason = "...")`.
fn parse_allow(s: &str) -> Result<(String, String), String> {
    let Some(inner) = s.strip_prefix("allow(").and_then(|s| s.strip_suffix(')')) else {
        return Err(format!("expected `allow(<rule>, reason = \"...\")`, got `{s}`"));
    };
    let Some((rule, rest)) = inner.split_once(',') else {
        return Err("allow pragma is missing the mandatory `reason = \"...\"`".to_string());
    };
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return Err(format!("`{rule}` is not a rule id"));
    }
    let rest = rest.trim();
    let Some(quoted) = rest.strip_prefix("reason").map(str::trim_start) else {
        return Err("allow pragma is missing the mandatory `reason = \"...\"`".to_string());
    };
    let reason = quoted
        .strip_prefix('=')
        .map(str::trim)
        .and_then(|q| q.strip_prefix('"'))
        .and_then(|q| q.strip_suffix('"'))
        .unwrap_or("");
    if reason.trim().is_empty() {
        return Err("allow pragma reason must be a non-empty string".to_string());
    }
    Ok((rule.to_string(), reason.trim().to_string()))
}

/// A trailing pragma covers its own line; a pragma alone on a line
/// covers the line of the next significant token.
fn pragma_target_line(tokens: &[Token], idx: usize, line: u32) -> u32 {
    let code_before = tokens[..idx].iter().rev().take_while(|t| t.line == line).any(|t| {
        !matches!(
            t.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    });
    if code_before {
        return line;
    }
    tokens[idx + 1..]
        .iter()
        .find(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .map(|t| t.line)
        .unwrap_or(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> (Vec<Allow>, Vec<PragmaError>) {
        parse_pragmas(src, &lex(src))
    }

    #[test]
    fn standalone_pragma_targets_next_code_line() {
        let src = "// conformance: allow(no-wall-clock, reason = \"bench timing\")\n\
                   let t = Instant::now();\n";
        let (allows, errors) = parse(src);
        assert!(errors.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "no-wall-clock");
        assert_eq!(allows[0].target_line, 2);
    }

    #[test]
    fn trailing_pragma_targets_own_line() {
        let src = "let t = now(); // conformance: allow(no-wall-clock, reason = \"x\")\n";
        let (allows, _) = parse(src);
        assert_eq!(allows[0].target_line, 1);
    }

    #[test]
    fn stacked_pragmas_share_a_target() {
        let src = "// conformance: allow(rule-a, reason = \"a\")\n\
                   // conformance: allow(rule-b, reason = \"b\")\n\
                   call();\n";
        let (allows, _) = parse(src);
        assert_eq!(allows.len(), 2);
        assert!(allows.iter().all(|a| a.target_line == 3));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let (allows, errors) = parse("// conformance: allow(no-wall-clock)\nx();\n");
        assert!(allows.is_empty());
        assert_eq!(errors.len(), 1);
        let (allows, errors) =
            parse("// conformance: allow(no-wall-clock, reason = \"\")\nx();\n");
        assert!(allows.is_empty());
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let (allows, errors) = parse("// conformance is enforced statically\n");
        assert!(allows.is_empty());
        assert!(errors.is_empty());
    }
}
