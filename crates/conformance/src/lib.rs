//! # conformance — workspace static analysis for determinism invariants
//!
//! Every layer of this reproduction stakes correctness on invariants
//! the dynamic suites can only spot-check: bit-identical output at any
//! worker count, pure-function scenario expansion, panic-free serving
//! paths, and dense/reference routing engines that move in lockstep.
//! This crate *proves the source obeys the rules* instead of hoping the
//! 1/2/8-worker suites happened to catch a violation.
//!
//! The engine is self-contained: a hand-rolled lexer ([`lexer`]), a
//! brace-matched item tree over it ([`syntax`]), a file scanner
//! ([`source`]), the crate-dependency graph parsed from every
//! `Cargo.toml` ([`deps`]), inline allow pragmas ([`pragma`]), a rule
//! framework ([`rules`]), a parallel incremental scanner ([`scan`]) and
//! a committed baseline for grandfathered findings ([`baseline`]). CI
//! gates on the binary:
//!
//! ```text
//! cargo run -p conformance -- --deny-new
//! ```
//!
//! The parallel scanner is pinned byte-identical to the serial scan at
//! any worker count: files are sharded across `std::thread::scope`
//! workers and the per-file results folded back in path order.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub mod baseline;
pub mod deps;
pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod scan;
pub mod source;
pub mod syntax;

pub use baseline::{Baseline, BaselineEntry, BaselineOutcome};
pub use rules::{all_rules, FileRule, Finding, Rule, RuleInfo, Sink};
pub use source::SourceFile;

/// The lexed workspace rules run over.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<Arc<SourceFile>>,
    /// The crate-dependency DAG parsed from the workspace manifests
    /// (`None` when the root has no `Cargo.toml` — fixture workspaces
    /// assembled from strings).
    pub graph: Option<deps::CrateGraph>,
}

impl Workspace {
    /// Loads and lexes every scannable `.rs` file under `root`, and
    /// parses the crate graph from the manifests.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        for rel in source::collect_files(root)? {
            files.push(Arc::new(SourceFile::load(root, &rel)?));
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            graph: deps::CrateGraph::load(root),
        })
    }

    /// Looks a file up by workspace-relative path.
    pub fn file(&self, rel_path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel_path).map(|f| f.as_ref())
    }
}

/// The result of running every rule over a workspace, before the
/// baseline is applied.
pub struct Scan {
    pub files_scanned: usize,
    /// Findings that survived pragma filtering.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an inline allow pragma.
    pub allowed: Vec<Finding>,
    /// The crate graph the `deterministic-closure` rule ran over
    /// (reported in the JSON artifact's `deps` section).
    pub graph: Option<deps::CrateGraph>,
}

/// Runs every active rule (plus the pragma-hygiene checks) over the
/// workspace at `root`, serially. [`scan::scan_parallel`] is the
/// sharded equivalent, pinned byte-identical to this.
pub fn scan(root: &Path) -> std::io::Result<Scan> {
    let ws = Workspace::load(root)?;
    Ok(scan_workspace(&ws))
}

/// [`scan`] over an already-loaded workspace (used by the fixture
/// tests, which assemble workspaces from strings).
pub fn scan_workspace(ws: &Workspace) -> Scan {
    let mut file_findings = Vec::new();
    for file in &ws.files {
        file_findings.extend(scan::check_file(file));
    }
    finish_scan(ws, file_findings)
}

/// The serial tail every scan shares: workspace rules, pragma
/// filtering, pragma hygiene (syntax + unused), deterministic ordering.
/// `file_findings` are the per-file rule findings, in file order.
pub(crate) fn finish_scan(ws: &Workspace, file_findings: Vec<Finding>) -> Scan {
    let mut sink = Sink { findings: file_findings, used_allows: Vec::new() };
    for rule in rules::workspace_rules() {
        rule.check(ws, &mut sink);
    }
    let Sink { findings: raw, used_allows } = sink;

    // Pragma filtering. Every pragma that suppresses a finding — or was
    // consumed inside a rule — is "used"; the rest have rotted.
    let mut used: BTreeSet<(String, String, u32)> = used_allows.into_iter().collect();
    let mut findings = Vec::new();
    let mut allowed = Vec::new();
    for finding in raw {
        let suppressed = finding.rule != rules::PRAGMA_SYNTAX
            && ws
                .file(&finding.file)
                .is_some_and(|f| f.allowed(finding.rule, finding.line));
        if suppressed {
            used.insert((finding.file.clone(), finding.rule.to_string(), finding.line));
            allowed.push(finding);
        } else {
            findings.push(finding);
        }
    }

    // Malformed pragmas are findings too — a suppression that silently
    // fails to parse must not silently suppress nothing.
    for file in &ws.files {
        for err in &file.pragma_errors {
            findings.push(Finding {
                rule: rules::PRAGMA_SYNTAX,
                file: file.rel_path.clone(),
                line: err.line,
                message: err.message.clone(),
                snippet: file.line_text(err.line).to_string(),
            });
        }
        // A well-formed pragma that suppresses nothing is a finding of
        // its own: the pragma set is shrink-only, like the baseline.
        // (Neither pragma-syntax nor unused-pragma findings can be
        // pragma-allowed — they are emitted after filtering.)
        for a in &file.allows {
            let key = (file.rel_path.clone(), a.rule.clone(), a.target_line);
            if !used.contains(&key) {
                findings.push(Finding {
                    rule: rules::UNUSED_PRAGMA,
                    file: file.rel_path.clone(),
                    line: a.line,
                    message: format!(
                        "`allow({})` suppresses no finding: the violation it \
                         acknowledged is gone — delete the pragma (pragmas are \
                         shrink-only, like the baseline)",
                        a.rule
                    ),
                    snippet: file.line_text(a.line).to_string(),
                });
            }
        }
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule))
    });
    allowed.sort_by(|a, b| {
        (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule))
    });
    Scan {
        files_scanned: ws.files.len(),
        findings,
        allowed,
        graph: ws.graph.clone(),
    }
}

/// The default baseline location, relative to the workspace root.
pub const BASELINE_PATH: &str = "crates/conformance/baseline.json";
