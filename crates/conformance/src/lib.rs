//! # conformance — workspace static analysis for determinism invariants
//!
//! Every layer of this reproduction stakes correctness on invariants
//! the dynamic suites can only spot-check: bit-identical output at any
//! worker count, pure-function scenario expansion, panic-free serving
//! paths, and dense/reference routing engines that move in lockstep.
//! This crate *proves the source obeys the rules* instead of hoping the
//! 1/2/8-worker suites happened to catch a violation.
//!
//! The engine is self-contained: a hand-rolled lexer ([`lexer`]), a
//! file/test-span scanner ([`source`]), inline allow pragmas
//! ([`pragma`]), a rule framework ([`rules`]) and a committed baseline
//! for grandfathered findings ([`baseline`]). CI gates on the binary:
//!
//! ```text
//! cargo run -p conformance -- --deny-new
//! ```

use std::path::{Path, PathBuf};

pub mod baseline;
pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod source;

pub use baseline::{Baseline, BaselineEntry, BaselineOutcome};
pub use rules::{all_rules, Finding, Rule};
pub use source::SourceFile;

/// The lexed workspace rules run over.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads and lexes every scannable `.rs` file under `root`.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        for rel in source::collect_files(root)? {
            files.push(SourceFile::load(root, &rel)?);
        }
        Ok(Workspace { root: root.to_path_buf(), files })
    }

    /// Looks a file up by workspace-relative path.
    pub fn file(&self, rel_path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel_path)
    }
}

/// The result of running every rule over a workspace, before the
/// baseline is applied.
pub struct Scan {
    pub files_scanned: usize,
    /// Findings that survived pragma filtering.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an inline allow pragma.
    pub allowed: Vec<Finding>,
}

/// Runs every active rule (plus pragma-syntax checking) over the
/// workspace at `root`.
pub fn scan(root: &Path) -> std::io::Result<Scan> {
    let ws = Workspace::load(root)?;
    Ok(scan_workspace(&ws))
}

/// [`scan`] over an already-loaded workspace (used by the fixture
/// tests, which assemble workspaces from strings).
pub fn scan_workspace(ws: &Workspace) -> Scan {
    let mut raw: Vec<Finding> = Vec::new();
    for rule in all_rules() {
        rule.check(ws, &mut raw);
    }
    // Malformed pragmas are findings too — a suppression that silently
    // fails to parse must not silently suppress nothing.
    for file in &ws.files {
        for err in &file.pragma_errors {
            raw.push(Finding {
                rule: rules::PRAGMA_SYNTAX,
                file: file.rel_path.clone(),
                line: err.line,
                message: err.message.clone(),
                snippet: file.line_text(err.line).to_string(),
            });
        }
    }

    let mut findings = Vec::new();
    let mut allowed = Vec::new();
    for finding in raw {
        let suppressed = finding.rule != rules::PRAGMA_SYNTAX
            && ws
                .file(&finding.file)
                .is_some_and(|f| f.allowed(finding.rule, finding.line));
        if suppressed {
            allowed.push(finding);
        } else {
            findings.push(finding);
        }
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule))
    });
    allowed.sort_by(|a, b| {
        (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule))
    });
    Scan { files_scanned: ws.files.len(), findings, allowed }
}

/// The default baseline location, relative to the workspace root.
pub const BASELINE_PATH: &str = "crates/conformance/baseline.json";
