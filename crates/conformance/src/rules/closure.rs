//! Dependency-closure rule: the deterministic-crate list is closed
//! under path dependencies.

use super::{Finding, Rule, Sink};
use crate::deps::DepSpec;
use crate::rules::determinism::DETERMINISTIC_CRATES;
use crate::Workspace;

/// Where unused-allow-entry findings anchor: this file owns the table.
const SELF_PATH: &str = "crates/conformance/src/rules/closure.rs";

/// Dependency edges out of the deterministic set that are sound anyway,
/// each with a written justification. Member `"*"` covers every
/// deterministic crate. Like the baseline and the pragma set, this
/// table is shrink-only: an entry matching no live edge is itself a
/// finding.
const ALLOWED_EDGES: &[(&str, &str, &str)] = &[
    (
        "*",
        "vendor/serde",
        "vendored derive stand-in: compile-time codegen only, no iteration order \
         or ambient state at runtime",
    ),
    (
        "*",
        "vendor/serde_json",
        "vendored stand-in whose objects are BTree-ordered, so serialization is \
         canonical by construction",
    ),
    (
        "*",
        "vendor/rand",
        "the vendored StdRng stand-in is the explicit-seed generator all \
         determinism flows from; no entropy source is exposed",
    ),
    (
        "*",
        "vendor/parking_lot",
        "vendored lock stand-in guarding build-once slots and buffers; lock \
         acquisition order never reaches any output",
    ),
    (
        "*",
        "vendor/bytes",
        "vendored buffer stand-in: pure byte containers with no ambient state",
    ),
    (
        "campaign",
        "core",
        "campaign drives the serving engine; engine outputs are pinned \
         byte-identical dynamically by the campaign_determinism suite at 1/2/8 \
         workers",
    ),
    (
        "campaign",
        "llm",
        "the scripted-LLM planner is a pure function of (prompt, seed); campaign \
         provenance records pin its outputs byte-identical across reruns",
    ),
    (
        "campaign",
        "toolkit",
        "tool invocations flow through the workflow executor, whose 1/2/8-worker \
         invariance suites pin the composed outputs campaign consumes",
    ),
];

/// `deterministic-closure`: proves from the parsed crate graph
/// ([`crate::deps`]) that
///
/// 1. every `[dependencies]` edge out of a deterministic crate lands on
///    another deterministic crate or a reasoned [`ALLOWED_EDGES`] entry
///    — the `DETERMINISTIC_CRATES` list cannot silently rot;
/// 2. the manifest markers (`[package.metadata.conformance]
///    deterministic = true`) and the `DETERMINISTIC_CRATES` const agree
///    in both directions;
/// 3. no deterministic crate pulls an external registry dependency;
/// 4. every [`ALLOWED_EDGES`] entry still matches a live edge
///    (shrink-only, like the baseline).
pub struct DeterministicClosure;

impl Rule for DeterministicClosure {
    fn id(&self) -> &'static str {
        "deterministic-closure"
    }

    fn description(&self) -> &'static str {
        "every path dependency of a DETERMINISTIC_CRATES member must itself be \
         deterministic (or a reasoned allow entry), and the manifest markers \
         must agree with the list"
    }

    fn check(&self, ws: &Workspace, sink: &mut Sink) {
        let Some(graph) = &ws.graph else {
            // String-assembled fixture workspaces have no manifests.
            return;
        };

        for err in &graph.errors {
            sink.push(Finding {
                rule: self.id(),
                file: err.manifest.clone(),
                line: 0,
                message: format!("crate graph: {}", err.message),
                snippet: String::new(),
            });
        }

        // 2a. Every list member present in the graph must carry the marker.
        for name in DETERMINISTIC_CRATES {
            let Some(p) = graph.package(name) else { continue };
            if !p.deterministic {
                sink.push(Finding {
                    rule: self.id(),
                    file: p.manifest.clone(),
                    line: 0,
                    message: format!(
                        "`{name}` is in DETERMINISTIC_CRATES but its manifest lacks \
                         `[package.metadata.conformance] deterministic = true`; the \
                         marker and the list must agree"
                    ),
                    snippet: String::new(),
                });
            }
        }
        // 2b. Every marked package must be in the list.
        for p in &graph.packages {
            if p.deterministic && !DETERMINISTIC_CRATES.contains(&p.key.as_str()) {
                sink.push(Finding {
                    rule: self.id(),
                    file: p.manifest.clone(),
                    line: 0,
                    message: format!(
                        "`{}` is marked deterministic in its manifest but absent \
                         from DETERMINISTIC_CRATES, so the token rules would not \
                         cover it; add it to the list (or drop the marker)",
                        p.key
                    ),
                    snippet: String::new(),
                });
            }
        }

        // 1 + 3: closure over [dependencies] edges.
        let mut used_entries = vec![false; ALLOWED_EDGES.len()];
        for p in graph.packages.iter().filter(|p| p.deterministic) {
            for dep in &p.deps {
                let Some(dep_key) = &dep.key else {
                    if dep.spec == DepSpec::External {
                        sink.push(Finding {
                            rule: self.id(),
                            file: p.manifest.clone(),
                            line: dep.line,
                            message: format!(
                                "deterministic crate `{}` pulls external dependency \
                                 `{}`: only path dependencies inside the closure \
                                 are allowed",
                                p.key, dep.name
                            ),
                            snippet: String::new(),
                        });
                    }
                    continue; // unresolvable paths already reported via errors
                };
                if graph.is_deterministic(dep_key) {
                    continue;
                }
                let allowed = ALLOWED_EDGES.iter().position(|(member, target, _)| {
                    (*member == "*" || *member == p.key) && *target == dep_key
                });
                match allowed {
                    Some(ix) => used_entries[ix] = true,
                    None => sink.push(Finding {
                        rule: self.id(),
                        file: p.manifest.clone(),
                        line: dep.line,
                        message: format!(
                            "deterministic crate `{}` depends on `{dep_key}`, which \
                             is not in the deterministic closure; add the marker \
                             there, or a reasoned ALLOWED_EDGES entry",
                            p.key
                        ),
                        snippet: String::new(),
                    }),
                }
            }
        }

        // 4. Shrink-only allow table: an entry whose member and target
        // both exist in this graph but which matched no edge has rotted.
        // (Fixture workspaces omit most packages, so absent endpoints
        // don't count against an entry.)
        for (ix, (member, target, _)) in ALLOWED_EDGES.iter().enumerate() {
            if used_entries[ix] {
                continue;
            }
            let member_present = *member == "*"
                || graph.package(member).is_some_and(|p| p.deterministic);
            let target_present = graph.package(target).is_some();
            let any_det = graph.packages.iter().any(|p| p.deterministic);
            if member_present && target_present && any_det {
                sink.push(Finding {
                    rule: self.id(),
                    file: SELF_PATH.to_string(),
                    line: 0,
                    message: format!(
                        "ALLOWED_EDGES entry (`{member}`, `{target}`) matches no \
                         live dependency edge: the table is shrink-only — delete \
                         the entry",
                    ),
                    snippet: format!("(\"{member}\", \"{target}\")"),
                });
            }
        }
    }
}
