//! Determinism rules: no unordered iteration in deterministic crates,
//! no wall-clock reads, no unseeded randomness.

use super::{finding_at, FileRule, Finding, SigView};
use crate::source::SourceFile;

/// Crates whose outputs the ROADMAP pins byte-identical across runs,
/// platforms and worker counts. Unordered containers are banned there
/// outright — even an un-iterated `HashMap` invites the next editor to
/// iterate it.
///
/// The list is closed under path dependencies: the
/// `deterministic-closure` rule proves from the parsed crate graph that
/// every path dependency of a member is itself a member (or a reasoned
/// allow entry), and that each member's manifest carries the matching
/// `[package.metadata.conformance] deterministic = true` marker.
pub const DETERMINISTIC_CRATES: [&str; 9] = [
    "world",
    "scenario-forge",
    "bgp-sim",
    "workflow",
    "registry",
    "chaos",
    "campaign",
    "telemetry",
    "net-model",
];

/// `no-unordered-iteration`: `HashMap`/`HashSet` in a deterministic
/// crate. ROADMAP mandates `BTreeMap`/`BTreeSet` or sorted order.
pub struct NoUnorderedIteration;

impl FileRule for NoUnorderedIteration {
    fn id(&self) -> &'static str {
        "no-unordered-iteration"
    }

    fn description(&self) -> &'static str {
        "HashMap/HashSet are banned in deterministic crates (world, scenario-forge, \
         bgp-sim, workflow, registry, chaos, campaign, telemetry, net-model); use \
         BTreeMap/BTreeSet or sorted vectors"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !DETERMINISTIC_CRATES.contains(&file.crate_name()) {
            return;
        }
        let sig = SigView::new(file);
        for i in 0..sig.len() {
            if !sig.is_ident(i) || file.is_test_code(sig.offset(i)) {
                continue;
            }
            let name = sig.text(i);
            if name == "HashMap" || name == "HashSet" {
                out.push(finding_at(
                    self.id(),
                    file,
                    sig.line(i),
                    format!(
                        "`{name}` in deterministic crate `{}`: iteration order is \
                         unordered; use BTreeMap/BTreeSet or a sorted vector",
                        file.crate_name()
                    ),
                ));
            }
        }
    }
}

/// `no-wall-clock`: `Instant`/`SystemTime` outside test code and
/// measurement context. Scenario expansion, world generation and
/// serving must be pure functions of their inputs; wall-clock reads are
/// hidden inputs. The bench crate *measures* wall time — its sites
/// carry explicit `conformance: allow` pragmas, and `benches/`
/// directories are exempt wholesale.
pub struct NoWallClock;

impl FileRule for NoWallClock {
    fn id(&self) -> &'static str {
        "no-wall-clock"
    }

    fn description(&self) -> &'static str {
        "std::time::Instant/SystemTime are banned outside tests and benches; \
         deterministic code takes time as an explicit SimTime input"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.in_benches_dir {
            return;
        }
        let sig = SigView::new(file);
        for i in 0..sig.len() {
            if !sig.is_ident(i) || file.is_test_code(sig.offset(i)) {
                continue;
            }
            let name = sig.text(i);
            if name == "Instant" || name == "SystemTime" {
                out.push(finding_at(
                    self.id(),
                    file,
                    sig.line(i),
                    format!(
                        "`{name}` reads the wall clock: deterministic code must take \
                         time as an explicit input (SimTime), not sample it"
                    ),
                ));
            }
        }
    }
}

/// `no-unseeded-rng`: randomness that does not flow from an explicit
/// seed. All generator randomness flows from `StdRng::seed_from_u64`.
pub struct NoUnseededRng;

/// Identifiers that always mean entropy-seeded randomness.
const UNSEEDED: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "ThreadRng"];

impl FileRule for NoUnseededRng {
    fn id(&self) -> &'static str {
        "no-unseeded-rng"
    }

    fn description(&self) -> &'static str {
        "thread_rng/from_entropy/OsRng/rand::random are banned; all randomness \
         must flow from an explicit seed (StdRng::seed_from_u64)"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.in_benches_dir {
            return;
        }
        let sig = SigView::new(file);
        for i in 0..sig.len() {
            if !sig.is_ident(i) || file.is_test_code(sig.offset(i)) {
                continue;
            }
            let name = sig.text(i);
            let qual_w = SigView::width(&["rand", "::"]);
            let hit = UNSEEDED.contains(&name)
                || (name == "random"
                    && i >= qual_w
                    && sig.matches(i - qual_w, &["rand", "::"]));
            if hit {
                out.push(finding_at(
                    self.id(),
                    file,
                    sig.line(i),
                    format!(
                        "`{name}` draws entropy-seeded randomness: seed an StdRng \
                         from the scenario/world config instead"
                    ),
                ));
            }
        }
    }
}
