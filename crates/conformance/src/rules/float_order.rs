//! Float-ordering rule: deterministic crates must compare floats with
//! `total_cmp` and round explicitly before casting to integers.

use super::{finding_at, FileRule, Finding, SigView};
use crate::lexer::TokenKind;
use crate::rules::determinism::DETERMINISTIC_CRATES;
use crate::source::SourceFile;

/// Integer types an `as` cast silently truncates a float into.
const INT_TARGETS: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
    "isize",
];

/// Methods that make the rounding mode explicit; a cast applied straight
/// to their result is fine (`(x * 1e6).round() as i64`).
const ROUNDING: [&str; 4] = ["round", "floor", "ceil", "trunc"];

/// `float-total-order`: in deterministic crates, non-test code must not
///
/// 1. call `.partial_cmp(...)` — on floats it returns `None` for NaN,
///    and every call site here either unwraps (a panic waiting for a
///    NaN) or folds to `Ordering::Equal` (which makes the comparator
///    intransitive, an unstable-sort landmine). `f64::total_cmp` is the
///    IEEE 754 total order: deterministic on every input;
/// 2. cast float-valued expressions to integers with a bare `as` — the
///    implicit truncation hides the rounding mode. Spell it:
///    `.trunc()`, `.round()`, `.floor()` or `.ceil()` before the cast.
///
/// PR 6 burned the then-existing `partial_cmp` unwraps down to
/// `total_cmp` by hand; this rule keeps them down.
pub struct FloatTotalOrder;

impl FileRule for FloatTotalOrder {
    fn id(&self) -> &'static str {
        "float-total-order"
    }

    fn description(&self) -> &'static str {
        "deterministic crates must compare floats with total_cmp (partial_cmp is \
         banned) and make rounding explicit before float→integer `as` casts"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !DETERMINISTIC_CRATES.contains(&file.crate_name()) {
            return;
        }
        let sig = SigView::new(file);
        for i in 0..sig.len() {
            if file.is_test_code(sig.offset(i)) {
                continue;
            }
            // 1. `.partial_cmp(` — the leading `.` keeps `fn partial_cmp`
            // in a PartialOrd impl (which delegates to `cmp`) legal.
            if sig.matches(i, &[".", "partial_cmp", "("]) {
                out.push(finding_at(
                    self.id(),
                    file,
                    sig.line(i + 1),
                    "`.partial_cmp(...)` is not a total order (NaN ⇒ None): use \
                     `total_cmp` so float comparisons are deterministic on every \
                     input"
                        .to_string(),
                ));
            }
            // 2. `<float expr> as <int>` without an explicit rounding call.
            if sig.text(i) == "as"
                && i + 1 < sig.len()
                && INT_TARGETS.contains(&sig.text(i + 1))
                && i > 0
                && float_evidence_before(&sig, i)
                && !explicit_rounding_before(&sig, i)
            {
                out.push(finding_at(
                    self.id(),
                    file,
                    sig.line(i),
                    format!(
                        "float → `{}` via bare `as` truncates with an implicit \
                         rounding mode: spell it (`.trunc()`, `.round()`, \
                         `.floor()`, `.ceil()`) before the cast",
                        sig.text(i + 1)
                    ),
                ));
            }
        }
    }
}

/// Whether the token is a float literal (`1.5`, `1e6`, `2f64`).
fn is_float_lit(sig: &SigView<'_>, i: usize) -> bool {
    if sig.kind(i) != TokenKind::NumLit {
        return false;
    }
    let t = sig.text(i);
    if t.starts_with("0x") || t.starts_with("0b") || t.starts_with("0o") {
        return false;
    }
    if t.ends_with("f32") || t.ends_with("f64") {
        return true;
    }
    // Integer suffixes contain letters too (`3usize` has an `e`).
    if INT_TARGETS.iter().any(|s| t.ends_with(s)) {
        return false;
    }
    t.contains('.') || t.contains('e') || t.contains('E')
}

/// Whether the expression ending just before the `as` at `i` carries
/// lexical float evidence: a float literal, or a parenthesized group
/// containing a float literal or an `f32`/`f64` ident.
fn float_evidence_before(sig: &SigView<'_>, i: usize) -> bool {
    let j = i - 1;
    if is_float_lit(sig, j) {
        return true;
    }
    if sig.text(j) != ")" {
        return false;
    }
    // Walk back to the matching `(`.
    let mut depth = 0usize;
    let mut k = j;
    loop {
        match sig.text(k) {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if k == 0 {
            return false;
        }
        k -= 1;
    }
    ((k + 1)..j).any(|m| {
        is_float_lit(sig, m) || (sig.is_ident(m) && matches!(sig.text(m), "f32" | "f64"))
    })
}

/// Whether the cast operand is exactly a `.round()`-family call:
/// `... .round() as i64`.
fn explicit_rounding_before(sig: &SigView<'_>, i: usize) -> bool {
    i >= 4
        && sig.text(i - 1) == ")"
        && sig.text(i - 2) == "("
        && ROUNDING.contains(&sig.text(i - 3))
        && sig.text(i - 4) == "."
}
