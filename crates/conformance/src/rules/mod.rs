//! The rule framework.
//!
//! A rule walks the lexed workspace and emits [`Finding`]s. Rules see
//! the whole [`Workspace`] so cross-file invariants (like the
//! dense/reference engine pairing) are expressible; single-file rules
//! just loop. Adding a rule: implement [`Rule`], register it in
//! [`all_rules`], add a violating + clean fixture under
//! `fixtures/`, and document it in the README table.

use crate::source::SourceFile;
use crate::Workspace;

pub mod concurrency;
pub mod determinism;
pub mod paired_engines;
pub mod panic_budget;

/// Rule id used for malformed `conformance:` comments (reported by the
/// engine itself, not a [`Rule`] impl).
pub const PRAGMA_SYNTAX: &str = "pragma-syntax";

/// One diagnostic: a rule violated at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative path (or `crates/<name>` for crate-level
    /// aggregates like the panic budget).
    pub file: String,
    /// 1-based line, or 0 for crate-level aggregates.
    pub line: u32,
    pub message: String,
    /// Trimmed source line — the baseline matches on this, not the line
    /// number, so unrelated edits don't invalidate grandfathered
    /// findings.
    pub snippet: String,
}

impl Finding {
    /// The identity the baseline matches on.
    pub fn key(&self) -> (String, String, String) {
        (self.rule.to_string(), self.file.clone(), self.snippet.clone())
    }
}

/// A static-analysis rule over the lexed workspace.
pub trait Rule {
    fn id(&self) -> &'static str;
    fn description(&self) -> &'static str;
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// Every active rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(determinism::NoUnorderedIteration),
        Box::new(determinism::NoWallClock),
        Box::new(determinism::NoUnseededRng),
        Box::new(concurrency::ScopedThreadsOnly),
        Box::new(panic_budget::PanicBudget),
        Box::new(paired_engines::PairedEngines),
    ]
}

/// Emits one finding anchored at a token occurrence.
pub(crate) fn finding_at(
    rule: &'static str,
    file: &SourceFile,
    line: u32,
    message: String,
) -> Finding {
    Finding {
        rule,
        file: file.rel_path.clone(),
        line,
        message,
        snippet: file.line_text(line).to_string(),
    }
}

/// Shared pattern-matching view: significant-token texts plus their
/// token indices, so rules can look around occurrences cheaply.
pub(crate) struct SigView<'a> {
    pub file: &'a SourceFile,
    pub idx: Vec<usize>,
}

impl<'a> SigView<'a> {
    pub fn new(file: &'a SourceFile) -> SigView<'a> {
        SigView { file, idx: file.sig() }
    }

    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// Text of the `i`-th significant token.
    pub fn text(&self, i: usize) -> &str {
        self.file.token_text(&self.file.tokens[self.idx[i]])
    }

    pub fn line(&self, i: usize) -> u32 {
        self.file.tokens[self.idx[i]].line
    }

    pub fn offset(&self, i: usize) -> usize {
        self.file.tokens[self.idx[i]].start
    }

    pub fn is_ident(&self, i: usize) -> bool {
        matches!(self.file.tokens[self.idx[i]].kind, crate::lexer::TokenKind::Ident)
    }

    /// Whether significant tokens starting at `i` spell out `pattern`.
    /// The lexer emits punctuation one character per token, so a
    /// multi-character punctuation element such as `"::"` matches the
    /// corresponding run of single-character tokens.
    pub fn matches(&self, i: usize, pattern: &[&str]) -> bool {
        let mut k = i;
        for p in pattern {
            if Self::is_multi_punct(p) {
                for c in p.chars() {
                    if k >= self.len() || self.text(k) != c.to_string() {
                        return false;
                    }
                    k += 1;
                }
            } else {
                if k >= self.len() || self.text(k) != *p {
                    return false;
                }
                k += 1;
            }
        }
        true
    }

    /// How many significant tokens `pattern` spans when matched.
    pub fn width(pattern: &[&str]) -> usize {
        pattern
            .iter()
            .map(|p| if Self::is_multi_punct(p) { p.chars().count() } else { 1 })
            .sum()
    }

    fn is_multi_punct(p: &str) -> bool {
        p.len() > 1 && p.chars().all(|c| c.is_ascii_punctuation())
    }
}
