//! The rule framework.
//!
//! Rules come in two shapes. A [`FileRule`] checks one file at a time —
//! these are the parallelizable, cacheable majority, sharded across
//! workers by the scanner ([`crate::scan`]). A workspace [`Rule`] sees
//! the whole [`Workspace`] (and its crate graph), so cross-file
//! invariants like the dense/reference engine pairing and the
//! dependency closure are expressible; those run serially after the
//! per-file pass. Adding a rule: implement the right trait, register it
//! in [`file_rules`] / [`workspace_rules`], add a violating + clean
//! fixture under `fixtures/`, and document it in the README table.

use crate::source::SourceFile;
use crate::Workspace;

pub mod closure;
pub mod concurrency;
pub mod determinism;
pub mod float_order;
pub mod paired_engines;
pub mod panic_budget;
pub mod shared_mutation;

/// Rule id used for malformed `conformance:` comments (reported by the
/// engine itself, not a rule impl).
pub const PRAGMA_SYNTAX: &str = "pragma-syntax";

/// Rule id for allow pragmas that suppress nothing (reported by the
/// engine after pragma filtering — see [`crate::scan_workspace`]). Like
/// the baseline, the pragma set is shrink-only: a pragma whose finding
/// was burned down must be deleted, not left to rot.
pub const UNUSED_PRAGMA: &str = "unused-pragma";

/// One diagnostic: a rule violated at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative path (or `crates/<name>` for crate-level
    /// aggregates like the panic budget).
    pub file: String,
    /// 1-based line, or 0 for crate-level aggregates.
    pub line: u32,
    pub message: String,
    /// Trimmed source line — the baseline matches on this, not the line
    /// number, so unrelated edits don't invalidate grandfathered
    /// findings.
    pub snippet: String,
}

impl Finding {
    /// The identity the baseline matches on.
    pub fn key(&self) -> (String, String, String) {
        (self.rule.to_string(), self.file.clone(), self.snippet.clone())
    }
}

/// Where workspace rules deposit findings — plus the allow pragmas they
/// consumed *internally* (the panic budget skips allowed sites while
/// counting instead of emitting per-site findings), so the
/// unused-pragma check knows those pragmas earn their keep.
#[derive(Debug, Default)]
pub struct Sink {
    pub findings: Vec<Finding>,
    /// `(file, rule, target line)` of internally-consumed pragmas.
    pub used_allows: Vec<(String, String, u32)>,
}

impl Sink {
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Records that a pragma `allow(rule)` targeting `line` in `file`
    /// suppressed something, even though no finding was emitted.
    pub fn mark_allow_used(&mut self, file: &str, rule: &str, line: u32) {
        self.used_allows.push((file.to_string(), rule.to_string(), line));
    }
}

/// A rule over one source file. Implementations must not consult
/// anything beyond the file — the scanner runs them in parallel and
/// caches their findings per file content.
pub trait FileRule {
    fn id(&self) -> &'static str;
    fn description(&self) -> &'static str;
    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// A static-analysis rule over the whole lexed workspace (cross-file or
/// crate-graph context; runs serially after the per-file pass).
pub trait Rule {
    fn id(&self) -> &'static str;
    fn description(&self) -> &'static str;
    fn check(&self, ws: &Workspace, sink: &mut Sink);
}

/// Every per-file rule, in reporting order.
pub fn file_rules() -> Vec<Box<dyn FileRule>> {
    vec![
        Box::new(determinism::NoUnorderedIteration),
        Box::new(determinism::NoWallClock),
        Box::new(determinism::NoUnseededRng),
        Box::new(concurrency::ScopedThreadsOnly),
        Box::new(float_order::FloatTotalOrder),
        Box::new(shared_mutation::NoSharedMutation),
    ]
}

/// Every workspace-level rule, in reporting order.
pub fn workspace_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(panic_budget::PanicBudget),
        Box::new(paired_engines::PairedEngines),
        Box::new(closure::DeterministicClosure),
    ]
}

/// Id + description of one active rule (for the report).
pub struct RuleInfo {
    pub id: &'static str,
    pub description: &'static str,
}

/// Every active rule, in reporting order: the per-file rules, the
/// workspace rules, then the engine-level pragma-hygiene check.
pub fn all_rules() -> Vec<RuleInfo> {
    let mut out: Vec<RuleInfo> = file_rules()
        .iter()
        .map(|r| RuleInfo { id: r.id(), description: r.description() })
        .collect();
    out.extend(
        workspace_rules()
            .iter()
            .map(|r| RuleInfo { id: r.id(), description: r.description() }),
    );
    out.push(RuleInfo {
        id: UNUSED_PRAGMA,
        description:
            "a `// conformance: allow(...)` pragma that suppresses no finding is \
             itself a finding; the pragma set is shrink-only, like the baseline",
    });
    out
}

/// Emits one finding anchored at a token occurrence.
pub(crate) fn finding_at(
    rule: &'static str,
    file: &SourceFile,
    line: u32,
    message: String,
) -> Finding {
    Finding {
        rule,
        file: file.rel_path.clone(),
        line,
        message,
        snippet: file.line_text(line).to_string(),
    }
}

/// Shared pattern-matching view: significant-token texts plus their
/// token indices, so rules can look around occurrences cheaply.
pub(crate) struct SigView<'a> {
    pub file: &'a SourceFile,
    pub idx: &'a [usize],
}

impl<'a> SigView<'a> {
    pub fn new(file: &'a SourceFile) -> SigView<'a> {
        SigView { file, idx: file.sig() }
    }

    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// Text of the `i`-th significant token.
    pub fn text(&self, i: usize) -> &str {
        self.file.token_text(&self.file.tokens[self.idx[i]])
    }

    pub fn line(&self, i: usize) -> u32 {
        self.file.tokens[self.idx[i]].line
    }

    pub fn offset(&self, i: usize) -> usize {
        self.file.tokens[self.idx[i]].start
    }

    pub fn is_ident(&self, i: usize) -> bool {
        matches!(self.file.tokens[self.idx[i]].kind, crate::lexer::TokenKind::Ident)
    }

    pub fn kind(&self, i: usize) -> crate::lexer::TokenKind {
        self.file.tokens[self.idx[i]].kind
    }

    /// Whether significant tokens starting at `i` spell out `pattern`.
    /// The lexer emits punctuation one character per token, so a
    /// multi-character punctuation element such as `"::"` matches the
    /// corresponding run of single-character tokens.
    pub fn matches(&self, i: usize, pattern: &[&str]) -> bool {
        let mut k = i;
        for p in pattern {
            if Self::is_multi_punct(p) {
                for c in p.chars() {
                    if k >= self.len() || self.text(k) != c.to_string() {
                        return false;
                    }
                    k += 1;
                }
            } else {
                if k >= self.len() || self.text(k) != *p {
                    return false;
                }
                k += 1;
            }
        }
        true
    }

    /// How many significant tokens `pattern` spans when matched.
    pub fn width(pattern: &[&str]) -> usize {
        pattern
            .iter()
            .map(|p| if Self::is_multi_punct(p) { p.chars().count() } else { 1 })
            .sum()
    }

    fn is_multi_punct(p: &str) -> bool {
        p.len() > 1 && p.chars().all(|c| c.is_ascii_punctuation())
    }
}
