//! Panic-budget rule: per-crate ceilings on panic sites in serving-path
//! code.

use super::{Finding, Rule, SigView, Sink};
use crate::Workspace;

/// The checked-in budget table: serving-path crates and the maximum
/// number of panic sites (`unwrap()`, `expect(...)`, `panic!`,
/// `unreachable!`) allowed in their non-test `src/` code.
///
/// A query that panics kills its session worker; the serving path is
/// supposed to surface `PipelineError`/`ToolError` instead. The budgets
/// grandfather the sites that are genuine invariants (mutex-poisoning
/// propagation in the executor, "validated at registration" lookups) —
/// shrink them as sites are burned down; never raise them without a
/// written justification in the PR.
pub const BUDGETS: [(&str, usize); 6] = [
    // campaign runner: born clean — composition, ensembles and the
    // scorecard reduction all propagate errors; zero slack on purpose.
    ("campaign", 0),
    // telemetry: born clean — the trace recorder sits on every serving
    // path, so a panic here would take down otherwise-healthy queries;
    // zero slack on purpose.
    ("telemetry", 0),
    // fault-injection runtime: zero panic sites today; headroom of 2 for
    // genuine invariants only — injected faults must surface as
    // ToolError, never as panics.
    ("chaos", 2),
    // engine/session/orchestrator/ensemble serving core: the request
    // serializer, the ensemble scope-join slot, the curate-validated
    // registry lookup (PR 6 burned the partial_cmp unwraps down to
    // total_cmp).
    ("core", 3),
    // DAG executor: mutex-poisoning expects + the worker panic relay.
    ("workflow", 7),
    // tool runtime + scenario curation (curated-world expects).
    ("toolkit", 9),
];

/// `panic-budget`: counts panic sites per budgeted crate and reports
/// crates over their ceiling. Individual sites can be acknowledged with
/// `// conformance: allow(panic-budget, reason = "...")` — consumed
/// pragmas are reported to the [`Sink`] so the unused-pragma check
/// knows they earn their keep.
pub struct PanicBudget;

impl Rule for PanicBudget {
    fn id(&self) -> &'static str {
        "panic-budget"
    }

    fn description(&self) -> &'static str {
        "serving-path crates (campaign, telemetry, chaos, core, workflow, toolkit) \
         have per-crate ceilings on unwrap()/expect()/panic! sites; prefer \
         PipelineError/ToolError propagation"
    }

    fn check(&self, ws: &Workspace, sink: &mut Sink) {
        for (crate_dir, budget) in BUDGETS {
            let prefix = format!("crates/{crate_dir}/src/");
            let mut sites: Vec<(String, u32)> = Vec::new();
            for file in &ws.files {
                if !file.rel_path.starts_with(&prefix) {
                    continue;
                }
                let sig = SigView::new(file);
                for i in 0..sig.len() {
                    if !sig.is_ident(i) || file.is_test_code(sig.offset(i)) {
                        continue;
                    }
                    let is_site = match sig.text(i) {
                        "unwrap" | "expect" => sig.matches(i + 1, &["("]),
                        "panic" | "unreachable" => sig.matches(i + 1, &["!"]),
                        _ => false,
                    };
                    if !is_site {
                        continue;
                    }
                    if file.allowed(self.id(), sig.line(i)) {
                        sink.mark_allow_used(&file.rel_path, self.id(), sig.line(i));
                    } else {
                        sites.push((file.rel_path.clone(), sig.line(i)));
                    }
                }
            }
            if sites.len() > budget {
                let preview: Vec<String> = sites
                    .iter()
                    .take(3)
                    .map(|(f, l)| format!("{f}:{l}"))
                    .collect();
                sink.push(Finding {
                    rule: self.id(),
                    file: format!("crates/{crate_dir}"),
                    line: 0,
                    message: format!(
                        "crate `{crate_dir}`: {} panic sites in serving code exceed the \
                         budget of {budget} (first: {}); return errors or add a \
                         reasoned allow pragma",
                        sites.len(),
                        preview.join(", "),
                    ),
                    snippet: String::new(),
                });
            }
        }
    }
}
