//! Shared-mutation rule: no ambient mutable state in deterministic
//! crates.

use super::{finding_at, FileRule, Finding, SigView};
use crate::rules::determinism::DETERMINISTIC_CRATES;
use crate::source::SourceFile;

/// `no-shared-mutation`: in deterministic crates, non-test code must not
/// use
///
/// 1. `static mut` — ambient mutable state is a hidden input, and every
///    access is `unsafe` besides;
/// 2. `thread_local!` — per-thread state makes output a function of
///    *which worker* ran the code, breaking 1/2/8-worker invariance;
/// 3. `Ordering::Relaxed` — relaxed atomics let counter reads diverge
///    between runs and worker interleavings. Use `SeqCst` (these
///    counters are never hot enough to justify weaker orderings).
///
/// This extends `scoped-threads-only`: scoped sweeps guarantee the
/// *join* is deterministic; this rule keeps the state the shards share
/// deterministic too.
pub struct NoSharedMutation;

impl FileRule for NoSharedMutation {
    fn id(&self) -> &'static str {
        "no-shared-mutation"
    }

    fn description(&self) -> &'static str {
        "static mut, thread_local! and Ordering::Relaxed are banned in \
         deterministic crates; state must be an explicit input and atomics SeqCst"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !DETERMINISTIC_CRATES.contains(&file.crate_name()) {
            return;
        }
        let sig = SigView::new(file);
        for i in 0..sig.len() {
            if file.is_test_code(sig.offset(i)) {
                continue;
            }
            if sig.matches(i, &["static", "mut"]) {
                out.push(finding_at(
                    self.id(),
                    file,
                    sig.line(i),
                    "`static mut` is ambient mutable state — a hidden input to \
                     every function that touches it; pass state explicitly"
                        .to_string(),
                ));
            }
            if sig.matches(i, &["thread_local", "!"]) {
                out.push(finding_at(
                    self.id(),
                    file,
                    sig.line(i),
                    "`thread_local!` makes output depend on which worker ran the \
                     code, breaking 1/2/8-worker invariance; share state through \
                     explicit inputs or per-shard vectors"
                        .to_string(),
                ));
            }
            if sig.matches(i, &["Ordering", "::", "Relaxed"]) {
                out.push(finding_at(
                    self.id(),
                    file,
                    sig.line(i),
                    "`Ordering::Relaxed` lets atomic reads diverge between runs and \
                     interleavings; use SeqCst in deterministic crates"
                        .to_string(),
                ));
            }
        }
    }
}
