//! Paired-engines rule: the dense BGP routing engine and its retained
//! seed oracle must stay feature-paired.

use super::{Finding, Rule, SigView, Sink};
use crate::source::SourceFile;
use crate::syntax::ItemKind;
use crate::Workspace;

const ROUTING: &str = "crates/bgp-sim/src/routing.rs";
const EVENTS: &str = "crates/world/src/events.rs";

/// `paired-engines`: every `PolicyOverrides` field and `EventKind`
/// variant referenced by the dense engine in `routing.rs` must also be
/// referenced inside `routing::reference`, and vice versa.
///
/// The `dense_equivalence` suite only catches divergence *after* the
/// bug exists and a generator happens to hit it; this rule catches the
/// drift at the source level — a policy knob or control-plane event
/// consumed by one engine and silently ignored by the other.
pub struct PairedEngines;

impl Rule for PairedEngines {
    fn id(&self) -> &'static str {
        "paired-engines"
    }

    fn description(&self) -> &'static str {
        "PolicyOverrides fields and EventKind variants referenced by the dense \
         routing engine and routing::reference must match exactly"
    }

    fn check(&self, ws: &Workspace, sink: &mut Sink) {
        let Some(routing) = ws.file(ROUTING) else {
            sink.push(missing(self.id(), ROUTING, "the dense/reference routing engines"));
            return;
        };
        let Some(events) = ws.file(EVENTS) else {
            sink.push(missing(self.id(), EVENTS, "the EventKind declaration"));
            return;
        };

        let sig = SigView::new(routing);
        let mut tracked: Vec<String> = Vec::new();
        match struct_fields(routing, "PolicyOverrides") {
            Some(fields) => tracked.extend(fields),
            None => {
                sink.push(missing(self.id(), ROUTING, "the PolicyOverrides struct"));
                return;
            }
        }
        match enum_variants(events, "EventKind") {
            Some(variants) => tracked.extend(variants),
            None => {
                sink.push(missing(self.id(), EVENTS, "the EventKind enum"));
                return;
            }
        }

        // The item tree locates the retained oracle module directly.
        let Some(reference) = routing.tree.find(ItemKind::Mod, "reference") else {
            sink.push(missing(self.id(), ROUTING, "the routing::reference module"));
            return;
        };
        let (ref_start, ref_end) = (reference.start, reference.end);

        // First reference line per tracked name, per engine region.
        for name in tracked {
            let mut dense_line: Option<u32> = None;
            let mut reference_line: Option<u32> = None;
            for i in 0..sig.len() {
                if !sig.is_ident(i) || sig.text(i) != name {
                    continue;
                }
                let off = sig.offset(i);
                if routing.is_test_code(off) {
                    continue;
                }
                let slot = if off >= ref_start && off < ref_end {
                    &mut reference_line
                } else {
                    &mut dense_line
                };
                if slot.is_none() {
                    *slot = Some(sig.line(i));
                }
            }
            let (line, have, lack) = match (dense_line, reference_line) {
                (Some(l), None) => (l, "the dense engine", "routing::reference"),
                (None, Some(l)) => (l, "routing::reference", "the dense engine"),
                _ => continue,
            };
            sink.push(Finding {
                rule: self.id(),
                file: ROUTING.to_string(),
                line,
                message: format!(
                    "`{name}` is referenced by {have} but not by {lack}: the two \
                     engines must implement control-plane semantics in lockstep \
                     (dense_equivalence pins them byte-identical)"
                ),
                snippet: routing.line_text(line).to_string(),
            });
        }
    }
}

fn missing(rule: &'static str, file: &str, what: &str) -> Finding {
    Finding {
        rule,
        file: file.to_string(),
        line: 0,
        message: format!(
            "paired-engines could not locate {what} in `{file}` — if the engines \
             moved, update the rule to follow them"
        ),
        snippet: String::new(),
    }
}

/// Field names of `struct <name> { ... }`.
fn struct_fields(file: &SourceFile, name: &str) -> Option<Vec<String>> {
    let sig = SigView::new(file);
    let start = (0..sig.len())
        .find(|&i| sig.text(i) == "struct" && sig.matches(i + 1, &[name]))?;
    let open = (start..sig.len()).find(|&i| sig.text(i) == "{")?;
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i < sig.len() {
        match sig.text(i) {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            // An ident followed by a single `:` — `::` would mean the
            // ident is a path segment inside a field's type instead.
            _ if depth == 1
                && sig.is_ident(i)
                && sig.matches(i + 1, &[":"])
                && !sig.matches(i + 1, &["::"]) =>
            {
                fields.push(sig.text(i).to_string());
            }
            _ => {}
        }
        i += 1;
    }
    Some(fields)
}

/// Variant names of `enum <name> { ... }` (skipping attributes and the
/// contents of variant payloads).
fn enum_variants(file: &SourceFile, name: &str) -> Option<Vec<String>> {
    let sig = SigView::new(file);
    let start =
        (0..sig.len()).find(|&i| sig.text(i) == "enum" && sig.matches(i + 1, &[name]))?;
    let open = (start..sig.len()).find(|&i| sig.text(i) == "{")?;
    let mut variants = Vec::new();
    let mut depth = 0usize;
    let mut at_variant = false; // next depth-1 ident starts a variant
    let mut i = open;
    while i < sig.len() {
        match sig.text(i) {
            "{" | "(" | "[" => {
                if sig.text(i) == "{" && depth == 0 {
                    at_variant = true;
                }
                depth += 1;
            }
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => at_variant = true,
            "#" if depth == 1 => {} // attribute introducer
            _ if depth == 1 && at_variant && sig.is_ident(i) => {
                variants.push(sig.text(i).to_string());
                at_variant = false;
            }
            _ => {}
        }
        i += 1;
    }
    Some(variants)
}
