//! Concurrency-discipline rule: scoped threads only, and no
//! lock-and-push accumulation inside scoped sweeps.

use super::{finding_at, FileRule, Finding, SigView};
use crate::source::SourceFile;

/// `scoped-threads-only`:
///
/// 1. `thread::spawn` is banned everywhere — detached threads outlive
///    the data they borrow (forcing `'static` + `Arc` churn) and escape
///    the worker-count-invariance argument every parallel sweep in this
///    workspace is built on. `std::thread::scope` (whose `scope.spawn`
///    is fine) joins deterministically.
/// 2. Inside a file that uses scoped sweeps, accumulating results with
///    `shared.lock().push(...)` (or via `.unwrap()`/`.expect(...)`)
///    records them in *completion order* — a nondeterministic order.
///    Collect per-shard vectors and merge them in shard index order.
pub struct ScopedThreadsOnly;

impl FileRule for ScopedThreadsOnly {
    fn id(&self) -> &'static str {
        "scoped-threads-only"
    }

    fn description(&self) -> &'static str {
        "thread::spawn is banned (use std::thread::scope), and Mutex lock-and-push \
         accumulation inside scoped sweeps must be per-shard ordered merges"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let sig = SigView::new(file);
        let uses_scope =
            (0..sig.len()).any(|i| sig.matches(i, &["thread", "::", "scope"]));
        for i in 0..sig.len() {
            if file.is_test_code(sig.offset(i)) {
                continue;
            }
            // `thread::spawn` — but not `scope.spawn(...)`.
            if sig.matches(i, &["thread", "::", "spawn"]) {
                let spawn_ix = i + SigView::width(&["thread", "::"]);
                out.push(finding_at(
                    self.id(),
                    file,
                    sig.line(spawn_ix),
                    "`thread::spawn` detaches from the caller: use \
                     `std::thread::scope` so shards join deterministically"
                        .to_string(),
                ));
            }
            if uses_scope && lock_push_at(&sig, i) {
                out.push(finding_at(
                    self.id(),
                    file,
                    sig.line(i),
                    "Mutex lock-and-push accumulates in completion order inside a \
                     scoped sweep: collect per-shard and merge in shard order"
                        .to_string(),
                ));
            }
        }
    }
}

/// Matches `lock().push(`, `lock().unwrap().push(` and
/// `lock().expect("...").push(` starting at significant token `i`.
fn lock_push_at(sig: &SigView<'_>, i: usize) -> bool {
    if !sig.matches(i, &["lock", "(", ")"]) {
        return false;
    }
    let mut j = i + 3;
    if sig.matches(j, &[".", "unwrap", "(", ")"]) {
        j += 4;
    } else if sig.matches(j, &[".", "expect", "("]) {
        // Skip the expect argument to its closing paren.
        let mut depth = 0usize;
        let mut k = j + 2;
        while k < sig.len() {
            match sig.text(k) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        j = k + 1;
    }
    sig.matches(j, &[".", "push", "("])
}
