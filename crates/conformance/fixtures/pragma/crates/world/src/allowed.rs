//! Pragma fixture: an acknowledged violation with a reasoned allow.

// conformance: allow(no-unordered-iteration, reason = "built then drained in one expression; never iterated")
use std::collections::HashMap;

pub fn single_use(pairs: Vec<(u64, u64)>) -> usize {
    // conformance: allow(no-unordered-iteration, reason = "len() only; order never observed")
    let m: HashMap<u64, u64> = pairs.into_iter().collect();
    m.len()
}
