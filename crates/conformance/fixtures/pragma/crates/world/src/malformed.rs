//! Pragma fixture: a suppression that fails to parse must not
//! suppress anything — it is itself a finding.

// conformance: allow(no-unordered-iteration)
use std::collections::HashMap;

pub fn leaky(pairs: Vec<(u64, u64)>) -> usize {
    let m: HashMap<u64, u64> = pairs.into_iter().collect();
    m.len()
}
