//! Violating fixture: NaN-partial float comparison and a bare
//! float-to-int cast in a deterministic crate.

pub fn rank(xs: &mut Vec<(f64, u32)>) {
    xs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
}

pub fn bucket(intensity: f64) -> usize {
    (intensity * 8.0) as usize
}
