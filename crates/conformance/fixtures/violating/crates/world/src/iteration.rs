//! Violating fixture: unordered containers in a deterministic crate.

use std::collections::HashMap;

pub fn tally(items: &[(String, u32)]) -> Vec<(String, u32)> {
    let mut counts: HashMap<String, u32> = Default::default();
    for (k, v) in items {
        *counts.entry(k.clone()).or_default() += v;
    }
    // Iteration order here is nondeterministic.
    counts.into_iter().collect()
}

pub fn dedup(keys: &[u64]) -> usize {
    let set: std::collections::HashSet<u64> = keys.iter().copied().collect();
    set.len()
}

#[cfg(test)]
mod tests {
    // HashMap in test code is fine — determinism rules cover shipped
    // code paths only.
    use std::collections::HashMap;

    #[test]
    fn test_only_maps_are_exempt() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.is_empty());
    }
}
