//! Fixture EventKind declaration for the paired-engines rule.

#[derive(Debug, Clone)]
pub enum EventKind {
    CableFailure { cable: u32 },
    PrefixHijack { origin: u32, victim_prefix: u64 },
    RouteLeak { leaker: u32 },
}
