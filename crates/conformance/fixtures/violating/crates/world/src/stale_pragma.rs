//! Violating fixture: an allow pragma that suppresses nothing. Pragmas
//! are shrink-only, like the baseline — a dead one is itself a finding.

// conformance: allow(no-wall-clock, reason = "this helper never reads a clock")
pub fn idle() -> u64 {
    41 + 1
}
