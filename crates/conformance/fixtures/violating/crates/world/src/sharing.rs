//! Violating fixture: ambient shared mutation in a deterministic crate.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

pub static mut COUNTER: u64 = 0;

thread_local! {
    static SCRATCH: RefCell<Vec<u64>> = RefCell::new(Vec::new());
}

pub fn peek(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}
