//! Violating fixture: entropy-seeded randomness in the generator.

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    let _ = rng.next_u64();
    rand::random()
}
