//! Violating fixture: the dense engine grew a policy knob and an event
//! kind that `routing::reference` never learned about.

pub struct PolicyOverrides {
    pub leakers: Vec<u32>,
    /// Added to the dense engine only — the drift this rule exists for.
    pub drop_prefixes: bool,
}

pub fn compute(overrides: &PolicyOverrides) -> usize {
    let mut n = overrides.leakers.len();
    if overrides.drop_prefixes {
        n += 1;
    }
    // Dense engine consumes hijack events; reference ignores them.
    if hijack_active(EventKind::PrefixHijack { origin: 1, victim_prefix: 2 }) {
        n += 1;
    }
    n
}

pub enum EventKind {
    PrefixHijack { origin: u32, victim_prefix: u64 },
}

fn hijack_active(_e: EventKind) -> bool {
    false
}

pub mod reference {
    use super::PolicyOverrides;

    pub fn compute(overrides: &PolicyOverrides) -> usize {
        overrides.leakers.len()
    }
}
