//! Violating fixture: wall-clock reads in serving code.

pub fn stamp() -> u64 {
    let t = std::time::Instant::now();
    let _ = t.elapsed();
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
