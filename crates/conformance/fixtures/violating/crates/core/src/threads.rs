//! Violating fixture: detached threads and completion-order
//! accumulation inside a scoped sweep.

use std::sync::Mutex;

pub fn detached(work: Vec<u64>) {
    std::thread::spawn(move || {
        let _ = work.len();
    });
}

pub fn sweep(shards: &[Vec<u64>]) -> Vec<u64> {
    let results = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for shard in shards {
            scope.spawn(|| {
                let sum: u64 = shard.iter().sum();
                // Completion order, not shard order:
                results.lock().unwrap().push(sum);
            });
        }
    });
    results.into_inner().unwrap()
}
