//! Violating fixture: panic sites well past the serving-path budget.

pub fn brittle(input: &str) -> u64 {
    let first = input.split(',').next().unwrap();
    let parsed: u64 = first.parse().expect("numeric");
    if parsed == 0 {
        panic!("zero is not a valid id");
    }
    let doubled = parsed.checked_mul(2).unwrap();
    let tripled = parsed.checked_mul(3).unwrap();
    match doubled.checked_add(tripled) {
        Some(v) => v,
        None => unreachable!("bounded above"),
    }
}
