//! Clean fixture: all randomness flows from an explicit seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn jitter(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.next_u64()
}
