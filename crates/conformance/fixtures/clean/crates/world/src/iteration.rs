//! Clean fixture: ordered containers, deterministic iteration.

use std::collections::{BTreeMap, BTreeSet};

pub fn tally(items: &[(String, u32)]) -> Vec<(String, u32)> {
    let mut counts: BTreeMap<String, u32> = BTreeMap::new();
    for (k, v) in items {
        *counts.entry(k.clone()).or_default() += v;
    }
    counts.into_iter().collect()
}

pub fn dedup(keys: &[u64]) -> usize {
    let set: BTreeSet<u64> = keys.iter().copied().collect();
    set.len()
}
