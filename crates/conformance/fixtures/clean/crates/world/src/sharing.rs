//! Clean fixture: shared state behind sequentially-consistent atomics
//! and build-once slots — no ambient mutation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

pub static GENERATIONS: AtomicU64 = AtomicU64::new(0);

pub fn bump() -> u64 {
    GENERATIONS.fetch_add(1, Ordering::SeqCst)
}

pub fn table() -> &'static Vec<u64> {
    static TABLE: OnceLock<Vec<u64>> = OnceLock::new();
    TABLE.get_or_init(|| vec![1, 2, 3])
}
