//! Clean fixture: total-ordered float comparison, explicitly rounded
//! casts, and test-only float code the rule must not flag.

pub fn rank(xs: &mut Vec<(f64, u32)>) {
    xs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
}

pub fn bucket(intensity: f64) -> usize {
    (intensity * 8.0).trunc() as usize
}

pub fn nearest_hour(t: f64) -> i64 {
    t.round() as i64
}

#[cfg(test)]
mod tests {
    #[test]
    fn partial_order_is_fine_in_tests() {
        assert_eq!(1.0_f64.partial_cmp(&2.0), Some(std::cmp::Ordering::Less));
        assert_eq!((2.9_f64) as usize, 2);
    }
}
