//! Clean fixture: time is an explicit input, never sampled.

pub struct SimTime(pub i64);

pub fn stamp(now: SimTime) -> i64 {
    now.0
}

#[cfg(test)]
mod tests {
    // Wall-clock reads in test code (timeouts, perf guards) are exempt.
    #[test]
    fn timing_in_tests_is_fine() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs() < 60);
    }
}
