//! Clean fixture: scoped sweep with a per-shard ordered merge.

pub fn sweep(shards: &[Vec<u64>]) -> Vec<u64> {
    let mut results: Vec<Option<u64>> = vec![None; shards.len()];
    std::thread::scope(|scope| {
        for (slot, shard) in results.iter_mut().zip(shards) {
            scope.spawn(move || {
                *slot = Some(shard.iter().sum());
            });
        }
    });
    // Shard index order, independent of completion order.
    results.into_iter().flatten().collect()
}
