//! Clean fixture: errors propagate; the lone invariant expect is within
//! budget.

pub fn robust(input: &str) -> Result<u64, String> {
    let first = input.split(',').next().expect("split yields at least one item");
    first.parse().map_err(|e| format!("{first}: {e:?}"))
}
