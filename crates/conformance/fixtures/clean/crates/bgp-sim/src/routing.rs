//! Clean fixture: dense and reference engines reference the same
//! policy surface.

pub struct PolicyOverrides {
    pub leakers: Vec<u32>,
}

pub fn compute(overrides: &PolicyOverrides) -> usize {
    overrides.leakers.len()
}

pub mod reference {
    use super::PolicyOverrides;

    pub fn compute(overrides: &PolicyOverrides) -> usize {
        overrides.leakers.iter().count()
    }
}
