//! Token-rule-clean source for the manifest-layer fixture.

pub fn triple(x: u64) -> u64 {
    x * 3
}
