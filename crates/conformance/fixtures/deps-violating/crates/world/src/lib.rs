//! Token-rule-clean source: this fixture tree violates only at the
//! manifest layer.

pub fn double(x: u64) -> u64 {
    x * 2
}
