//! Campaign determinism: the scorecard and the provenance records a
//! campaign produces are **byte-identical** at 1, 2 and 8 workers, and
//! across same-seed reruns — with and without a fault plan installed.
//!
//! Outcome payloads are compared structurally (`CampaignReport` is
//! `PartialEq` all the way down) *and* through their serialized JSON
//! bytes, so a formatting-level divergence (float canonicalization, map
//! ordering) cannot hide behind a passing structural comparison.

use std::sync::Arc;

use campaign::{
    CampaignFamily, CampaignReport, CampaignRunner, CampaignSpec, ComposedFamily, EnsembleSpec,
    Family, FamilyParams,
};
use arachnet::{DeterministicExpertModel, Engine, FaultKind, FaultPlan};
use proptest::prelude::*;

const QUERIES: [&str; 2] = [
    "Multiple origin ASes were observed announcing the same prefixes starting two days \
     ago. Determine whether a prefix hijack or a route leak caused this, and identify \
     the offending AS.",
    "Which countries lose the most reachability under the current incident timeline?",
];

/// Every family a campaign can sweep, base and composed.
fn family_pool() -> Vec<CampaignFamily> {
    let mut pool: Vec<CampaignFamily> =
        Family::ALL.iter().copied().map(CampaignFamily::Base).collect();
    pool.extend(ComposedFamily::ALL.iter().copied().map(CampaignFamily::Composed));
    pool
}

/// An arbitrary small campaign spec: 1–2 ensembles over arbitrary
/// families, seeds and sweep widths, posing 1–2 queries.
fn arbitrary_spec() -> impl Strategy<Value = CampaignSpec> {
    (
        proptest::collection::vec((any::<u8>(), any::<u32>(), 1usize..=2), 1..=2),
        1usize..=2,
    )
        .prop_map(|(ensembles, nqueries)| {
            let pool = family_pool();
            let ensembles = ensembles
                .into_iter()
                .map(|(pick, seed, draws)| {
                    let family = pool[pick as usize % pool.len()];
                    let params =
                        FamilyParams { seed: seed as u64, variants: 1, ..FamilyParams::default() };
                    EnsembleSpec::new(family, params).with_draws(draws)
                })
                .collect();
            let queries = QUERIES[..nqueries].iter().map(|q| q.to_string()).collect();
            CampaignSpec::new(ensembles, queries)
        })
}

/// Runs `spec` on a fresh engine with `workers` campaign workers,
/// optionally with a fault plan installed.
fn run(spec: &CampaignSpec, workers: usize, plan: Option<FaultPlan>) -> CampaignReport {
    let mut engine =
        Engine::new(Arc::new(DeterministicExpertModel::new()), toolkit::standard_registry());
    if let Some(plan) = plan {
        engine = engine.with_fault_plan(plan);
    }
    CampaignRunner::new(&engine).with_workers(workers).run(spec)
}

/// The serialized identity of a report: scorecard JSON plus every
/// provenance record's JSON, in task order.
fn report_bytes(report: &CampaignReport) -> String {
    let mut out = serde_json::to_string(&report.scorecard).expect("scorecard serializes");
    for outcome in &report.outcomes {
        out.push('\n');
        out.push_str(&serde_json::to_string(&outcome.provenance).expect("record serializes"));
    }
    out
}

fn assert_identical(a: &CampaignReport, b: &CampaignReport, what: &str) {
    assert_eq!(a.outcomes, b.outcomes, "{what}: outcomes diverged");
    assert_eq!(a.scorecard, b.scorecard, "{what}: scorecard diverged");
    assert_eq!(a.registration, b.registration, "{what}: registration diverged");
    assert_eq!(report_bytes(a), report_bytes(b), "{what}: serialized bytes diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Scorecards and provenance are worker-count invariant and rerun
    /// stable on arbitrary specs.
    #[test]
    fn campaigns_are_worker_invariant_and_rerun_stable(spec in arbitrary_spec()) {
        let base = run(&spec, 1, None);
        prop_assert!(base.scorecard.queries > 0, "spec expands to at least one task");
        for workers in [2usize, 8] {
            let other = run(&spec, workers, None);
            assert_identical(&base, &other, &format!("{workers} workers"));
        }
        let rerun = run(&spec, 1, None);
        assert_identical(&base, &rerun, "same-seed rerun");
    }

    /// The same invariance holds with a fault plan injecting persistent
    /// detector outages — degraded runs replay exactly, and every
    /// provenance record carries the plan's seed.
    #[test]
    fn faulted_campaigns_replay_bit_identically(spec in arbitrary_spec(), seed in any::<u64>()) {
        let plan = || {
            FaultPlan::new(seed).with_fault("bgp.valley_violations", FaultKind::Persistent)
        };
        let base = run(&spec, 1, Some(plan()));
        for workers in [2usize, 8] {
            let other = run(&spec, workers, Some(plan()));
            assert_identical(&base, &other, &format!("faulted, {workers} workers"));
        }
        let rerun = run(&spec, 1, Some(plan()));
        assert_identical(&base, &rerun, "faulted same-seed rerun");
        for outcome in &base.outcomes {
            prop_assert_eq!(outcome.provenance.fault_seed, Some(seed));
        }
    }
}
