//! The resilience scorecard: what a campaign's thousands of runs reduce
//! to.

use arachnet::RegistrationStats;
use serde::{Deserialize, Serialize};
use telemetry::{MetricsRegistry, MetricsSnapshot};
use toolkit::QueryMetrics;
use workflow::RunHealth;

use crate::ensemble::Distribution;

/// Aggregate health, detection and impact over every query a campaign
/// served. Built by folding outcomes in task order (a deterministic
/// order at any worker count), with distributions summarized through
/// `total_cmp` — the scorecard is bit-identical across reruns.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResilienceScorecard {
    /// Total queries served (ok + degraded + failed).
    pub queries: usize,
    /// Runs whose every step succeeded.
    pub ok: usize,
    /// Runs degraded by non-critical failures (surviving outputs are
    /// trustworthy; see `workflow::RunHealth`).
    pub degraded: usize,
    /// Runs that failed outright (a critical step died, or the session
    /// itself errored).
    pub failed: usize,
    /// `degraded / queries` (0.0 for an empty campaign).
    pub degraded_rate: f64,
    /// `failed / queries`.
    pub failed_rate: f64,
    /// Queries where at least one detector surfaced evidence.
    pub detector_hits: usize,
    /// `detector_hits / queries`.
    pub detector_hit_rate: f64,
    /// Transient-failure retries spent across all runs.
    pub retries: usize,
    /// Distribution of per-query impact scores.
    pub impact: Distribution,
}

/// Incremental scorecard accumulation (fold in task order, then
/// [`ScorecardBuilder::finish`]).
#[derive(Debug, Default)]
pub struct ScorecardBuilder {
    ok: usize,
    degraded: usize,
    failed: usize,
    detector_hits: usize,
    retries: usize,
    backoff_ticks: u64,
    impacts: Vec<f64>,
}

impl ScorecardBuilder {
    pub fn record(&mut self, health: &RunHealth, metrics: &QueryMetrics, retries: usize) {
        self.record_run(health, metrics, retries, 0);
    }

    /// Folds one query outcome, including the logical backoff ticks its
    /// retries spent (those feed the campaign metrics snapshot, not the
    /// scorecard itself).
    pub fn record_run(
        &mut self,
        health: &RunHealth,
        metrics: &QueryMetrics,
        retries: usize,
        backoff_ticks: u64,
    ) {
        match health {
            RunHealth::Ok => self.ok += 1,
            RunHealth::Degraded { .. } => self.degraded += 1,
            RunHealth::Failed { .. } => self.failed += 1,
        }
        if metrics.detector_hit() {
            self.detector_hits += 1;
        }
        self.retries += retries;
        self.backoff_ticks = self.backoff_ticks.saturating_add(backoff_ticks);
        self.impacts.push(metrics.impact_score);
    }

    /// Finishes the fold and derives the campaign-level metrics snapshot
    /// from the finished card plus the campaign's registration counters —
    /// the snapshot and the scorecard agree by construction.
    pub fn finish_with_metrics(
        self,
        registration: &RegistrationStats,
    ) -> (ResilienceScorecard, MetricsSnapshot) {
        let backoff_ticks = self.backoff_ticks;
        let card = self.finish();
        let mut metrics = MetricsRegistry::new();
        metrics.add("campaign.queries", card.queries as u64);
        metrics.add("campaign.ok", card.ok as u64);
        metrics.add("campaign.degraded", card.degraded as u64);
        metrics.add("campaign.failed", card.failed as u64);
        metrics.add("campaign.detector_hits", card.detector_hits as u64);
        metrics.add("campaign.retries", card.retries as u64);
        metrics.add("campaign.backoff_ticks", backoff_ticks);
        metrics.add("registration.registered", registration.registered as u64);
        metrics.add("registration.fresh", registration.fresh as u64);
        metrics.add("registration.kept_existing", registration.kept_existing as u64);
        metrics.add("registration.mismatched", registration.mismatched as u64);
        (card, metrics.snapshot())
    }

    pub fn finish(self) -> ResilienceScorecard {
        let queries = self.ok + self.degraded + self.failed;
        let rate = |n: usize| if queries == 0 { 0.0 } else { n as f64 / queries as f64 };
        ResilienceScorecard {
            queries,
            ok: self.ok,
            degraded: self.degraded,
            failed: self.failed,
            degraded_rate: rate(self.degraded),
            failed_rate: rate(self.failed),
            detector_hits: self.detector_hits,
            detector_hit_rate: rate(self.detector_hits),
            retries: self.retries,
            impact: Distribution::of(&self.impacts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workflow::StepId;

    #[test]
    fn scorecard_folds_health_and_detections() {
        let mut builder = ScorecardBuilder::default();
        let hit = QueryMetrics { moas_conflicts: 2, ..QueryMetrics::default() };
        let miss = QueryMetrics { impact_score: 1.5, ..QueryMetrics::default() };
        builder.record(&RunHealth::Ok, &hit, 0);
        builder.record(
            &RunHealth::Degraded { failed_steps: vec![StepId::from("s")] },
            &miss,
            2,
        );
        builder.record(&RunHealth::Failed { failed_steps: vec![] }, &miss, 1);
        let card = builder.finish();
        assert_eq!(card.queries, 3);
        assert_eq!((card.ok, card.degraded, card.failed), (1, 1, 1));
        assert_eq!(card.detector_hits, 1);
        assert_eq!(card.retries, 3);
        assert!((card.degraded_rate - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(card.impact.count, 3);
        assert_eq!(card.impact.max, 1.5);
    }

    #[test]
    fn empty_scorecard_has_zero_rates() {
        let card = ScorecardBuilder::default().finish();
        assert_eq!(card, ResilienceScorecard::default());
    }

    #[test]
    fn metrics_snapshot_mirrors_the_finished_card() {
        let mut builder = ScorecardBuilder::default();
        let hit = QueryMetrics { moas_conflicts: 1, ..QueryMetrics::default() };
        builder.record_run(&RunHealth::Ok, &hit, 2, 5);
        builder.record_run(
            &RunHealth::Degraded { failed_steps: vec![StepId::from("s")] },
            &QueryMetrics::default(),
            1,
            3,
        );
        let registration = RegistrationStats {
            registered: 4,
            fresh: 3,
            kept_existing: 1,
            mismatched: 0,
        };
        let (card, metrics) = builder.finish_with_metrics(&registration);
        assert_eq!(metrics.counter("campaign.queries"), card.queries as u64);
        assert_eq!(metrics.counter("campaign.ok"), 1);
        assert_eq!(metrics.counter("campaign.degraded"), 1);
        assert_eq!(metrics.counter("campaign.failed"), 0);
        assert_eq!(metrics.counter("campaign.detector_hits"), 1);
        assert_eq!(metrics.counter("campaign.retries"), 3);
        assert_eq!(metrics.counter("campaign.backoff_ticks"), 8);
        assert_eq!(metrics.counter("registration.registered"), 4);
        assert_eq!(metrics.counter("registration.fresh"), 3);
        assert_eq!(metrics.counter("registration.kept_existing"), 1);
        assert_eq!(metrics.counter("registration.mismatched"), 0);
    }
}
