//! The resilience scorecard: what a campaign's thousands of runs reduce
//! to.

use serde::{Deserialize, Serialize};
use toolkit::QueryMetrics;
use workflow::RunHealth;

use crate::ensemble::Distribution;

/// Aggregate health, detection and impact over every query a campaign
/// served. Built by folding outcomes in task order (a deterministic
/// order at any worker count), with distributions summarized through
/// `total_cmp` — the scorecard is bit-identical across reruns.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResilienceScorecard {
    /// Total queries served (ok + degraded + failed).
    pub queries: usize,
    /// Runs whose every step succeeded.
    pub ok: usize,
    /// Runs degraded by non-critical failures (surviving outputs are
    /// trustworthy; see `workflow::RunHealth`).
    pub degraded: usize,
    /// Runs that failed outright (a critical step died, or the session
    /// itself errored).
    pub failed: usize,
    /// `degraded / queries` (0.0 for an empty campaign).
    pub degraded_rate: f64,
    /// `failed / queries`.
    pub failed_rate: f64,
    /// Queries where at least one detector surfaced evidence.
    pub detector_hits: usize,
    /// `detector_hits / queries`.
    pub detector_hit_rate: f64,
    /// Transient-failure retries spent across all runs.
    pub retries: usize,
    /// Distribution of per-query impact scores.
    pub impact: Distribution,
}

/// Incremental scorecard accumulation (fold in task order, then
/// [`ScorecardBuilder::finish`]).
#[derive(Debug, Default)]
pub struct ScorecardBuilder {
    ok: usize,
    degraded: usize,
    failed: usize,
    detector_hits: usize,
    retries: usize,
    impacts: Vec<f64>,
}

impl ScorecardBuilder {
    pub fn record(&mut self, health: &RunHealth, metrics: &QueryMetrics, retries: usize) {
        match health {
            RunHealth::Ok => self.ok += 1,
            RunHealth::Degraded { .. } => self.degraded += 1,
            RunHealth::Failed { .. } => self.failed += 1,
        }
        if metrics.detector_hit() {
            self.detector_hits += 1;
        }
        self.retries += retries;
        self.impacts.push(metrics.impact_score);
    }

    pub fn finish(self) -> ResilienceScorecard {
        let queries = self.ok + self.degraded + self.failed;
        let rate = |n: usize| if queries == 0 { 0.0 } else { n as f64 / queries as f64 };
        ResilienceScorecard {
            queries,
            ok: self.ok,
            degraded: self.degraded,
            failed: self.failed,
            degraded_rate: rate(self.degraded),
            failed_rate: rate(self.failed),
            detector_hits: self.detector_hits,
            detector_hit_rate: rate(self.detector_hits),
            retries: self.retries,
            impact: Distribution::of(&self.impacts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workflow::StepId;

    #[test]
    fn scorecard_folds_health_and_detections() {
        let mut builder = ScorecardBuilder::default();
        let hit = QueryMetrics { moas_conflicts: 2, ..QueryMetrics::default() };
        let miss = QueryMetrics { impact_score: 1.5, ..QueryMetrics::default() };
        builder.record(&RunHealth::Ok, &hit, 0);
        builder.record(
            &RunHealth::Degraded { failed_steps: vec![StepId::from("s")] },
            &miss,
            2,
        );
        builder.record(&RunHealth::Failed { failed_steps: vec![] }, &miss, 1);
        let card = builder.finish();
        assert_eq!(card.queries, 3);
        assert_eq!((card.ok, card.degraded, card.failed), (1, 1, 1));
        assert_eq!(card.detector_hits, 1);
        assert_eq!(card.retries, 3);
        assert!((card.degraded_rate - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(card.impact.count, 3);
        assert_eq!(card.impact.max, 1.5);
    }

    #[test]
    fn empty_scorecard_has_zero_rates() {
        let card = ScorecardBuilder::default().finish();
        assert_eq!(card, ResilienceScorecard::default());
    }
}
