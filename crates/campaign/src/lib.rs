//! # campaign — fleet-scale measurement studies with provenance
//!
//! The paper's end state is an agent that runs *broad automated
//! measurement studies*, not single incidents. This crate is that
//! breadth layer over the serving engine, in three pieces:
//!
//! * **Composition** ([`compose`]) — a [`ComposedFamily`] merges several
//!   [`scenario_forge::Family`] expansions into one scenario carrying
//!   *interacting* incidents (a targeted prefix hijack live while a
//!   cable-cut cascade reconverges; a censorship cut joined by an
//!   accidental transit leak). Scripts merge through
//!   [`scenario_forge::compose`] in a canonical content-determined
//!   order — no map iteration, no insertion-order dependence.
//! * **Ensembles** ([`ensemble`]) — an [`EnsembleSpec`] sweeps a family
//!   over Monte Carlo seed draws ([`FamilyParams::reseed`]) and
//!   aggregates per-query numbers into [`Distribution`]s (percentiles
//!   via `total_cmp`, never `partial_cmp().unwrap()`).
//! * **Runner** ([`runner`]) — a [`CampaignRunner`] expands, registers
//!   and serves thousands of scenario-queries through the engine's
//!   concurrent session pool (worlds deduplicated through the shared
//!   content-addressed cache), reduces every [`arachnet::SessionRun`]
//!   into a [`ResilienceScorecard`], and stamps each result with a
//!   [`ProvenanceRecord`] — scenario content hash, registry epoch,
//!   family id + params hash, fault-plan seed — so a campaign output is
//!   a reproducible artifact, not a number of unknown pedigree.
//!
//! Everything here is deterministic in the campaign spec: byte-identical
//! outcomes, scorecards and provenance at any worker count, with or
//! without a [`chaos::FaultPlan`] installed (the campaign determinism
//! suite pins exactly that at 1/2/8 workers).

pub mod compose;
pub mod ensemble;
pub mod provenance;
pub mod runner;
pub mod scorecard;

pub use compose::ComposedFamily;
pub use ensemble::{CampaignFamily, Distribution, EnsembleDraw, EnsembleSpec};
pub use provenance::ProvenanceRecord;
pub use runner::{CampaignReport, CampaignRunner, CampaignSpec, QueryOutcome};
pub use scorecard::ResilienceScorecard;

// The forge surface campaigns parameterize over, re-exported so a
// campaign definition needs one import.
pub use scenario_forge::{Family, FamilyParams};
