//! The campaign runner: thousands of scenario-queries through the
//! engine's session pool, reduced to a scorecard with provenance.
//!
//! Determinism is the design constraint everything here bends around.
//! The task list is built in spec order (ensembles → draws → fleet
//! order → queries), each worker owns a *contiguous pre-assigned slice*
//! of result slots (`chunks_mut`, not lock-and-push — completion order
//! never leaks into the output), and the scorecard folds the outcomes
//! in task order afterwards. The same spec therefore produces
//! byte-identical outcomes, scorecards and provenance records at 1, 2
//! or 8 workers, with or without a fault plan installed.

use std::sync::Arc;

use arachnet::{Engine, PipelineError, RegistrationStats};
use telemetry::{MetricsSnapshot, Recorder};
use toolkit::QueryMetrics;
use workflow::RunHealth;
use world::Scenario;

use crate::ensemble::EnsembleSpec;
use crate::provenance::{str_words, ProvenanceRecord};
use crate::scorecard::{ResilienceScorecard, ScorecardBuilder};

/// A complete campaign: which ensembles to expand and which queries to
/// pose against every expanded scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    pub ensembles: Vec<EnsembleSpec>,
    /// Every query is served once per registered scenario.
    pub queries: Vec<String>,
}

impl CampaignSpec {
    pub fn new(ensembles: Vec<EnsembleSpec>, queries: Vec<String>) -> CampaignSpec {
        CampaignSpec { ensembles, queries }
    }
}

/// One served scenario-query with its reduction and provenance stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    pub provenance: ProvenanceRecord,
    pub query: String,
    pub health: RunHealth,
    pub metrics: QueryMetrics,
    /// Transient-failure retries this run spent.
    pub retries: usize,
    /// Logical backoff ticks those retries accumulated.
    pub backoff_ticks: u64,
    /// Content hash of this run's deterministic trace, when the campaign
    /// ran with [`CampaignRunner::with_tracing`] — equal hashes mean
    /// byte-identical traces.
    pub trace_hash: Option<u64>,
    /// The pipeline error, when the session could not serve the query at
    /// all (such outcomes count as `Failed` in the scorecard).
    pub error: Option<String>,
}

/// Everything a campaign returns: per-query outcomes (in deterministic
/// task order), the scorecard reduction, and the registration counters
/// this campaign contributed to the engine's fleet stats.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    pub outcomes: Vec<QueryOutcome>,
    pub scorecard: ResilienceScorecard,
    /// Registration outcomes for this campaign's fleet (a nonzero
    /// `mismatched` means the spec's keys collided with different
    /// timelines already registered on the engine).
    pub registration: RegistrationStats,
    /// Campaign-level metrics snapshot: `campaign.*` counters derived
    /// from the scorecard fold plus `registration.*` counters — one fold,
    /// deterministic at any worker count.
    pub metrics: MetricsSnapshot,
}

impl CampaignReport {
    /// The provenance identities of every outcome, in task order —
    /// what the determinism suite compares across worker counts.
    pub fn provenance_hashes(&self) -> Vec<u64> {
        self.outcomes.iter().map(|o| o.provenance.content_hash()).collect()
    }
}

/// One unit of work: a registered scenario times a query.
struct Task {
    key: String,
    query: String,
    family: &'static str,
    params_hash: u64,
    draw: u64,
    scenario: Arc<Scenario>,
}

/// Executes campaigns against a borrowed engine.
pub struct CampaignRunner<'a> {
    engine: &'a Engine,
    workers: usize,
    tracing: bool,
}

impl<'a> CampaignRunner<'a> {
    pub fn new(engine: &'a Engine) -> CampaignRunner<'a> {
        CampaignRunner { engine, workers: workflow::exec::default_workers(), tracing: false }
    }

    /// Overrides the campaign-level worker count (each worker serves its
    /// own slice of the task list through its own sessions).
    pub fn with_workers(mut self, workers: usize) -> CampaignRunner<'a> {
        self.workers = workers.max(1);
        self
    }

    /// Enables per-query tracing: every task gets its own fresh
    /// [`telemetry::Recorder`], and each outcome (and its provenance
    /// stamp) carries the resulting trace content hash.
    pub fn with_tracing(mut self, tracing: bool) -> CampaignRunner<'a> {
        self.tracing = tracing;
        self
    }

    /// Expands, registers and serves the whole campaign.
    ///
    /// Registration happens first, serially, in spec order: worlds
    /// generate through the engine's shared content-addressed cache
    /// (draws that share a config share one `Arc<World>`), and every
    /// scenario registers under `"<family>/d<draw>/<variant>"`. The
    /// task list is then served across the worker pool.
    pub fn run(&self, spec: &CampaignSpec) -> CampaignReport {
        let before = self.engine.registration_stats();
        let mut tasks: Vec<Task> = Vec::new();
        for ensemble in &spec.ensembles {
            let family = ensemble.family.id();
            for draw in ensemble.expand() {
                let prefix = format!("{family}/d{}", draw.draw);
                let params_hash = draw.params.content_hash();
                let fleet = self.engine.register_blueprints(&prefix, &draw.blueprints);
                for registered in fleet {
                    for query in &spec.queries {
                        tasks.push(Task {
                            key: registered.key.clone(),
                            query: query.clone(),
                            family,
                            params_hash,
                            draw: draw.draw,
                            scenario: Arc::clone(&registered.scenario),
                        });
                    }
                }
            }
        }
        let registration = delta(self.engine.registration_stats(), before);

        let outcomes = self.serve(&tasks);
        let mut builder = ScorecardBuilder::default();
        for outcome in &outcomes {
            builder.record_run(
                &outcome.health,
                &outcome.metrics,
                outcome.retries,
                outcome.backoff_ticks,
            );
        }
        let (scorecard, metrics) = builder.finish_with_metrics(&registration);
        CampaignReport { outcomes, scorecard, registration, metrics }
    }

    /// Serves the task list across the worker pool: slot `i` holds task
    /// `i`'s outcome regardless of which worker ran it or when.
    fn serve(&self, tasks: &[Task]) -> Vec<QueryOutcome> {
        let mut slots: Vec<Option<QueryOutcome>> = Vec::new();
        slots.resize_with(tasks.len(), || None);
        if tasks.is_empty() {
            return Vec::new();
        }
        let chunk = tasks.len().div_ceil(self.workers);
        std::thread::scope(|scope| {
            for (task_chunk, slot_chunk) in tasks.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (task, slot) in task_chunk.iter().zip(slot_chunk.iter_mut()) {
                        *slot = Some(self.execute(task));
                    }
                });
            }
        });
        slots.into_iter().flatten().collect()
    }

    /// Serves one task through its own engine session. With tracing
    /// enabled the task gets a fresh recorder, so its trace covers
    /// exactly this session span and hashes independently of whichever
    /// worker (or neighbor task) ran first.
    fn execute(&self, task: &Task) -> QueryOutcome {
        let fault_seed = self.engine.fault_plan().map(|plan| plan.seed);
        let recorder = if self.tracing { Some(Arc::new(Recorder::new())) } else { None };
        let scenario = &task.scenario;
        let provenance = |epoch: u64, trace_hash: Option<u64>| ProvenanceRecord {
            scenario_key: task.key.clone(),
            scenario_hash: scenario.content_hash(),
            world_hash: scenario.world.config.content_hash(),
            registry_epoch: epoch,
            family: task.family.to_string(),
            params_hash: task.params_hash,
            draw: task.draw,
            fault_seed,
            query_hash: str_words(&task.query),
            trace_hash,
        };
        let failed = |epoch: u64, error: PipelineError, trace_hash: Option<u64>| QueryOutcome {
            provenance: provenance(epoch, trace_hash),
            query: task.query.clone(),
            health: RunHealth::Failed { failed_steps: Vec::new() },
            metrics: QueryMetrics::default(),
            retries: 0,
            backoff_ticks: 0,
            trace_hash,
            error: Some(error.to_string()),
        };
        let trace_of = |recorder: &Option<Arc<Recorder>>| {
            recorder.as_ref().map(|r| r.trace_hash())
        };
        let session = match self.engine.session(&task.key) {
            Ok(session) => match &recorder {
                Some(rec) => session.with_recorder(Arc::clone(rec)),
                None => session,
            },
            Err(e) => {
                let trace_hash = trace_of(&recorder);
                return failed(self.engine.epoch().sequence, e, trace_hash);
            }
        };
        let epoch = session.epoch_sequence();
        let horizon_days =
            (scenario.horizon.duration().as_seconds() / 86_400).max(1);
        let context = toolkit::query_context(&scenario.world, scenario.now, horizon_days);
        match session.run(&task.query, &context) {
            Ok(run) => {
                let trace_hash = trace_of(&recorder);
                QueryOutcome {
                    provenance: provenance(epoch, trace_hash),
                    query: task.query.clone(),
                    metrics: QueryMetrics::extract(&run.solution.workflow, &run.report),
                    retries: run.report.retries,
                    backoff_ticks: run.report.backoff_ticks,
                    health: run.health,
                    trace_hash,
                    error: None,
                }
            }
            Err(e) => {
                let trace_hash = trace_of(&recorder);
                failed(epoch, e, trace_hash)
            }
        }
    }
}

/// Counter delta between two registration-stat snapshots.
fn delta(after: RegistrationStats, before: RegistrationStats) -> RegistrationStats {
    RegistrationStats {
        registered: after.registered.saturating_sub(before.registered),
        fresh: after.fresh.saturating_sub(before.fresh),
        kept_existing: after.kept_existing.saturating_sub(before.kept_existing),
        mismatched: after.mismatched.saturating_sub(before.mismatched),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::ComposedFamily;
    use crate::ensemble::CampaignFamily;
    use arachnet::DeterministicExpertModel;
    use scenario_forge::{Family, FamilyParams};

    const FORENSICS_QUERY: &str =
        "Multiple origin ASes were observed announcing the same prefixes starting two \
         days ago. Determine whether a prefix hijack or a route leak caused this, and \
         identify the offending AS.";

    fn engine() -> Engine {
        Engine::new(Arc::new(DeterministicExpertModel::new()), toolkit::standard_registry())
    }

    fn small_spec() -> CampaignSpec {
        let params = FamilyParams { variants: 1, ..FamilyParams::default() };
        CampaignSpec::new(
            vec![
                EnsembleSpec::new(Family::TargetedPrefixHijack, params.clone()),
                EnsembleSpec::new(
                    CampaignFamily::Composed(ComposedFamily::HijackDuringCascade),
                    params,
                ),
            ],
            vec![FORENSICS_QUERY.to_string()],
        )
    }

    #[test]
    fn campaign_serves_and_reduces() {
        let engine = engine();
        let report = CampaignRunner::new(&engine).with_workers(2).run(&small_spec());
        assert_eq!(report.outcomes.len(), 2, "2 scenarios × 1 query");
        assert_eq!(report.scorecard.queries, 2);
        assert_eq!(report.scorecard.failed, 0, "outcomes: {:?}", report.outcomes);
        assert_eq!(report.registration.fresh, 2);
        assert_eq!(report.registration.mismatched, 0);
        for outcome in &report.outcomes {
            assert!(outcome.error.is_none());
            assert!(outcome.metrics.detector_hit(), "hijack campaigns detect");
            assert_eq!(outcome.provenance.registry_epoch, 0);
            assert_eq!(outcome.provenance.fault_seed, None);
            assert!(outcome.provenance.scenario_key.contains("/d0/"));
        }
        // The two ensembles share the default seed's base config: one world.
        assert_eq!(engine.world_cache().generations(), 1);
    }

    #[test]
    fn rerunning_the_same_spec_is_idempotent_and_byte_identical() {
        let engine = engine();
        let runner = CampaignRunner::new(&engine);
        let first = runner.run(&small_spec());
        let second = runner.run(&small_spec());
        assert_eq!(first.outcomes, second.outcomes);
        assert_eq!(first.scorecard, second.scorecard);
        // Second pass re-registers the same timelines: kept, matched.
        assert_eq!(second.registration.fresh, 0);
        assert_eq!(second.registration.kept_existing, 2);
        assert_eq!(second.registration.mismatched, 0);
    }

    #[test]
    fn tracing_stamps_outcomes_with_reproducible_trace_hashes() {
        let engine = engine();
        let runner = CampaignRunner::new(&engine).with_workers(2).with_tracing(true);
        let first = runner.run(&small_spec());
        let second = runner.run(&small_spec());
        for outcome in &first.outcomes {
            assert!(outcome.trace_hash.is_some(), "tracing stamps every outcome");
            assert_eq!(outcome.trace_hash, outcome.provenance.trace_hash);
        }
        let hashes = |report: &CampaignReport| {
            report.outcomes.iter().map(|o| o.trace_hash).collect::<Vec<_>>()
        };
        assert_eq!(hashes(&first), hashes(&second), "traces replay bit-identically");
        // The campaign metrics fold mirrors the scorecard and the
        // registration delta for this run.
        assert_eq!(first.metrics.counter("campaign.queries"), 2);
        assert_eq!(first.metrics.counter("campaign.failed"), 0);
        assert_eq!(first.metrics.counter("registration.fresh"), 2);
        assert_eq!(second.metrics.counter("registration.kept_existing"), 2);
        // Without tracing the stamp stays empty.
        let untraced = CampaignRunner::new(&engine).run(&small_spec());
        assert!(untraced.outcomes.iter().all(|o| o.trace_hash.is_none()));
    }

    #[test]
    fn pipeline_errors_fail_closed_into_the_scorecard() {
        // A model that faults on every completion turns each served query
        // into a pipeline error; the runner must absorb those as Failed
        // outcomes instead of panicking or dropping tasks.
        let model = llm::FaultyModel::new(DeterministicExpertModel::new(), usize::MAX);
        let engine = Engine::new(Arc::new(model), toolkit::standard_registry());
        let spec = CampaignSpec::new(
            vec![EnsembleSpec::new(
                Family::TargetedPrefixHijack,
                FamilyParams { variants: 1, ..FamilyParams::default() },
            )],
            vec![FORENSICS_QUERY.to_string()],
        );
        let report = CampaignRunner::new(&engine).run(&spec);
        assert_eq!(report.scorecard.queries, 1);
        assert_eq!(report.scorecard.failed, 1);
        assert_eq!(report.scorecard.failed_rate, 1.0);
        assert!(report.outcomes[0].error.is_some());
        assert!(matches!(report.outcomes[0].health, RunHealth::Failed { .. }));
    }
}
