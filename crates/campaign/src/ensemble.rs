//! Monte Carlo ensembles: seed sweeps over families, and the
//! distributions campaign results aggregate into.

use serde::{Deserialize, Serialize};

use crate::compose::ComposedFamily;
use scenario_forge::{Family, FamilyParams, ScenarioBlueprint};

/// Anything a campaign can sweep: a base family or a composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CampaignFamily {
    Base(Family),
    Composed(ComposedFamily),
}

impl CampaignFamily {
    /// The family's stable identifier (the engine key prefix).
    pub fn id(&self) -> &'static str {
        match self {
            CampaignFamily::Base(f) => f.id(),
            CampaignFamily::Composed(f) => f.id(),
        }
    }

    /// Expands one draw of the sweep.
    pub fn expand(&self, params: &FamilyParams) -> Vec<ScenarioBlueprint> {
        match self {
            CampaignFamily::Base(f) => f.expand(params),
            CampaignFamily::Composed(f) => f.expand(params),
        }
    }
}

impl From<Family> for CampaignFamily {
    fn from(f: Family) -> CampaignFamily {
        CampaignFamily::Base(f)
    }
}

impl From<ComposedFamily> for CampaignFamily {
    fn from(f: ComposedFamily) -> CampaignFamily {
        CampaignFamily::Composed(f)
    }
}

/// A Monte Carlo sweep: `draws` reseeded expansions of one family.
/// Draw 0 is the root params themselves ([`FamilyParams::reseed`]), so
/// a one-draw ensemble is exactly the plain family expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleSpec {
    pub family: CampaignFamily,
    pub params: FamilyParams,
    /// Sweep size (at least 1).
    pub draws: usize,
}

/// One draw of an ensemble: the reseeded params and the blueprints they
/// expand to.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleDraw {
    pub draw: u64,
    pub params: FamilyParams,
    pub blueprints: Vec<ScenarioBlueprint>,
}

impl EnsembleSpec {
    /// A single-draw ensemble (the plain family expansion).
    pub fn new(family: impl Into<CampaignFamily>, params: FamilyParams) -> EnsembleSpec {
        EnsembleSpec { family: family.into(), params, draws: 1 }
    }

    /// Widens the sweep to `draws` Monte Carlo draws.
    pub fn with_draws(mut self, draws: usize) -> EnsembleSpec {
        self.draws = draws.max(1);
        self
    }

    /// Expands every draw, in draw order — a pure function of the spec.
    pub fn expand(&self) -> Vec<EnsembleDraw> {
        (0..self.draws.max(1) as u64)
            .map(|draw| {
                let params = self.params.reseed(draw);
                let blueprints = self.family.expand(&params);
                EnsembleDraw { draw, params, blueprints }
            })
            .collect()
    }
}

/// A summary distribution over per-query values. Percentiles use the
/// nearest-rank on a `total_cmp`-sorted copy — total order, no NaN
/// panics, bit-identical regardless of accumulation order.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Distribution {
    pub count: usize,
    pub mean: f64,
    pub min: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub max: f64,
}

impl Distribution {
    /// Summarizes `values` (empty input yields the all-zero summary).
    pub fn of(values: &[f64]) -> Distribution {
        if values.is_empty() {
            return Distribution::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let rank = |pct: usize| sorted[(n - 1) * pct / 100];
        Distribution {
            count: n,
            mean: sorted.iter().sum::<f64>() / n as f64,
            min: sorted[0],
            p50: rank(50),
            p90: rank(90),
            p99: rank(99),
            max: sorted[n - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn draw_zero_matches_plain_expansion() {
        let params = FamilyParams::default();
        let spec = EnsembleSpec::new(Family::CableCutCascade, params.clone());
        let draws = spec.expand();
        assert_eq!(draws.len(), 1);
        assert_eq!(draws[0].blueprints, Family::CableCutCascade.expand(&params));
    }

    #[test]
    fn sweeps_rotate_worlds_and_stay_deterministic() {
        let spec = EnsembleSpec::new(
            CampaignFamily::Composed(ComposedFamily::HijackDuringCascade),
            FamilyParams { variants: 1, ..FamilyParams::default() },
        )
        .with_draws(5);
        let draws = spec.expand();
        assert_eq!(draws.len(), 5);
        assert_eq!(draws, spec.expand(), "expansion is pure");
        let worlds: BTreeSet<u64> = draws
            .iter()
            .flat_map(|d| d.blueprints.iter().map(|b| b.world_hash()))
            .collect();
        assert_eq!(worlds.len(), 5, "each draw sweeps to its own world seed");
    }

    #[test]
    fn distribution_percentiles_are_nearest_rank() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let d = Distribution::of(&values);
        assert_eq!(d.count, 100);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 100.0);
        assert_eq!(d.p50, 50.0);
        assert_eq!(d.p90, 90.0);
        assert_eq!(d.p99, 99.0);
        assert!((d.mean - 50.5).abs() < 1e-12);
        assert_eq!(Distribution::of(&[]), Distribution::default());
    }

    #[test]
    fn distribution_is_order_insensitive() {
        let a = [3.0, 1.0, 2.0, f64::INFINITY, 0.5];
        let mut b = a;
        b.reverse();
        assert_eq!(Distribution::of(&a), Distribution::of(&b));
    }
}
