//! Named composed families: interacting incidents over one world.
//!
//! A composed family is a first-class citizen of the fleet APIs: it
//! expands to [`ScenarioBlueprint`]s exactly like a base
//! [`Family`] does, so [`arachnet::Engine::register_blueprints`]
//! registers its fleet under `"<composed-id>/<name>"` keys the same way
//! `register_family` registers base fleets. The members of a composed
//! family are all event-script families — they share one
//! [`world::WorldConfig`] per params, which is what makes the merge
//! well-defined (and what keeps a composed fleet on the same cached
//! world as its component fleets).

use arachnet::{Engine, FamilyScenario};
use scenario_forge::{compose, Family, FamilyParams, ScenarioBlueprint};

/// A named composition of base families whose incidents interact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComposedFamily {
    /// A targeted prefix hijack goes live *while* a cable-cut cascade is
    /// reconverging the same corridor — the forensic stream carries MOAS
    /// evidence tangled with legitimate failure churn.
    HijackDuringCascade,
    /// A national censorship cut with an accidental transit leak inside
    /// the same horizon — physical-layer impact plus a control-plane
    /// incident that routes around it.
    CensorshipWithLeak,
}

impl ComposedFamily {
    /// Every composed family, in canonical order.
    pub const ALL: [ComposedFamily; 2] =
        [ComposedFamily::HijackDuringCascade, ComposedFamily::CensorshipWithLeak];

    /// Stable kebab-case identifier (the engine's key prefix).
    pub fn id(&self) -> &'static str {
        match self {
            ComposedFamily::HijackDuringCascade => "hijack-during-cascade",
            ComposedFamily::CensorshipWithLeak => "censorship-with-leak",
        }
    }

    /// One-line description for catalogs and reports.
    pub fn description(&self) -> &'static str {
        match self {
            ComposedFamily::HijackDuringCascade => {
                "a prefix hijack live while a multi-cable cascade reconverges"
            }
            ComposedFamily::CensorshipWithLeak => {
                "a censorship cut joined by an accidental transit leak"
            }
        }
    }

    /// The base families whose expansions this composition merges.
    pub fn members(&self) -> &'static [Family] {
        match self {
            ComposedFamily::HijackDuringCascade => {
                &[Family::CableCutCascade, Family::TargetedPrefixHijack]
            }
            ComposedFamily::CensorshipWithLeak => {
                &[Family::NationalCensorship, Family::AccidentalTransitLeak]
            }
        }
    }

    /// Expands the params into the composed fleet: the i-th variants of
    /// every member merge into the i-th composed blueprint. Members are
    /// event-script families sharing one config per params, so the merge
    /// cannot mismatch; the horizon is the longest member horizon and
    /// the script order is the canonical content order
    /// ([`scenario_forge::merge_scripts`]).
    pub fn expand(&self, params: &FamilyParams) -> Vec<ScenarioBlueprint> {
        let expansions: Vec<Vec<ScenarioBlueprint>> =
            self.members().iter().map(|f| f.expand(params)).collect();
        let variants = expansions.iter().map(Vec::len).min().unwrap_or(0);
        (0..variants)
            .filter_map(|i| {
                let parts: Vec<&ScenarioBlueprint> =
                    expansions.iter().map(|fleet| &fleet[i]).collect();
                compose(format!("v{i}-{}", self.id()), &parts).ok()
            })
            .collect()
    }

    /// Registers the composed fleet through the engine's blueprint
    /// surface — the `register_family` analogue for compositions.
    pub fn register(&self, engine: &Engine, params: &FamilyParams) -> Vec<FamilyScenario> {
        engine.register_blueprints(self.id(), &self.expand(params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn composed_fleets_merge_member_scripts() {
        let params = FamilyParams::default();
        for family in ComposedFamily::ALL {
            let fleet = family.expand(&params);
            assert_eq!(fleet.len(), params.variants, "{}", family.id());
            let member_fleets: Vec<_> =
                family.members().iter().map(|f| f.expand(&params)).collect();
            for (i, bp) in fleet.iter().enumerate() {
                let expected: usize =
                    member_fleets.iter().map(|f| f[i].script.len()).sum();
                assert_eq!(bp.script.len(), expected, "{}", bp.name);
                assert_eq!(bp.config, member_fleets[0][i].config, "shared world");
            }
        }
    }

    #[test]
    fn composed_ids_are_distinct_from_base_ids() {
        let base: BTreeSet<&str> = Family::ALL.iter().map(|f| f.id()).collect();
        for family in ComposedFamily::ALL {
            assert!(!base.contains(family.id()), "{} collides", family.id());
            assert!(family.id().chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            assert!(family.members().len() >= 2);
        }
    }

    #[test]
    fn expansion_is_deterministic_and_seed_sensitive() {
        let params = FamilyParams::default();
        let reseeded = FamilyParams { seed: 7, ..FamilyParams::default() };
        for family in ComposedFamily::ALL {
            assert_eq!(family.expand(&params), family.expand(&params));
            assert_ne!(family.expand(&params), family.expand(&reseeded));
        }
    }

    #[test]
    fn composed_scenarios_carry_interacting_incidents() {
        // Realize one hijack-during-cascade scenario and check both the
        // physical cuts and the control-plane hijack are on the timeline.
        let params = FamilyParams::default();
        let bp = ComposedFamily::HijackDuringCascade.expand(&params).remove(0);
        let cache = scenario_forge::WorldCache::new();
        let scenario = bp.forge(&cache);
        assert!(scenario.has_control_plane_events(), "hijack present");
        assert!(!scenario.links_down_at(scenario.now).is_empty(), "cascade present");
        let control = scenario.control_plane_at(scenario.now);
        assert!(!control.hijacks.is_empty(), "hijack live at now");
    }
}
