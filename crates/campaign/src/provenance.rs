//! Provenance: every campaign result carries the words needed to
//! reproduce it.
//!
//! PROV-AGENT's framing (PAPERS.md): agentic outputs are only trustworthy
//! if each one is stamped with where it came from. For a campaign query
//! that means: which scenario (content hash, not just a name), over
//! which world, served under which registry epoch, expanded from which
//! family with which params, at which Monte Carlo draw, under which
//! fault plan. Two results with equal provenance hashes are replays of
//! the same computation and must carry equal payloads — the campaign
//! determinism suite pins exactly that.

use serde::{Deserialize, Serialize};
use world::events::stable_hash;

/// Fold a string into the stable-hash word stream (length-prefixed so
/// `"ab" + "c"` and `"a" + "bc"` cannot collide across fields).
pub(crate) fn str_words(s: &str) -> u64 {
    let mut words: Vec<u64> = Vec::with_capacity(s.len() + 1);
    words.push(s.len() as u64);
    words.extend(s.as_bytes().iter().map(|&b| b as u64));
    stable_hash(&words)
}

/// The reproducibility stamp attached to one campaign query result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceRecord {
    /// Engine scenario key the query was served against.
    pub scenario_key: String,
    /// [`world::Scenario::content_hash`] of the served scenario — the
    /// full timeline identity, not just the name.
    pub scenario_hash: u64,
    /// The world's content address ([`world::WorldConfig::content_hash`]).
    pub world_hash: u64,
    /// Registry epoch the serving session pinned.
    pub registry_epoch: u64,
    /// Family (base or composed) the scenario expanded from.
    pub family: String,
    /// [`scenario_forge::FamilyParams::content_hash`] of the draw's params.
    pub params_hash: u64,
    /// Monte Carlo draw index within the ensemble (0 = root params).
    pub draw: u64,
    /// Seed of the engine's installed fault plan, when one was injected —
    /// degraded results are only reproducible with the same plan.
    pub fault_seed: Option<u64>,
    /// Stable hash of the query text.
    pub query_hash: u64,
    /// Content hash of the run's deterministic trace, when the campaign
    /// ran with tracing enabled ([`telemetry::Recorder::trace_hash`]) —
    /// links the provenance stamp to the exported trace artifact.
    pub trace_hash: Option<u64>,
}

impl ProvenanceRecord {
    /// The whole record folded into one word — the identity campaign
    /// reports compare across reruns and worker counts.
    pub fn content_hash(&self) -> u64 {
        stable_hash(&[
            0x5052_4F56_454E_414E, // "PROVENAN"
            str_words(&self.scenario_key),
            self.scenario_hash,
            self.world_hash,
            self.registry_epoch,
            str_words(&self.family),
            self.params_hash,
            self.draw,
            match self.fault_seed {
                Some(seed) => seed ^ 0x4641_554C_5400_0001,
                None => 0x4E4F_5F46_4155_4C54, // "NO_FAULT"
            },
            self.query_hash,
            match self.trace_hash {
                Some(hash) => hash ^ 0x5452_4143_4500_0001,
                None => 0x4E4F_5F54_5241_4345, // "NO_TRACE"
            },
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ProvenanceRecord {
        ProvenanceRecord {
            scenario_key: "hijack-during-cascade/d0/v0".into(),
            scenario_hash: 1,
            world_hash: 2,
            registry_epoch: 0,
            family: "hijack-during-cascade".into(),
            params_hash: 3,
            draw: 0,
            fault_seed: None,
            query_hash: 4,
            trace_hash: None,
        }
    }

    #[test]
    fn content_hash_tracks_every_field() {
        let base = record();
        let variants = [
            ProvenanceRecord { scenario_key: "other".into(), ..record() },
            ProvenanceRecord { scenario_hash: 9, ..record() },
            ProvenanceRecord { world_hash: 9, ..record() },
            ProvenanceRecord { registry_epoch: 9, ..record() },
            ProvenanceRecord { family: "other".into(), ..record() },
            ProvenanceRecord { params_hash: 9, ..record() },
            ProvenanceRecord { draw: 9, ..record() },
            ProvenanceRecord { fault_seed: Some(0), ..record() },
            ProvenanceRecord { query_hash: 9, ..record() },
            ProvenanceRecord { trace_hash: Some(0), ..record() },
        ];
        let mut hashes = vec![base.content_hash()];
        hashes.extend(variants.iter().map(|r| r.content_hash()));
        let unique: std::collections::BTreeSet<u64> = hashes.iter().copied().collect();
        assert_eq!(unique.len(), hashes.len(), "every field moves the hash");
        assert_eq!(base.content_hash(), record().content_hash());
    }

    #[test]
    fn string_words_are_length_prefixed() {
        assert_ne!(str_words("ab"), str_words("a"));
        assert_ne!(str_words(""), str_words("\0"));
        assert_eq!(str_words("x"), str_words("x"));
    }

    #[test]
    fn records_roundtrip_through_json() {
        let r = ProvenanceRecord { trace_hash: Some(7), ..record() };
        let json = serde_json::to_string(&r).expect("serializes");
        let back: ProvenanceRecord = serde_json::from_str(&json).expect("parses");
        assert_eq!(r, back);
    }
}
