//! Cross-layer impact metrics: aggregating a concrete failure into
//! normalized per-country and per-AS assessments — Xaminer's embedding
//! metrics (IPs, links, ASes, AS-links per country).

use std::collections::BTreeMap;

use net_model::{Asn, Country};
use serde::{Deserialize, Serialize};
use world::World;

use crate::event::FailureImpact;

/// Impact on one country.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountryImpact {
    pub country: Country,
    /// Interface addresses (IPs) on failed links with an endpoint here.
    pub ips_affected: usize,
    /// Failed links with an endpoint here.
    pub links_affected: usize,
    /// Country-registered ASes among the affected set.
    pub ases_affected: usize,
    /// Failed *inter-AS* links (AS-links) with an endpoint here.
    pub as_links_affected: usize,
    /// Fraction of the country's links that failed, `[0, 1]`.
    pub link_fraction: f64,
    /// Composite normalized score, `[0, 1]` — mean of the normalized
    /// per-dimension fractions.
    pub impact_score: f64,
}

/// Impact on one AS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsImpact {
    pub asn: Asn,
    pub links_affected: usize,
    /// Fraction of the AS's links that failed.
    pub link_fraction: f64,
}

/// The aggregated report.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ImpactReport {
    /// Per-country impacts, sorted by descending impact score then country.
    pub per_country: Vec<CountryImpact>,
    /// Per-AS impacts, sorted by descending link fraction then ASN.
    pub per_as: Vec<AsImpact>,
    /// Total failed links.
    pub total_links: usize,
    /// Total affected countries.
    pub total_countries: usize,
}

impl ImpactReport {
    /// The `n` most-impacted countries.
    pub fn top_countries(&self, n: usize) -> Vec<Country> {
        self.per_country.iter().take(n).map(|c| c.country).collect()
    }

    /// Impact entry for a specific country.
    pub fn for_country(&self, country: Country) -> Option<&CountryImpact> {
        self.per_country.iter().find(|c| c.country == country)
    }
}

/// Aggregates a failure into the report.
pub fn aggregate(world: &World, failure: &FailureImpact) -> ImpactReport {
    // Denominators: per-country and per-AS link totals.
    let mut country_totals: BTreeMap<Country, usize> = BTreeMap::new();
    let mut as_totals: BTreeMap<Asn, usize> = BTreeMap::new();
    for link in &world.links {
        *country_totals.entry(world.city(link.a.city).country).or_default() += 1;
        if link.a.city != link.b.city || link.a.asn != link.b.asn {
            *country_totals.entry(world.city(link.b.city).country).or_default() += 1;
        }
        *as_totals.entry(link.a.asn).or_default() += 1;
        if link.b.asn != link.a.asn {
            *as_totals.entry(link.b.asn).or_default() += 1;
        }
    }

    #[derive(Default)]
    struct Acc {
        ips: usize,
        links: usize,
        as_links: usize,
    }
    let mut per_country: BTreeMap<Country, Acc> = BTreeMap::new();
    let mut per_as: BTreeMap<Asn, usize> = BTreeMap::new();

    for &lid in &failure.failed_links {
        let link = world.link(lid);
        let ca = world.city(link.a.city).country;
        let cb = world.city(link.b.city).country;
        let inter_as = link.a.asn != link.b.asn;

        let a = per_country.entry(ca).or_default();
        a.ips += 1;
        a.links += 1;
        if inter_as {
            a.as_links += 1;
        }
        if cb != ca {
            let b = per_country.entry(cb).or_default();
            b.ips += 1;
            b.links += 1;
            if inter_as {
                b.as_links += 1;
            }
        } else {
            // Same-country link: second endpoint IP still counts.
            per_country.get_mut(&ca).expect("just inserted").ips += 1;
        }

        *per_as.entry(link.a.asn).or_default() += 1;
        if inter_as {
            *per_as.entry(link.b.asn).or_default() += 1;
        }
    }

    // Affected AS count per country (registered there).
    let mut ases_by_country: BTreeMap<Country, usize> = BTreeMap::new();
    for asn in &failure.affected_ases {
        if let Some(info) = world.as_info(*asn) {
            *ases_by_country.entry(info.country).or_default() += 1;
        }
    }

    let mut country_rows: Vec<CountryImpact> = per_country
        .into_iter()
        .map(|(country, acc)| {
            let total = country_totals.get(&country).copied().unwrap_or(0).max(1);
            let total_ases = world.as_count_in_country(country).max(1);
            let ases_affected = ases_by_country.get(&country).copied().unwrap_or(0);
            let link_fraction = acc.links as f64 / total as f64;
            let as_fraction = ases_affected as f64 / total_ases as f64;
            let as_link_fraction = acc.as_links as f64 / total as f64;
            let impact_score =
                ((link_fraction + as_fraction + as_link_fraction) / 3.0).min(1.0);
            CountryImpact {
                country,
                ips_affected: acc.ips,
                links_affected: acc.links,
                ases_affected,
                as_links_affected: acc.as_links,
                link_fraction,
                impact_score,
            }
        })
        .collect();
    country_rows.sort_by(|a, b| {
        b.impact_score
            .partial_cmp(&a.impact_score)
            .unwrap()
            .then(a.country.cmp(&b.country))
    });

    let mut as_rows: Vec<AsImpact> = per_as
        .into_iter()
        .map(|(asn, links)| {
            let total = as_totals.get(&asn).copied().unwrap_or(0).max(1);
            AsImpact { asn, links_affected: links, link_fraction: links as f64 / total as f64 }
        })
        .collect();
    as_rows.sort_by(|a, b| {
        b.link_fraction.partial_cmp(&a.link_fraction).unwrap().then(a.asn.cmp(&b.asn))
    });

    ImpactReport {
        total_links: failure.failed_links.len(),
        total_countries: country_rows.len(),
        per_country: country_rows,
        per_as: as_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{process_event, FailureEvent};
    use nautilus_sim::DependencyTable;
    use world::{generate, WorldConfig};

    fn report_for(name: &str) -> (World, ImpactReport) {
        let world = generate(&WorldConfig::default());
        let deps = DependencyTable::from_ground_truth(&world);
        let cable = world.cable_by_name(name).unwrap().id;
        let failure = process_event(&world, &deps, &FailureEvent::CableFailure { cable });
        let report = aggregate(&world, &failure);
        (world, report)
    }

    #[test]
    fn report_is_sorted_by_score() {
        let (_, report) = report_for("SeaMeWe-5");
        for w in report.per_country.windows(2) {
            assert!(w[0].impact_score >= w[1].impact_score);
        }
        for w in report.per_as.windows(2) {
            assert!(w[0].link_fraction >= w[1].link_fraction);
        }
    }

    #[test]
    fn scores_are_normalized() {
        let (_, report) = report_for("SeaMeWe-5");
        for c in &report.per_country {
            assert!((0.0..=1.0).contains(&c.impact_score), "{c:?}");
            assert!((0.0..=1.0).contains(&c.link_fraction), "{c:?}");
        }
    }

    #[test]
    fn landing_countries_are_among_the_affected() {
        let (world, report) = report_for("SeaMeWe-5");
        let cable = world.cable_by_name("SeaMeWe-5").unwrap();
        let landing_countries: Vec<Country> = cable
            .landings
            .iter()
            .map(|&l| world.city(l).country)
            .collect();
        let affected: Vec<Country> = report.per_country.iter().map(|c| c.country).collect();
        let overlap = landing_countries.iter().filter(|c| affected.contains(c)).count();
        assert!(
            overlap * 2 >= landing_countries.len(),
            "at least half the landing countries should be affected (got {overlap}/{})",
            landing_countries.len()
        );
    }

    #[test]
    fn empty_failure_empty_report() {
        let world = generate(&WorldConfig::default());
        let report = aggregate(&world, &FailureImpact::default());
        assert_eq!(report.total_links, 0);
        assert!(report.per_country.is_empty());
    }

    #[test]
    fn top_countries_truncates() {
        let (_, report) = report_for("SeaMeWe-5");
        let top3 = report.top_countries(3);
        assert!(top3.len() <= 3);
        assert_eq!(top3.first(), report.per_country.first().map(|c| &c.country).copied().as_ref());
    }
}
