//! # xaminer-sim — cross-layer resilience analysis
//!
//! A from-scratch implementation of the analysis layer Xaminer ([23] in
//! the paper) provides to the case studies. It consumes Nautilus-style
//! dependency tables (inferred or oracle) and answers resilience
//! questions:
//!
//! * [`event`] — **failure event processing**: a cable failure or a
//!   geo-footprint disaster (with per-asset failure probability) becomes a
//!   concrete set of failed segments/links and affected ASes/countries.
//!   This is the "single event processing function" whose versatility case
//!   study 2 leans on.
//! * [`impact`] — **cross-layer impact metrics**: normalized per-country
//!   and per-AS metrics (IPs, links, ASes, AS-links affected), the same
//!   embedding families the Xaminer paper aggregates.
//! * [`cascade`] — **cascade propagation**: load-redistribution rounds
//!   over the dependency graph until fixpoint, producing the multi-layer
//!   cascade timelines of case study 3.
//! * [`risk`] — **risk profiles**: per-country dependency concentration
//!   (HHI), critical-cable rankings and resilience scores.

pub mod cascade;
pub mod control_plane;
pub mod event;
pub mod impact;
pub mod risk;

pub use cascade::{CascadeConfig, CascadeRound, CascadeTimeline};
pub use control_plane::{ControlPlaneImpact, ControlPlaneIncident};
pub use event::{process_event, FailureEvent, FailureImpact};
pub use impact::{AsImpact, CountryImpact, ImpactReport};
pub use risk::{country_risk_profile, CountryRiskProfile};

use nautilus_sim::DependencyTable;
use world::World;

/// Facade bundling the world with a dependency table.
#[derive(Debug, Clone)]
pub struct XaminerEngine<'a> {
    pub world: &'a World,
    pub deps: DependencyTable,
}

impl<'a> XaminerEngine<'a> {
    /// Engine over an inferred (Nautilus) dependency table.
    pub fn new(world: &'a World, deps: DependencyTable) -> Self {
        XaminerEngine { world, deps }
    }

    /// Engine over the generator's ground truth (oracle mode).
    pub fn oracle(world: &'a World) -> Self {
        XaminerEngine { world, deps: DependencyTable::from_ground_truth(world) }
    }

    /// Processes one failure event into a concrete impact set.
    pub fn process(&self, event: &FailureEvent) -> FailureImpact {
        event::process_event(self.world, &self.deps, event)
    }

    /// Processes an event and aggregates country/AS impact metrics.
    pub fn impact_report(&self, event: &FailureEvent) -> ImpactReport {
        let failure = self.process(event);
        impact::aggregate(self.world, &failure)
    }

    /// Runs cascade propagation from an initial event.
    pub fn cascade(&self, event: &FailureEvent, config: &CascadeConfig) -> CascadeTimeline {
        let initial = self.process(event);
        cascade::propagate(self.world, &initial, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use world::{generate, WorldConfig};

    #[test]
    fn oracle_engine_processes_cable_failure() {
        let world = generate(&WorldConfig::default());
        let engine = XaminerEngine::oracle(&world);
        let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let report = engine.impact_report(&FailureEvent::CableFailure { cable });
        assert!(!report.per_country.is_empty());
        // France and Singapore land the cable; both should appear.
        let fr = net_model::Country(*b"FR");
        let sg = net_model::Country(*b"SG");
        let countries: Vec<_> = report.per_country.iter().map(|c| c.country).collect();
        assert!(countries.contains(&fr) || countries.contains(&sg));
    }
}
