//! Cascade propagation: how an initial failure spreads through load
//! redistribution.
//!
//! The model is the standard capacity-overload cascade adapted to the
//! cross-layer setting of case study 3:
//!
//! 1. the initial event fails a set of IP links (round 0);
//! 2. traffic carried by failed links redistributes onto the surviving
//!    links of the *same corridor* (links whose endpoints share the two
//!    regions), raising their load;
//! 3. links whose load exceeds `overload_threshold ×` capacity fail in the
//!    next round; ASes that lose more than `as_degradation_threshold` of
//!    their links are marked degraded;
//! 4. repeat until a fixpoint or `max_rounds`.
//!
//! Each round is stamped with a time offset, producing the unified
//! cable→IP→AS cascade timeline the case study reports.

use std::collections::{BTreeMap, BTreeSet};

use net_model::{Asn, LinkId, Region, SimDuration};
use serde::{Deserialize, Serialize};
use world::World;

use crate::event::FailureImpact;

/// Cascade model parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CascadeConfig {
    /// Initial load on every link as a fraction of capacity.
    pub base_load: f64,
    /// Load/capacity ratio beyond which a link fails.
    pub overload_threshold: f64,
    /// Fraction of lost links beyond which an AS counts as degraded.
    pub as_degradation_threshold: f64,
    /// Hard cap on rounds.
    pub max_rounds: usize,
    /// Wall-clock spacing between rounds in the produced timeline.
    pub round_spacing: SimDuration,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            base_load: 0.55,
            overload_threshold: 1.0,
            as_degradation_threshold: 0.35,
            max_rounds: 10,
            round_spacing: SimDuration::minutes(30),
        }
    }
}

/// One round of the cascade.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CascadeRound {
    pub round: usize,
    /// Offset from the initial event.
    pub at_offset: SimDuration,
    /// Links that failed in this round, ascending.
    pub newly_failed_links: Vec<LinkId>,
    /// ASes that crossed the degradation threshold in this round.
    pub newly_degraded_ases: Vec<Asn>,
}

/// The full cascade timeline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CascadeTimeline {
    pub rounds: Vec<CascadeRound>,
}

impl CascadeTimeline {
    /// Every failed link across all rounds.
    pub fn all_failed_links(&self) -> Vec<LinkId> {
        let mut v: Vec<LinkId> =
            self.rounds.iter().flat_map(|r| r.newly_failed_links.iter().copied()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Every degraded AS across all rounds.
    pub fn all_degraded_ases(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> =
            self.rounds.iter().flat_map(|r| r.newly_degraded_ases.iter().copied()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Number of rounds with any new failure (round 0 included).
    pub fn depth(&self) -> usize {
        self.rounds.iter().filter(|r| !r.newly_failed_links.is_empty()).count()
    }
}

/// Corridor key: unordered region pair of a link's endpoints.
fn corridor(world: &World, link: &world::IpLink) -> (Region, Region) {
    let ra = world.city(link.a.city).region;
    let rb = world.city(link.b.city).region;
    if ra <= rb {
        (ra, rb)
    } else {
        (rb, ra)
    }
}

/// Runs the cascade.
pub fn propagate(
    world: &World,
    initial: &FailureImpact,
    config: &CascadeConfig,
) -> CascadeTimeline {
    let mut failed: BTreeSet<LinkId> = initial.failed_links.iter().copied().collect();
    let mut degraded: BTreeSet<Asn> = BTreeSet::new();
    let mut rounds = Vec::new();

    // Per-AS link totals, for degradation bookkeeping.
    let mut as_totals: BTreeMap<Asn, usize> = BTreeMap::new();
    for link in &world.links {
        *as_totals.entry(link.a.asn).or_default() += 1;
        if link.b.asn != link.a.asn {
            *as_totals.entry(link.b.asn).or_default() += 1;
        }
    }

    let as_lost = |failed: &BTreeSet<LinkId>| -> BTreeMap<Asn, usize> {
        let mut lost: BTreeMap<Asn, usize> = BTreeMap::new();
        for &lid in failed {
            let link = world.link(lid);
            *lost.entry(link.a.asn).or_default() += 1;
            if link.b.asn != link.a.asn {
                *lost.entry(link.b.asn).or_default() += 1;
            }
        }
        lost
    };

    // Round 0: the initial failure plus any immediately-degraded ASes.
    let lost0 = as_lost(&failed);
    let mut newly_degraded: Vec<Asn> = lost0
        .iter()
        .filter(|(asn, &lost)| {
            let total = as_totals.get(asn).copied().unwrap_or(0).max(1);
            lost as f64 / total as f64 >= config.as_degradation_threshold
        })
        .map(|(asn, _)| *asn)
        .collect();
    degraded.extend(newly_degraded.iter().copied());
    rounds.push(CascadeRound {
        round: 0,
        at_offset: SimDuration::seconds(0),
        newly_failed_links: initial.failed_links.clone(),
        newly_degraded_ases: newly_degraded,
    });

    for round in 1..=config.max_rounds {
        // Redistribute: per corridor, the load of failed links spreads
        // over surviving links of the same corridor.
        let mut corridor_failed_cap: BTreeMap<(Region, Region), f64> = BTreeMap::new();
        let mut corridor_live_cap: BTreeMap<(Region, Region), f64> = BTreeMap::new();
        for link in &world.links {
            let key = corridor(world, link);
            if failed.contains(&link.id) {
                *corridor_failed_cap.entry(key).or_default() +=
                    link.capacity_gbps * config.base_load;
            } else {
                *corridor_live_cap.entry(key).or_default() += link.capacity_gbps;
            }
        }

        let mut next_failures: Vec<LinkId> = Vec::new();
        for link in &world.links {
            if failed.contains(&link.id) {
                continue;
            }
            let key = corridor(world, link);
            let displaced = corridor_failed_cap.get(&key).copied().unwrap_or(0.0);
            let live = corridor_live_cap.get(&key).copied().unwrap_or(0.0);
            if displaced <= 0.0 || live <= 0.0 {
                continue;
            }
            // This link's share of the displaced traffic is proportional to
            // its capacity share of the corridor.
            let extra = displaced * (link.capacity_gbps / live);
            let load = link.capacity_gbps * config.base_load + extra;
            if load > link.capacity_gbps * config.overload_threshold {
                next_failures.push(link.id);
            }
        }

        if next_failures.is_empty() {
            break;
        }
        failed.extend(next_failures.iter().copied());

        let lost = as_lost(&failed);
        newly_degraded = lost
            .iter()
            .filter(|(asn, &l)| {
                if degraded.contains(asn) {
                    return false;
                }
                let total = as_totals.get(asn).copied().unwrap_or(0).max(1);
                l as f64 / total as f64 >= config.as_degradation_threshold
            })
            .map(|(asn, _)| *asn)
            .collect();
        degraded.extend(newly_degraded.iter().copied());

        rounds.push(CascadeRound {
            round,
            at_offset: SimDuration::seconds(config.round_spacing.as_seconds() * round as i64),
            newly_failed_links: next_failures,
            newly_degraded_ases: newly_degraded,
        });
    }

    CascadeTimeline { rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{process_event, FailureEvent};
    use nautilus_sim::DependencyTable;
    use world::{generate, WorldConfig};

    fn initial_failure(world: &World, cable_name: &str) -> FailureImpact {
        let deps = DependencyTable::from_ground_truth(world);
        let cable = world.cable_by_name(cable_name).unwrap().id;
        process_event(world, &deps, &FailureEvent::CableFailure { cable })
    }

    #[test]
    fn round_zero_is_the_initial_failure() {
        let world = generate(&WorldConfig::default());
        let initial = initial_failure(&world, "SeaMeWe-5");
        let tl = propagate(&world, &initial, &CascadeConfig::default());
        assert_eq!(tl.rounds[0].newly_failed_links, initial.failed_links);
        assert_eq!(tl.rounds[0].round, 0);
    }

    #[test]
    fn cascade_is_monotone_and_bounded() {
        let world = generate(&WorldConfig::default());
        let initial = initial_failure(&world, "SeaMeWe-5");
        let config = CascadeConfig { base_load: 0.8, ..CascadeConfig::default() };
        let tl = propagate(&world, &initial, &config);
        assert!(tl.rounds.len() <= config.max_rounds + 1);
        // No link fails twice.
        let all = tl.all_failed_links();
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len());
    }

    #[test]
    fn higher_load_cascades_at_least_as_far() {
        let world = generate(&WorldConfig::default());
        let initial = initial_failure(&world, "SeaMeWe-5");
        let low = propagate(
            &world,
            &initial,
            &CascadeConfig { base_load: 0.3, ..CascadeConfig::default() },
        );
        let high = propagate(
            &world,
            &initial,
            &CascadeConfig { base_load: 0.85, ..CascadeConfig::default() },
        );
        assert!(high.all_failed_links().len() >= low.all_failed_links().len());
    }

    #[test]
    fn rounds_are_time_stamped_in_order() {
        let world = generate(&WorldConfig::default());
        let initial = initial_failure(&world, "SeaMeWe-5");
        let tl = propagate(
            &world,
            &initial,
            &CascadeConfig { base_load: 0.85, ..CascadeConfig::default() },
        );
        for w in tl.rounds.windows(2) {
            assert!(w[0].at_offset < w[1].at_offset);
        }
    }

    #[test]
    fn empty_initial_failure_stops_immediately() {
        let world = generate(&WorldConfig::default());
        let tl = propagate(&world, &FailureImpact::default(), &CascadeConfig::default());
        assert_eq!(tl.depth(), 0);
        assert_eq!(tl.rounds.len(), 1);
    }
}
