//! Failure-event processing: from an event description to the concrete set
//! of failed assets and affected entities.
//!
//! The same function handles every event family — full cable failures,
//! single-segment cuts, and probabilistic geo-footprint disasters. Case
//! study 2's point is exactly that this versatility makes cross-framework
//! orchestration unnecessary for multi-disaster analysis.

use std::collections::BTreeSet;

use net_model::{Asn, CableId, Country, LinkId};
use net_model::geo::GeoCircle;
use serde::{Deserialize, Serialize};
use world::events::{fails, stable_hash, DisasterSpec};
use world::World;

use nautilus_sim::DependencyTable;

/// A failure event to analyse (hypothetical or observed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FailureEvent {
    /// Entire cable system fails.
    CableFailure { cable: CableId },
    /// One span fails.
    SegmentFailure { cable: CableId, segment: usize },
    /// A disaster footprint with per-asset failure probability.
    Disaster(DisasterSpec),
    /// Several events at once (evaluated independently, impacts unioned).
    Compound(Vec<FailureEvent>),
}

impl FailureEvent {
    /// Convenience: an earthquake spec.
    pub fn earthquake(name: &str, center: net_model::GeoPoint, radius_km: f64, p: f64) -> Self {
        FailureEvent::Disaster(DisasterSpec::earthquake(name, center, radius_km, p))
    }

    /// Convenience: a hurricane spec.
    pub fn hurricane(name: &str, center: net_model::GeoPoint, radius_km: f64, p: f64) -> Self {
        FailureEvent::Disaster(DisasterSpec::hurricane(name, center, radius_km, p))
    }
}

/// The concrete impact of a processed event.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FailureImpact {
    /// Failed cable segments, `(cable, segment)` ascending.
    pub failed_segments: Vec<(CableId, usize)>,
    /// Failed IP links, ascending.
    pub failed_links: Vec<LinkId>,
    /// ASes with at least one failed link, ascending.
    pub affected_ases: Vec<Asn>,
    /// Countries hosting at least one failed link endpoint, ascending.
    pub affected_countries: Vec<Country>,
}

impl FailureImpact {
    /// Unions another impact into this one.
    pub fn merge(&mut self, other: FailureImpact) {
        merge_sorted(&mut self.failed_segments, other.failed_segments);
        merge_sorted(&mut self.failed_links, other.failed_links);
        merge_sorted(&mut self.affected_ases, other.affected_ases);
        merge_sorted(&mut self.affected_countries, other.affected_countries);
    }

    /// Whether nothing failed.
    pub fn is_empty(&self) -> bool {
        self.failed_links.is_empty() && self.failed_segments.is_empty()
    }
}

fn merge_sorted<T: Ord>(dst: &mut Vec<T>, src: Vec<T>) {
    dst.extend(src);
    dst.sort();
    dst.dedup();
}

/// Processes one event against a dependency table.
///
/// The dependency table decides which links a failed segment takes down:
/// with an oracle table this is exact; with an inferred (Nautilus) table
/// the analysis inherits the mapper's uncertainty, exactly as in the real
/// tool stack.
pub fn process_event(
    world: &World,
    deps: &DependencyTable,
    event: &FailureEvent,
) -> FailureImpact {
    match event {
        FailureEvent::CableFailure { cable } => {
            let n = world.cable(*cable).segments.len();
            let segments: Vec<(CableId, usize)> = (0..n).map(|s| (*cable, s)).collect();
            impact_of_segments(world, deps, &segments)
        }
        FailureEvent::SegmentFailure { cable, segment } => {
            impact_of_segments(world, deps, &[(*cable, *segment)])
        }
        FailureEvent::Disaster(spec) => {
            let segments = disaster_segments(world, spec);
            impact_of_segments(world, deps, &segments)
        }
        FailureEvent::Compound(events) => {
            let mut total = FailureImpact::default();
            for e in events {
                total.merge(process_event(world, deps, e));
            }
            total
        }
    }
}

/// Which segments a disaster footprint fails, via the same deterministic
/// Bernoulli draws the scenario machinery uses (event identity is derived
/// from the spec's name so distinct disasters draw independently).
pub fn disaster_segments(world: &World, spec: &DisasterSpec) -> Vec<(CableId, usize)> {
    let event_id = stable_hash(&[name_hash(&spec.name), name_hash(&spec.kind)]);
    let mut out = Vec::new();
    for cable in &world.cables {
        for (si, seg) in cable.segments.iter().enumerate() {
            if segment_exposed(world, &spec.footprint, seg) {
                let asset = ((cable.id.0 as u64) << 16) | si as u64;
                if fails(world.seed, event_id, asset, spec.failure_prob) {
                    out.push((cable.id, si));
                }
            }
        }
    }
    out
}

fn segment_exposed(world: &World, footprint: &GeoCircle, seg: &world::CableSegment) -> bool {
    let pa = world.city(seg.a).location;
    let pb = world.city(seg.b).location;
    footprint.contains(&pa) || footprint.contains(&pb)
}

fn name_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Computes the downstream impact of a set of failed segments using the
/// dependency table's cable→link view filtered to links that actually ride
/// one of the failed segments (per the table's granularity).
fn impact_of_segments(
    world: &World,
    deps: &DependencyTable,
    segments: &[(CableId, usize)],
) -> FailureImpact {
    let seg_set: BTreeSet<(CableId, usize)> = segments.iter().copied().collect();
    let cables: BTreeSet<CableId> = segments.iter().map(|(c, _)| *c).collect();

    let mut failed_links: BTreeSet<LinkId> = BTreeSet::new();
    for cable in &cables {
        // Full-cable failure: every dependent link. Partial: only the links
        // the dependency table attributes to this cable AND whose ground
        // path (if the table is oracle) or whose candidacy (if inferred)
        // crosses a failed segment. The table abstracts that detail away;
        // we filter with the world's segment endpoints as the best
        // available evidence: a dependent link fails if any failed segment
        // belongs to the cable and the cable's failed span count is
        // non-zero. For single-segment events we additionally require the
        // link's endpoints to straddle the failed span side.
        let all_failed = (0..world.cable(*cable).segments.len())
            .all(|s| seg_set.contains(&(*cable, s)));
        for l in deps.for_cable(*cable).links {
            if all_failed {
                failed_links.insert(l);
                continue;
            }
            // Partial failure: consult the link's physical path when
            // available (oracle-grade data); otherwise fail it with the
            // cable (conservative).
            let link = world.link(l);
            let rides_failed = link
                .path
                .hops
                .iter()
                .any(|h| match h {
                    world::physical::PathHop::Cable { cable: c, segment, .. } => {
                        seg_set.contains(&(*c, *segment))
                    }
                    _ => false,
                });
            let path_known = !link.path.cables().is_empty();
            if rides_failed || !path_known {
                failed_links.insert(l);
            }
        }
    }

    let mut ases: BTreeSet<Asn> = BTreeSet::new();
    let mut countries: BTreeSet<Country> = BTreeSet::new();
    for &l in &failed_links {
        let link = world.link(l);
        ases.insert(link.a.asn);
        ases.insert(link.b.asn);
        countries.insert(world.city(link.a.city).country);
        countries.insert(world.city(link.b.city).country);
    }

    FailureImpact {
        failed_segments: seg_set.into_iter().collect(),
        failed_links: failed_links.into_iter().collect(),
        affected_ases: ases.into_iter().collect(),
        affected_countries: countries.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use net_model::GeoPoint;
    use world::{generate, WorldConfig};

    fn fixture() -> World {
        generate(&WorldConfig::default())
    }

    #[test]
    fn cable_failure_matches_ground_truth_links() {
        let world = fixture();
        let deps = DependencyTable::from_ground_truth(&world);
        let cable = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let impact = process_event(&world, &deps, &FailureEvent::CableFailure { cable });
        assert_eq!(impact.failed_links, world.links_on_cable(cable));
        assert!(!impact.affected_countries.is_empty());
    }

    #[test]
    fn segment_failure_is_subset_of_cable_failure() {
        let world = fixture();
        let deps = DependencyTable::from_ground_truth(&world);
        let cable = world.cable_by_name("AAE-1").unwrap().id;
        let full = process_event(&world, &deps, &FailureEvent::CableFailure { cable });
        let seg = process_event(&world, &deps, &FailureEvent::SegmentFailure { cable, segment: 2 });
        for l in &seg.failed_links {
            assert!(full.failed_links.contains(l));
        }
    }

    #[test]
    fn disaster_probability_zero_fails_nothing() {
        let world = fixture();
        let deps = DependencyTable::from_ground_truth(&world);
        let ev = FailureEvent::earthquake("Test", GeoPoint::of(31.2, 29.9), 500.0, 0.0);
        assert!(process_event(&world, &deps, &ev).is_empty());
    }

    #[test]
    fn disaster_probability_one_fails_every_exposed_segment() {
        let world = fixture();
        let deps = DependencyTable::from_ground_truth(&world);
        let ev = FailureEvent::earthquake("Big", GeoPoint::of(31.2, 29.9), 500.0, 1.0);
        let impact = process_event(&world, &deps, &ev);
        assert!(!impact.is_empty(), "Alexandria quake at p=1 must fail something");
        // Every Europe–Asia trunk lands at Alexandria, so several cables
        // must be hit.
        let cables: BTreeSet<CableId> =
            impact.failed_segments.iter().map(|(c, _)| *c).collect();
        assert!(cables.len() >= 3, "cables hit: {}", cables.len());
    }

    #[test]
    fn compound_event_unions_impacts() {
        let world = fixture();
        let deps = DependencyTable::from_ground_truth(&world);
        let a = world.cable_by_name("SeaMeWe-5").unwrap().id;
        let b = world.cable_by_name("AAE-1").unwrap().id;
        let ia = process_event(&world, &deps, &FailureEvent::CableFailure { cable: a });
        let ib = process_event(&world, &deps, &FailureEvent::CableFailure { cable: b });
        let both = process_event(
            &world,
            &deps,
            &FailureEvent::Compound(vec![
                FailureEvent::CableFailure { cable: a },
                FailureEvent::CableFailure { cable: b },
            ]),
        );
        for l in ia.failed_links.iter().chain(&ib.failed_links) {
            assert!(both.failed_links.contains(l));
        }
        assert!(both.failed_links.len() <= ia.failed_links.len() + ib.failed_links.len());
    }

    #[test]
    fn disaster_draws_are_deterministic_and_name_dependent() {
        let world = fixture();
        let spec1 = DisasterSpec::earthquake("Q1", GeoPoint::of(31.2, 29.9), 500.0, 0.5);
        let spec2 = DisasterSpec::earthquake("Q2", GeoPoint::of(31.2, 29.9), 500.0, 0.5);
        let s1a = disaster_segments(&world, &spec1);
        let s1b = disaster_segments(&world, &spec1);
        let s2 = disaster_segments(&world, &spec2);
        assert_eq!(s1a, s1b);
        assert_ne!(s1a, s2, "different disasters should draw independently");
    }
}
