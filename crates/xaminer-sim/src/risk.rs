//! Country risk profiles: dependency concentration and critical-cable
//! rankings — the "embedding" style aggregates Xaminer exposes for
//! resilience comparisons across economies.

use net_model::{CableId, Country};
use serde::{Deserialize, Serialize};
use world::World;

use nautilus_sim::DependencyTable;

/// Risk profile of one country.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountryRiskProfile {
    pub country: Country,
    /// International (submarine) links touching the country.
    pub submarine_links: usize,
    /// Cables those links ride, with the fraction of the country's
    /// submarine links on each, descending.
    pub cable_shares: Vec<(CableId, f64)>,
    /// Herfindahl–Hirschman index over cable shares, `[0, 1]`; 1 means a
    /// single cable carries everything (maximum fragility).
    pub concentration_hhi: f64,
    /// The single most critical cable, if any submarine links exist.
    pub most_critical: Option<CableId>,
}

/// Builds the risk profile of one country from a dependency table.
pub fn country_risk_profile(
    world: &World,
    deps: &DependencyTable,
    country: Country,
) -> CountryRiskProfile {
    // Count the country's submarine links per cable.
    let mut per_cable: Vec<(CableId, usize)> = Vec::new();
    let mut total = 0usize;
    for cable in deps.cables() {
        let e = deps.for_cable(cable);
        let count = e
            .links
            .iter()
            .filter(|&&l| {
                let link = world.link(l);
                world.city(link.a.city).country == country
                    || world.city(link.b.city).country == country
            })
            .count();
        if count > 0 {
            per_cable.push((cable, count));
            total += count;
        }
    }

    let mut cable_shares: Vec<(CableId, f64)> = per_cable
        .into_iter()
        .map(|(c, n)| (c, n as f64 / total.max(1) as f64))
        .collect();
    cable_shares.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));

    let hhi = cable_shares.iter().map(|(_, s)| s * s).sum::<f64>();

    CountryRiskProfile {
        country,
        submarine_links: total,
        most_critical: cable_shares.first().map(|(c, _)| *c),
        cable_shares,
        concentration_hhi: hhi,
    }
}

/// Profiles for every country with at least one submarine link, sorted by
/// descending concentration (most fragile first).
pub fn all_risk_profiles(world: &World, deps: &DependencyTable) -> Vec<CountryRiskProfile> {
    let mut out: Vec<CountryRiskProfile> = net_model::country::all_countries()
        .into_iter()
        .map(|info| country_risk_profile(world, deps, info.code))
        .filter(|p| p.submarine_links > 0)
        .collect();
    out.sort_by(|a, b| {
        b.concentration_hhi
            .partial_cmp(&a.concentration_hhi)
            .unwrap()
            .then(a.country.cmp(&b.country))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use world::{generate, WorldConfig};

    fn fixture() -> (World, DependencyTable) {
        let world = generate(&WorldConfig::default());
        let deps = DependencyTable::from_ground_truth(&world);
        (world, deps)
    }

    #[test]
    fn shares_sum_to_one_for_connected_countries() {
        let (world, deps) = fixture();
        let sg = Country(*b"SG");
        let p = country_risk_profile(&world, &deps, sg);
        assert!(p.submarine_links > 0, "Singapore must have submarine links");
        // Shares are per-cable fractions of the total; a link riding two
        // cables counts on both, so the sum can exceed 1 — but every share
        // is a valid fraction and the list is sorted.
        for (_, s) in &p.cable_shares {
            assert!((0.0..=1.0).contains(s));
        }
        for w in p.cable_shares.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(p.most_critical.is_some());
    }

    #[test]
    fn hhi_bounds() {
        let (world, deps) = fixture();
        for p in all_risk_profiles(&world, &deps) {
            assert!(p.concentration_hhi > 0.0);
            // HHI over shares that may double-count multi-cable links is
            // still bounded by the number of shares.
            assert!(p.concentration_hhi <= p.cable_shares.len() as f64);
        }
    }

    #[test]
    fn most_critical_is_consistent_with_link_count() {
        // Landlocked economies can still ride cables through foreign PoPs
        // (a Swiss operator's London PoP reaches the continent subsea), so
        // the invariant is consistency, not absence.
        let (world, deps) = fixture();
        for info in net_model::country::all_countries() {
            let p = country_risk_profile(&world, &deps, info.code);
            assert_eq!(
                p.most_critical.is_some(),
                p.submarine_links > 0,
                "{}: most_critical must track submarine_links",
                info.name
            );
        }
    }

    #[test]
    fn profiles_are_sorted_by_concentration() {
        let (world, deps) = fixture();
        let ps = all_risk_profiles(&world, &deps);
        assert!(!ps.is_empty());
        for w in ps.windows(2) {
            assert!(w[0].concentration_hhi >= w[1].concentration_hhi);
        }
    }
}
