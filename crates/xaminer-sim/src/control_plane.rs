//! Control-plane incident impact: who is misdirected by a prefix hijack,
//! whose best paths a route leak drags through the leaker.
//!
//! Physical failure events break links and the [`crate::event`] path
//! counts what fell over. Control-plane incidents break *routing policy*
//! while every link stays up, so their impact is computed on the BGP
//! substrate instead: a full valley-free route computation (with the
//! incident's [`bgp_sim::PolicyOverrides`] applied where relevant) over
//! the world's quiet topology, diffed against the clean baseline.

use net_model::{Asn, Country, Ipv4Net};
use serde::{Deserialize, Serialize};
use world::World;

use bgp_sim::{AsGraph, PolicyOverrides, RoutingTable};

/// A control-plane incident to assess (hypothetical or observed).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlPlaneIncident {
    /// `origin` announces `victim_prefix` it does not own.
    PrefixHijack { origin: Asn, victim_prefix: Ipv4Net },
    /// `leaker` re-exports its best routes to every neighbour.
    RouteLeak { leaker: Asn },
}

impl ControlPlaneIncident {
    /// Short classifier used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            ControlPlaneIncident::PrefixHijack { .. } => "prefix-hijack",
            ControlPlaneIncident::RouteLeak { .. } => "route-leak",
        }
    }

    /// The AS responsible for the incident.
    pub fn offender(&self) -> Asn {
        match self {
            ControlPlaneIncident::PrefixHijack { origin, .. } => *origin,
            ControlPlaneIncident::RouteLeak { leaker } => *leaker,
        }
    }
}

/// The assessed impact of one control-plane incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlPlaneImpact {
    /// `"prefix-hijack"` / `"route-leak"`.
    pub kind: String,
    pub offender: Asn,
    /// Hijack: ASes whose best route for the victim prefix lands at the
    /// bogus origin (the hijack's capture cone). Leak: ASes whose best
    /// route to at least one destination changed. Ascending.
    pub affected_ases: Vec<Asn>,
    /// Registration countries of the affected ASes, ascending.
    pub affected_countries: Vec<Country>,
    /// `affected_ases` over the world's AS count, `[0, 1]`.
    pub affected_fraction: f64,
}

/// The quiet-topology AS graph (every IP link up) — the reference
/// topology control-plane incidents are assessed against.
pub fn quiet_graph(world: &World) -> AsGraph {
    AsGraph::from_relationships(
        world.ases.iter().map(|a| a.asn).collect(),
        world.relationships.iter().map(|r| (r.a, r.b, r.kind)),
    )
}

/// Assesses one incident against the world's quiet topology.
pub fn assess(world: &World, incident: &ControlPlaneIncident) -> ControlPlaneImpact {
    assess_many(world, std::slice::from_ref(incident)).pop().expect("one incident in")
}

/// Assesses several incidents, building the quiet graph and the baseline
/// routing table — the dominant cost — once instead of per incident
/// (a hijack report can name several victim prefixes).
pub fn assess_many(world: &World, incidents: &[ControlPlaneIncident]) -> Vec<ControlPlaneImpact> {
    let graph = quiet_graph(world);
    let base = RoutingTable::compute(&graph, world);
    incidents.iter().map(|i| assess_with(world, &graph, &base, i)).collect()
}

/// One incident against a pre-built graph and baseline table.
fn assess_with(
    world: &World,
    graph: &AsGraph,
    base: &RoutingTable,
    incident: &ControlPlaneIncident,
) -> ControlPlaneImpact {
    let affected_ases: Vec<Asn> = match incident {
        ControlPlaneIncident::PrefixHijack { origin, victim_prefix } => {
            // The capture cone: vantage points whose route selection
            // prefers the bogus origin, arbitrated exactly as the RIB
            // capture arbitrates MOAS candidates.
            let legit = world.prefixes.iter().find(|p| p.net == *victim_prefix).map(|p| p.origin);
            match legit {
                None => Vec::new(), // unknown prefix: nothing to capture
                Some(legit) if legit == *origin => Vec::new(),
                Some(legit) => world
                    .ases
                    .iter()
                    .map(|a| a.asn)
                    .filter(|&u| {
                        let bogus = base.selection(u, *origin).map(|k| (k, *origin));
                        let real = base.selection(u, legit).map(|k| (k, legit));
                        match (bogus, real) {
                            (Some(b), Some(r)) => b < r,
                            (Some(_), None) => true,
                            _ => false,
                        }
                    })
                    .collect(),
            }
        }
        ControlPlaneIncident::RouteLeak { leaker } => {
            let leaked = RoutingTable::compute_with(
                graph,
                world,
                bgp_sim::routing::default_threads(),
                &PolicyOverrides::leaking([*leaker]),
            );
            world
                .ases
                .iter()
                .map(|a| a.asn)
                .filter(|&src| {
                    world.ases.iter().any(|d| {
                        base.selection(src, d.asn) != leaked.selection(src, d.asn)
                    })
                })
                .collect()
        }
    };

    let mut affected_countries: Vec<Country> = affected_ases
        .iter()
        .filter_map(|&a| world.as_info(a).map(|i| i.country))
        .collect();
    affected_countries.sort();
    affected_countries.dedup();

    let affected_fraction = if world.ases.is_empty() {
        0.0
    } else {
        affected_ases.len() as f64 / world.ases.len() as f64
    };

    ControlPlaneImpact {
        kind: incident.label().to_string(),
        offender: incident.offender(),
        affected_ases,
        affected_countries,
        affected_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use world::{generate, WorldConfig};

    fn fixture() -> World {
        generate(&WorldConfig::default())
    }

    #[test]
    fn hijack_capture_cone_is_nonempty_and_excludes_victimless_cases() {
        let world = fixture();
        let victim = world.prefixes[0];
        let hijacker =
            world.ases.iter().map(|a| a.asn).find(|&a| a != victim.origin).unwrap();
        let impact = assess(
            &world,
            &ControlPlaneIncident::PrefixHijack {
                origin: hijacker,
                victim_prefix: victim.net,
            },
        );
        assert_eq!(impact.kind, "prefix-hijack");
        assert_eq!(impact.offender, hijacker);
        assert!(!impact.affected_ases.is_empty(), "the hijacker captures at least itself");
        assert!(impact.affected_ases.contains(&hijacker));
        assert!(!impact.affected_ases.contains(&victim.origin));
        assert!((0.0..=1.0).contains(&impact.affected_fraction));
        assert!(!impact.affected_countries.is_empty());

        // Hijacking an unknown prefix captures nothing.
        let nothing = assess(
            &world,
            &ControlPlaneIncident::PrefixHijack {
                origin: hijacker,
                victim_prefix: net_model::Ipv4Net::parse("203.0.113.0/24").unwrap(),
            },
        );
        assert!(nothing.affected_ases.is_empty());
    }

    #[test]
    fn leak_impact_matches_routing_diff() {
        let world = fixture();
        let graph = quiet_graph(&world);
        let leaker = world
            .ases
            .iter()
            .map(|a| a.asn)
            .find(|&a| graph.providers(a).len() >= 2)
            .expect("multi-homed AS");
        let impact = assess(&world, &ControlPlaneIncident::RouteLeak { leaker });
        assert_eq!(impact.kind, "route-leak");
        assert!(!impact.affected_ases.is_empty(), "a multi-homed leak moves paths");
        assert!(impact.affected_fraction > 0.0);
    }
}
