//! Standard case-study scenarios — the measurement conditions under which
//! the paper's four queries are asked.

use std::sync::Arc;

use net_model::{Region, SimDuration, SimTime};
use world::{EventKind, Scenario, WorldConfig};

/// The standard evaluation world (seed 42), served from the process-wide
/// content-addressed world cache: the five case-study scenarios (and any
/// engine fleet naming the default config) share **one** generation per
/// process instead of regenerating per scenario.
pub fn standard_world() -> Arc<world::World> {
    scenario_forge::global_cache().get_or_generate(&WorldConfig::default())
}

/// CS1 — "impact at a country level due to SeaMeWe-5 cable failure".
/// The failure is *hypothetical* (what-if analysis), so the measurement
/// record itself is quiet.
pub fn cs1_scenario() -> Scenario {
    Scenario::quiet(standard_world(), 10)
}

/// CS2 — "severe earthquakes and hurricanes globally at 10% failure
/// probability". Also a what-if: quiet record.
pub fn cs2_scenario() -> Scenario {
    Scenario::quiet(standard_world(), 10)
}

/// CS3 — "cascading effects of submarine cable failures between Europe and
/// Asia". The record *contains* the corridor failures (the 2022 AAE-1
/// pattern: two systems failing in close succession), so the temporal
/// sub-analyses have real BGP and latency evolution to observe.
pub fn cs3_scenario() -> Scenario {
    let world = standard_world();
    let smw5 = world.cable_by_name("SeaMeWe-5").expect("curated").id;
    let aae1 = world.cable_by_name("AAE-1").expect("curated").id;
    let t1 = SimTime::EPOCH + SimDuration::days(4);
    let t2 = t1 + SimDuration::hours(10);
    Scenario::quiet(world, 10)
        .with_event(EventKind::CableCut { cable: smw5 }, t1)
        .with_event(EventKind::CableCut { cable: aae1 }, t2)
}

/// The cable cut in the CS4 scenario.
pub const CS4_CULPRIT: &str = "SeaMeWe-4";

/// CS4 — the forensic scenario: a Europe–Asia cable fails three days
/// before "now", producing the latency anomaly the query asks about.
pub fn cs4_scenario() -> Scenario {
    let world = standard_world();
    let cable = world.cable_by_name(CS4_CULPRIT).expect("curated").id;
    let horizon_days = 14;
    let cut_at = SimTime::EPOCH + SimDuration::days(horizon_days - 3);
    Scenario::quiet(world, horizon_days).with_event(EventKind::CableCut { cable }, cut_at)
}

/// CS4 negative control — the same latency symptom caused by congestion,
/// with **no** cable failure. A sound forensic workflow must not blame a
/// cable here.
pub fn cs4_negative_scenario() -> Scenario {
    let world = standard_world();
    let horizon_days = 14;
    let start = SimTime::EPOCH + SimDuration::days(horizon_days - 3);
    let mut s = Scenario::quiet(world, horizon_days);
    s.push_event(
        EventKind::CongestionSurge {
            from: Region::Europe,
            to: Region::Asia,
            extra_ms: 45.0,
        },
        start,
        None,
    );
    s
}

/// The query the hijack-forensics case study serves.
pub const CS5_QUERY: &str =
    "Multiple origin ASes were observed announcing the same prefixes starting two days \
     ago. Determine whether a prefix hijack or a route leak caused this, and identify \
     the offending AS.";

/// CS5 — the control-plane forensic scenario: a transit AS starts
/// originating an access network's prefix two days before "now" (the
/// 2008 YouTube/Pakistan pattern, scaled down), so the update stream and
/// RIB carry a live MOAS conflict for the forensics workflow to find.
///
/// Victim and hijacker are picked structurally — the same
/// `AsTarget::TierRank` resolution the `targeted-prefix-hijack` scenario
/// family uses — so the scenario stays stable under world regeneration.
pub fn cs5_hijack_scenario() -> Scenario {
    let world = standard_world();
    let (hijacker, victim_prefix) = cs5_actors(&world);
    let horizon_days = 10;
    let at = SimTime::EPOCH + SimDuration::days(horizon_days - 2);
    Scenario::quiet(world, horizon_days)
        .with_event(EventKind::PrefixHijack { origin: hijacker, victim_prefix }, at)
}

/// The hijacker ASN and victim prefix of [`cs5_hijack_scenario`].
pub fn cs5_actors(world: &world::World) -> (net_model::Asn, net_model::Ipv4Net) {
    use scenario_forge::script::AsTarget;
    let hijacker = AsTarget::TierRank {
        region: net_model::Region::Europe,
        tier: world::AsTier::Transit,
        rank: 0,
    }
    .resolve(world)
    .expect("the standard world has European transit ASes");
    let victim = AsTarget::TierRank {
        region: net_model::Region::Asia,
        tier: world::AsTier::Access,
        rank: 0,
    }
    .resolve(world)
    .expect("the standard world has Asian access ASes");
    let victim_prefix = world
        .prefixes
        .iter()
        .filter(|p| p.origin == victim)
        .map(|p| p.net)
        .min()
        .expect("access ASes announce prefixes");
    (hijacker, victim_prefix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cs3_has_two_cable_cuts_in_order() {
        let s = cs3_scenario();
        let tl = s.timeline();
        assert_eq!(tl.len(), 2);
        assert!(tl[0].0 < tl[1].0);
    }

    #[test]
    fn cs4_cut_lands_three_days_before_now() {
        let s = cs4_scenario();
        let tl = s.timeline();
        assert_eq!(tl.len(), 1);
        assert_eq!(s.now.since(tl[0].0), SimDuration::days(3));
    }

    #[test]
    fn cs4_negative_has_no_failed_links() {
        let s = cs4_negative_scenario();
        assert!(s.links_down_at(s.now).is_empty());
        assert_eq!(
            s.congestion_extra_ms(s.now - SimDuration::days(1), Region::Europe, Region::Asia),
            45.0
        );
    }

    #[test]
    fn what_if_scenarios_are_quiet() {
        assert!(cs1_scenario().timeline().is_empty());
        assert!(cs2_scenario().timeline().is_empty());
    }

    #[test]
    fn case_studies_share_one_cached_world() {
        // Every case-study scenario draws the standard world from the
        // process-wide cache: same Arc, one generation.
        let quiet = cs1_scenario();
        for s in [
            cs2_scenario(),
            cs3_scenario(),
            cs4_scenario(),
            cs4_negative_scenario(),
            cs5_hijack_scenario(),
        ] {
            assert!(Arc::ptr_eq(&quiet.world, &s.world));
        }
    }

    #[test]
    fn cs5_hijack_is_live_at_now_and_fails_nothing() {
        let s = cs5_hijack_scenario();
        let (hijacker, prefix) = cs5_actors(&s.world);
        let legit = s.world.prefixes.iter().find(|p| p.net == prefix).unwrap();
        assert_ne!(legit.origin, hijacker, "hijacker must not own the prefix");
        let control = s.control_plane_at(s.now - SimDuration::hours(1));
        assert_eq!(control.hijacks, vec![(prefix, hijacker)]);
        assert!(s.links_down_at(s.now).is_empty(), "control plane fails no links");
        assert_eq!(s.now.since(s.timeline()[0].0), SimDuration::days(2));
    }
}
