//! # toolkit — binding ArachNet to the measurement substrates
//!
//! The registry describes *what* tools can do; this crate supplies the
//! *how*:
//!
//! * [`catalog`] — `standard_registry()`, the curated capability catalog
//!   over all four measurement frameworks (Nautilus, Xaminer, BGP,
//!   traceroute) plus utility/QA functions;
//! * [`runtime`] — [`StandardRuntime`], the [`workflow::ToolRuntime`]
//!   implementation dispatching every function id onto the substrate
//!   crates, with artifact caching;
//! * [`data`] — the JSON payload schemas flowing between steps;
//! * [`analysis`] — the analytical utilities the generated workflows rely
//!   on (latency anomaly detection, suspect-cable scoring, evidence
//!   correlation and synthesis, unified timelines);
//! * [`disasters`] — the global disaster-zone catalog used for what-if
//!   disaster compilation;
//! * [`scenarios`] — the standard case-study scenarios (CS1–CS4 plus a
//!   forensic negative control).

pub mod analysis;
pub mod catalog;
pub mod data;
pub mod disasters;
pub mod metrics;
pub mod resilience;
pub mod runtime;
pub mod scenarios;

pub use catalog::{query_context, standard_registry};
pub use metrics::QueryMetrics;
pub use resilience::{
    BreakerConfig, BreakerPhase, ResilienceConfig, ResilienceStats, ResilientRuntime,
};
pub use runtime::{ArtifactStore, StandardRuntime};

#[cfg(test)]
mod tests {
    use super::*;
    use registry::FunctionId;
    use workflow::ToolRuntime;

    #[test]
    fn registry_and_runtime_cover_the_same_functions() {
        let registry = standard_registry();
        let scenario = scenarios::cs1_scenario();
        let runtime = StandardRuntime::new(scenario);
        for entry in registry.iter() {
            if entry.framework == "composite" {
                continue;
            }
            // Invoking with empty args must fail with BadArgument (missing
            // input) or succeed — never Unbound.
            let result = runtime.invoke(&entry.id, &Default::default());
            if let Err(workflow::ToolError::Unbound(id)) = &result {
                panic!("registry entry {id} has no runtime binding");
            }
        }
        // And an unknown id is Unbound.
        let err = runtime.invoke(&FunctionId::from("nope.nothing"), &Default::default());
        assert!(matches!(err, Err(workflow::ToolError::Unbound(_))));
    }
}
