//! Resilient serving wrappers: per-function circuit breakers and
//! fallback bindings.
//!
//! A [`ResilientRuntime`] wraps any [`ToolRuntime`] (typically the
//! [`crate::StandardRuntime`], optionally under a chaos injector) and
//! adds two production-serving behaviors:
//!
//! * **circuit breaking** — after `trip_after` consecutive
//!   [`ToolError::Failed`] results from one function, the breaker opens
//!   and subsequent invocations are shed without touching the tool for
//!   `cooldown_invocations` calls; the next call after the cooldown
//!   half-opens the circuit and probes the primary once, closing on
//!   success and re-opening on failure. All state is *counter-based* —
//!   trips, cooldowns and probes advance per invocation, never per
//!   wall-clock second, so breaker behavior is reproducible.
//! * **fallbacks** — a function id can be bound to a substitute (e.g.
//!   `bgp.updates` → `bgp.updates_reference`): when the primary fails or
//!   its circuit is open, the substitute is invoked instead, and the
//!   step carries the substitute's output.
//!
//! Breaker state is per-runtime, and runtimes are built per
//! epoch-pinned session (see `arachnet::Session`): a curated registry
//! swap never leaks breaker counters across epochs, because the new
//! epoch's sessions start with fresh wrappers.
//!
//! Determinism note: counters are shared across worker threads, so the
//! *sequence* of breaker transitions is deterministic for sequential
//! execution (workers = 1) or per-function serialized call patterns.
//! Chaos-suite determinism pins the retry/degradation layers; breaker
//! trip sequences are pinned by their own sequential tests.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use registry::{FunctionId, Registry};
use telemetry::{EventKind, Recorder};
use workflow::exec::{InvokeContext, ToolError, ToolRuntime, Value};

/// Counter-based breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive `Failed` results that open the circuit.
    pub trip_after: u32,
    /// Invocations shed while open before the circuit half-opens.
    pub cooldown_invocations: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { trip_after: 3, cooldown_invocations: 5 }
    }
}

/// Full resilience wiring for a runtime: breaker tuning plus fallback
/// bindings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceConfig {
    pub breaker: BreakerConfig,
    /// primary function id → substitute invoked when the primary fails
    /// or its circuit is open.
    pub fallbacks: BTreeMap<FunctionId, FunctionId>,
}

impl ResilienceConfig {
    pub fn new(breaker: BreakerConfig) -> ResilienceConfig {
        ResilienceConfig { breaker, fallbacks: BTreeMap::new() }
    }

    /// Binds a fallback function.
    pub fn with_fallback(mut self, primary: &str, substitute: &str) -> ResilienceConfig {
        self.fallbacks.insert(FunctionId::from(primary), FunctionId::from(substitute));
        self
    }

    /// Checks every fallback target against a registry epoch, so a
    /// curated registry swap cannot leave bindings pointing at functions
    /// the epoch no longer serves.
    pub fn validate(&self, registry: &Registry) -> Result<(), String> {
        for (primary, substitute) in &self.fallbacks {
            if registry.get(substitute).is_none() {
                return Err(format!(
                    "fallback for {primary} targets {substitute}, which this registry epoch does not define"
                ));
            }
        }
        Ok(())
    }
}

/// Observable breaker phase of one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPhase {
    Closed,
    Open,
    HalfOpen,
}

/// Internal per-function breaker state.
#[derive(Debug, Clone, Copy)]
enum BreakerState {
    Closed { consecutive_failures: u32 },
    Open { remaining_cooldown: u32 },
    HalfOpen,
}

impl BreakerState {
    /// Phase label for telemetry events.
    fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed { .. } => "Closed",
            BreakerState::Open { .. } => "Open",
            BreakerState::HalfOpen => "HalfOpen",
        }
    }
}

/// Order-independent counters of what the resilience layer did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Invocations shed because a circuit was open.
    pub shed: u64,
    /// Fallback invocations (after a primary failure or while open).
    pub fallback_invocations: u64,
    /// Circuit-open transitions.
    pub trips: u64,
}

/// The wrapper. See the module docs for semantics.
pub struct ResilientRuntime<R> {
    inner: R,
    config: ResilienceConfig,
    breakers: Mutex<BTreeMap<FunctionId, BreakerState>>,
    stats: Mutex<ResilienceStats>,
    /// Optional telemetry sink: breaker transitions, sheds and fallback
    /// substitutions become trace events.
    recorder: Option<Arc<Recorder>>,
}

impl<R: ToolRuntime> ResilientRuntime<R> {
    pub fn new(inner: R, config: ResilienceConfig) -> ResilientRuntime<R> {
        ResilientRuntime {
            inner,
            config,
            breakers: Mutex::new(BTreeMap::new()),
            stats: Mutex::new(ResilienceStats::default()),
            recorder: None,
        }
    }

    /// Attach a telemetry recorder. Events observed during an executor
    /// invocation are buffered per `(step, attempt)` and drained into the
    /// trace by the executor's deterministic fold; events on the
    /// context-free `invoke` path are counted in metrics only. Breaker
    /// transition *sequences* within one step's retry loop are serialized
    /// (one thread) and therefore deterministic — see the module docs for
    /// the cross-step caveat.
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> ResilientRuntime<R> {
        self.recorder = Some(recorder);
        self
    }

    /// Buffer (with executor context) or count (without) a trace event.
    fn note(&self, key: Option<(&str, u32)>, kind: EventKind) {
        if let Some(recorder) = &self.recorder {
            match key {
                Some((step, attempt)) => recorder.emit_invocation(step, attempt, kind),
                None => recorder.count_event(&kind),
            }
        }
    }

    /// The wrapped runtime.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// A snapshot of the resilience counters.
    pub fn stats(&self) -> ResilienceStats {
        *self.stats.lock()
    }

    /// The observable breaker phase of a function (Closed when never
    /// invoked).
    pub fn breaker_phase(&self, function: &FunctionId) -> BreakerPhase {
        match self.breakers.lock().get(function) {
            None | Some(BreakerState::Closed { .. }) => BreakerPhase::Closed,
            Some(BreakerState::Open { .. }) => BreakerPhase::Open,
            Some(BreakerState::HalfOpen) => BreakerPhase::HalfOpen,
        }
    }

    /// Decides, atomically, whether this invocation may reach the
    /// primary. Returns `false` when the circuit is open (the call must
    /// be shed), advancing the cooldown counter as a side effect; the
    /// second element reports an Open→HalfOpen transition for telemetry.
    fn admit(&self, function: &FunctionId) -> (bool, Option<(&'static str, &'static str)>) {
        let mut breakers = self.breakers.lock();
        let state = breakers
            .entry(function.clone())
            .or_insert(BreakerState::Closed { consecutive_failures: 0 });
        match *state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => (true, None),
            BreakerState::Open { remaining_cooldown } => {
                let transition = if remaining_cooldown <= 1 {
                    *state = BreakerState::HalfOpen;
                    Some(("Open", "HalfOpen"))
                } else {
                    *state = BreakerState::Open { remaining_cooldown: remaining_cooldown - 1 };
                    None
                };
                (false, transition)
            }
        }
    }

    /// Records a primary outcome and advances the breaker, returning the
    /// phase transition (if any) for telemetry.
    fn record(
        &self,
        function: &FunctionId,
        failed: bool,
    ) -> Option<(&'static str, &'static str)> {
        let open = BreakerState::Open {
            remaining_cooldown: self.config.breaker.cooldown_invocations.max(1),
        };
        let mut tripped = false;
        let transition;
        {
            let mut breakers = self.breakers.lock();
            let state = breakers
                .entry(function.clone())
                .or_insert(BreakerState::Closed { consecutive_failures: 0 });
            let from = state.label();
            *state = match (*state, failed) {
                (BreakerState::Closed { consecutive_failures }, true) => {
                    if consecutive_failures + 1 >= self.config.breaker.trip_after {
                        tripped = true;
                        open
                    } else {
                        BreakerState::Closed { consecutive_failures: consecutive_failures + 1 }
                    }
                }
                (BreakerState::HalfOpen, true) => {
                    tripped = true;
                    open
                }
                (_, false) => BreakerState::Closed { consecutive_failures: 0 },
                (still_open @ BreakerState::Open { .. }, true) => still_open,
            };
            let to = state.label();
            transition = if from != to { Some((from, to)) } else { None };
        }
        if tripped {
            self.stats.lock().trips += 1;
        }
        transition
    }

    /// The shared serving path: breaker admission, primary invocation,
    /// fallback substitution. `key` is the executor invocation context
    /// (step id, attempt) when available, used to attach telemetry
    /// events to the right attempt span.
    fn dispatch(
        &self,
        key: Option<(&str, u32)>,
        function: &FunctionId,
        call: impl Fn(&R, &FunctionId) -> Result<Value, ToolError>,
    ) -> Result<Value, ToolError> {
        let fallback = self.config.fallbacks.get(function);
        let (admitted, transition) = self.admit(function);
        if let Some((from, to)) = transition {
            self.note(
                key,
                EventKind::BreakerTransition {
                    function: function.to_string(),
                    from: from.to_string(),
                    to: to.to_string(),
                },
            );
        }
        if !admitted {
            self.stats.lock().shed += 1;
            self.note(key, EventKind::CallShed { function: function.to_string() });
            if let Some(substitute) = fallback {
                self.stats.lock().fallback_invocations += 1;
                self.note(
                    key,
                    EventKind::FallbackInvoked {
                        function: function.to_string(),
                        substitute: substitute.to_string(),
                    },
                );
                return call(&self.inner, substitute);
            }
            return Err(ToolError::Failed {
                function: function.clone(),
                message: format!(
                    "circuit open after {} consecutive failures; call shed",
                    self.config.breaker.trip_after
                ),
                // The circuit re-closes after the cooldown, so shedding
                // is transient by construction.
                transient: true,
            });
        }
        let primary = call(&self.inner, function);
        let failed = matches!(primary, Err(ToolError::Failed { .. }));
        if let Some((from, to)) = self.record(function, failed) {
            self.note(
                key,
                EventKind::BreakerTransition {
                    function: function.to_string(),
                    from: from.to_string(),
                    to: to.to_string(),
                },
            );
        }
        match (primary, fallback) {
            (Err(ToolError::Failed { .. }), Some(substitute)) => {
                self.stats.lock().fallback_invocations += 1;
                self.note(
                    key,
                    EventKind::FallbackInvoked {
                        function: function.to_string(),
                        substitute: substitute.to_string(),
                    },
                );
                call(&self.inner, substitute)
            }
            (other, _) => other,
        }
    }
}

impl<R: ToolRuntime> ToolRuntime for ResilientRuntime<R> {
    fn invoke(
        &self,
        function: &FunctionId,
        args: &BTreeMap<String, Value>,
    ) -> Result<Value, ToolError> {
        self.dispatch(None, function, |inner, f| inner.invoke(f, args))
    }

    fn invoke_with(
        &self,
        ctx: &InvokeContext<'_>,
        function: &FunctionId,
        args: &BTreeMap<String, Value>,
    ) -> Result<Value, ToolError> {
        self.dispatch(Some((&ctx.step.0, ctx.attempt)), function, |inner, f| {
            inner.invoke_with(ctx, f, args)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use registry::DataFormat;

    /// A runtime with one failing primary and one healthy substitute.
    struct SplitRuntime;

    impl ToolRuntime for SplitRuntime {
        fn invoke(
            &self,
            function: &FunctionId,
            _args: &BTreeMap<String, Value>,
        ) -> Result<Value, ToolError> {
            match function.0.as_str() {
                "t.flaky" => Err(ToolError::Failed {
                    function: function.clone(),
                    message: "down".into(),
                    transient: true,
                }),
                other => Ok(Value::new(DataFormat::Table, serde_json::json!([other]))),
            }
        }
    }

    fn invoke(rt: &impl ToolRuntime, f: &str) -> Result<Value, ToolError> {
        rt.invoke(&FunctionId::from(f), &BTreeMap::new())
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_and_half_opens() {
        let config = ResilienceConfig::new(BreakerConfig { trip_after: 3, cooldown_invocations: 2 });
        let rt = ResilientRuntime::new(SplitRuntime, config);
        let f = FunctionId::from("t.flaky");
        // Three primary failures trip the circuit.
        for _ in 0..3 {
            assert!(invoke(&rt, "t.flaky").is_err());
        }
        assert_eq!(rt.breaker_phase(&f), BreakerPhase::Open);
        assert_eq!(rt.stats().trips, 1);
        // Two shed invocations drain the cooldown...
        assert!(invoke(&rt, "t.flaky").is_err());
        assert!(invoke(&rt, "t.flaky").is_err());
        assert_eq!(rt.stats().shed, 2);
        // ...then the next call half-opens and probes the (still broken)
        // primary, re-opening the circuit.
        assert_eq!(rt.breaker_phase(&f), BreakerPhase::HalfOpen);
        assert!(invoke(&rt, "t.flaky").is_err());
        assert_eq!(rt.breaker_phase(&f), BreakerPhase::Open);
        assert_eq!(rt.stats().trips, 2);
    }

    #[test]
    fn half_open_probe_success_closes_the_circuit() {
        use std::sync::atomic::{AtomicBool, Ordering};
        struct Recovering {
            healthy: AtomicBool,
        }
        impl ToolRuntime for Recovering {
            fn invoke(
                &self,
                function: &FunctionId,
                _args: &BTreeMap<String, Value>,
            ) -> Result<Value, ToolError> {
                if self.healthy.load(Ordering::SeqCst) {
                    Ok(Value::new(DataFormat::Scalar, serde_json::json!(1)))
                } else {
                    Err(ToolError::Failed {
                        function: function.clone(),
                        message: "down".into(),
                        transient: true,
                    })
                }
            }
        }
        let config = ResilienceConfig::new(BreakerConfig { trip_after: 2, cooldown_invocations: 1 });
        let rt = ResilientRuntime::new(Recovering { healthy: AtomicBool::new(false) }, config);
        let f = FunctionId::from("t.svc");
        assert!(invoke(&rt, "t.svc").is_err());
        assert!(invoke(&rt, "t.svc").is_err());
        assert_eq!(rt.breaker_phase(&f), BreakerPhase::Open);
        // Service recovers while the circuit is open.
        rt.inner().healthy.store(true, Ordering::SeqCst);
        assert!(invoke(&rt, "t.svc").is_err(), "cooldown invocation is still shed");
        assert_eq!(rt.breaker_phase(&f), BreakerPhase::HalfOpen);
        assert!(invoke(&rt, "t.svc").is_ok(), "half-open probe reaches the primary");
        assert_eq!(rt.breaker_phase(&f), BreakerPhase::Closed);
    }

    #[test]
    fn fallback_substitutes_on_failure_and_while_open() {
        let config = ResilienceConfig::new(BreakerConfig { trip_after: 2, cooldown_invocations: 8 })
            .with_fallback("t.flaky", "t.reference");
        let rt = ResilientRuntime::new(SplitRuntime, config);
        // Primary fails → fallback output is served, call still counts
        // toward the trip.
        let first = invoke(&rt, "t.flaky").unwrap();
        assert_eq!(first.json(), &serde_json::json!(["t.reference"]));
        let second = invoke(&rt, "t.flaky").unwrap();
        assert_eq!(second.json(), &serde_json::json!(["t.reference"]));
        assert_eq!(rt.breaker_phase(&FunctionId::from("t.flaky")), BreakerPhase::Open);
        // While open, the primary is never touched but the fallback still
        // serves.
        let shed = invoke(&rt, "t.flaky").unwrap();
        assert_eq!(shed.json(), &serde_json::json!(["t.reference"]));
        assert_eq!(rt.stats().shed, 1);
        assert_eq!(rt.stats().fallback_invocations, 3);
    }

    #[test]
    fn non_failure_errors_do_not_trip_the_breaker() {
        struct BadArgs;
        impl ToolRuntime for BadArgs {
            fn invoke(
                &self,
                function: &FunctionId,
                _args: &BTreeMap<String, Value>,
            ) -> Result<Value, ToolError> {
                Err(ToolError::BadArgument { function: function.clone(), message: "no".into() })
            }
        }
        let config = ResilienceConfig::new(BreakerConfig { trip_after: 1, cooldown_invocations: 1 });
        let rt = ResilientRuntime::new(BadArgs, config);
        for _ in 0..4 {
            assert!(matches!(invoke(&rt, "t.x"), Err(ToolError::BadArgument { .. })));
        }
        assert_eq!(rt.breaker_phase(&FunctionId::from("t.x")), BreakerPhase::Closed);
        assert_eq!(rt.stats().trips, 0);
    }

    #[test]
    fn validate_rejects_unknown_fallback_targets() {
        let registry = crate::standard_registry();
        let ok = ResilienceConfig::default().with_fallback("bgp.updates", "bgp.detect_moas");
        assert!(ok.validate(&registry).is_ok());
        let bad = ResilienceConfig::default().with_fallback("bgp.updates", "no.such_function");
        assert!(bad.validate(&registry).is_err());
    }
}
