//! Campaign metrics: reducing one executed run to the numbers a
//! fleet-scale study aggregates.
//!
//! A campaign runner executes thousands of scenario-queries; what it
//! keeps per query is not the full [`ExecutionReport`] but a small,
//! deterministic reduction of it: how much impact the workflow
//! measured, what the control-plane detectors surfaced, and whether any
//! detector fired at all. Extraction is a pure function of the
//! (workflow, report) pair — step values are matched by the *function
//! id* the step invoked, not by step-name heuristics, so renamed plans
//! keep extracting identically.

use bgp_sim::{MoasConflict, ValleyViolation};
use workflow::{ExecutionReport, Workflow};

use crate::data::{ControlPlaneReportData, CountryTableData};

/// The per-query reduction a campaign aggregates over.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryMetrics {
    /// Summed `impact_score` over every country-impact table the run
    /// produced as an output (0.0 when the plan measured no impact).
    pub impact_score: f64,
    /// MOAS conflicts surfaced by `bgp.detect_moas` steps.
    pub moas_conflicts: usize,
    /// Export-policy violations surfaced by `bgp.valley_violations` steps.
    pub valley_violations: usize,
    /// Whether a control-plane forensics output attributed an incident
    /// (`kind != "none"`).
    pub incident_attributed: bool,
}

impl QueryMetrics {
    /// Whether any detector surfaced evidence.
    pub fn detector_hit(&self) -> bool {
        self.moas_conflicts > 0 || self.valley_violations > 0 || self.incident_attributed
    }

    /// Extracts the metrics from an executed workflow. Steps are matched
    /// by function id; outputs are parsed structurally (a value either
    /// is a country-impact table / control-plane report or it is not).
    /// Failed or poisoned steps simply contribute nothing — a degraded
    /// run yields the metrics its surviving steps still support.
    pub fn extract(workflow: &Workflow, report: &ExecutionReport) -> QueryMetrics {
        let mut metrics = QueryMetrics::default();
        for step in &workflow.steps {
            let Some(value) = report.results.get(&step.id).and_then(|r| r.value()) else {
                continue;
            };
            match step.function.0.as_str() {
                "bgp.detect_moas" => {
                    if let Ok(conflicts) = value.parse::<Vec<MoasConflict>>() {
                        metrics.moas_conflicts += conflicts.len();
                    }
                }
                "bgp.valley_violations" => {
                    if let Ok(violations) = value.parse::<Vec<ValleyViolation>>() {
                        metrics.valley_violations += violations.len();
                    }
                }
                _ => {}
            }
        }
        for value in report.outputs.values() {
            if let Ok(table) = value.parse::<CountryTableData>() {
                metrics.impact_score +=
                    table.rows.iter().map(|r| r.impact_score).sum::<f64>();
            }
            if let Ok(cp) = value.parse::<ControlPlaneReportData>() {
                if cp.kind != "none" {
                    metrics.incident_attributed = true;
                }
            }
        }
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{catalog, scenarios};
    use registry::DataFormat;
    use workflow::{Binding, Step, StepId};

    /// The canonical forensics chain over the CS5 hijack scenario, built
    /// by hand so the test pins extraction, not planning.
    fn forensics_workflow(scenario: &world::Scenario) -> Workflow {
        let window = serde_json::json!({
            "start": scenario.horizon.start.0,
            "end": scenario.now.0,
        });
        let mut wf = Workflow::new("metrics-forensics", "attribute the incident");
        wf.steps = vec![
            Step::new("updates", "bgp.updates")
                .bind("window", Binding::constant(DataFormat::TimeWindow, window)),
            Step::new("moas", "bgp.detect_moas").bind_step("updates", "updates"),
            Step::new("valleys", "bgp.valley_violations").bind_step("updates", "updates"),
            Step::new("attrib", "util.attribute_control_plane")
                .bind_step("moas", "moas")
                .bind_step("valleys", "valleys"),
            Step::new("impact", "xaminer.control_plane_impact").bind_step("report", "attrib"),
        ];
        wf.outputs = vec![StepId::from("attrib"), StepId::from("impact")];
        wf
    }

    #[test]
    fn forensics_run_extracts_detector_metrics() {
        let scenario = scenarios::cs5_hijack_scenario();
        let workflow = forensics_workflow(&scenario);
        let registry = catalog::standard_registry();
        let runtime = crate::StandardRuntime::new(scenario);
        let report = workflow::execute(&workflow, &registry, &runtime, &Default::default());
        assert!(report.all_ok(), "forensics chain executes: {:?}", report.results);
        let metrics = QueryMetrics::extract(&workflow, &report);
        assert!(metrics.moas_conflicts > 0, "hijack surfaces MOAS conflicts");
        assert!(metrics.incident_attributed, "forensics attributes the incident");
        assert!(metrics.impact_score > 0.0, "attributed incident has impact");
        assert!(metrics.detector_hit());
    }

    #[test]
    fn empty_report_extracts_default_metrics() {
        let workflow = Workflow::new("w", "q");
        let report = workflow::execute(
            &workflow,
            &catalog::standard_registry(),
            &crate::StandardRuntime::new(scenarios::cs1_scenario()),
            &Default::default(),
        );
        let metrics = QueryMetrics::extract(&workflow, &report);
        assert_eq!(metrics, QueryMetrics::default());
        assert!(!metrics.detector_hit());
    }
}
