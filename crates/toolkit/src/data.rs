//! JSON payload schemas for values flowing between workflow steps.
//!
//! Substrate types (dependency tables, impact reports, cascade timelines…)
//! serialize directly via serde; this module adds the toolkit-level
//! schemas that have no substrate equivalent.

use serde::{Deserialize, Serialize};

/// `CableRef`: a resolved cable system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CableRefData {
    pub id: u32,
    pub name: String,
}

/// One traceroute measurement in a campaign, reduced to what analyses use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementData {
    pub probe: u32,
    pub dst: String,
    pub time: i64,
    /// End-to-end RTT; `None` when the trace did not complete.
    pub rtt_ms: Option<f64>,
    /// IP links traversed (ids), for cross-layer joins.
    pub links: Vec<u32>,
}

/// `TracerouteCampaign`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignData {
    pub src_region: String,
    pub dst_region: String,
    pub window_start: i64,
    pub window_end: i64,
    pub interval_s: i64,
    pub measurements: Vec<MeasurementData>,
}

/// `RttSeries`: bucketed mean RTT over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesData {
    pub bucket_seconds: i64,
    /// `(bucket start, mean rtt, samples)`.
    pub points: Vec<(i64, f64, usize)>,
}

/// One probe/destination pair affected by a latency anomaly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffectedPair {
    pub probe: u32,
    pub dst: String,
    pub before_ms: f64,
    pub after_ms: f64,
    pub delta_ms: f64,
    /// Union of links the pair's traffic rode *before* the anomaly onset
    /// (across samples and flows).
    pub pre_links: Vec<u32>,
    /// Union of links it rides *after* the onset; pre-onset links missing
    /// here have vanished from the forwarding path — the cross-layer
    /// smoking gun.
    #[serde(default)]
    pub post_links: Vec<u32>,
}

impl AffectedPair {
    /// Pre-onset links that no longer appear post-onset.
    pub fn vanished_links(&self) -> Vec<u32> {
        self.pre_links.iter().copied().filter(|l| !self.post_links.contains(l)).collect()
    }
}

/// `AnomalyReport`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalyData {
    pub detected: bool,
    /// Onset instant (bucket start), when detected.
    pub onset: Option<i64>,
    pub baseline_ms: f64,
    pub anomalous_ms: f64,
    /// How many baseline standard deviations the shift represents.
    pub z_score: f64,
    pub affected_pairs: Vec<AffectedPair>,
    /// Every link observed in any pre-onset forwarding path (all pairs).
    #[serde(default)]
    pub pre_observed_links: Vec<u32>,
    /// Every link observed in any post-onset forwarding path — a cable
    /// whose links appear here is demonstrably still carrying traffic.
    #[serde(default)]
    pub post_observed_links: Vec<u32>,
}

/// One ranked suspect cable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuspectEntry {
    pub cable: u32,
    pub name: String,
    /// Normalized score in `[0, 1]`; all entries sum to 1.
    pub score: f64,
    /// Distinct affected links attributed to this cable.
    pub evidence_links: usize,
}

/// `SuspectRanking`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SuspectData {
    pub ranked: Vec<SuspectEntry>,
}

/// `CorrelationReport`: BGP churn vs latency anomaly timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationData {
    /// Whether a BGP burst aligns with the anomaly onset.
    pub aligned: bool,
    /// Burst-to-onset lag (seconds, burst minus onset) of the closest
    /// burst, when any burst exists.
    pub lag_seconds: Option<i64>,
    pub burst_count: usize,
    pub onset: Option<i64>,
    /// Confidence contributed by this evidence stream, `[0, 1]`.
    pub confidence: f64,
}

/// `ForensicVerdict`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerdictData {
    /// Did a cable failure cause the anomaly?
    pub cable_caused: bool,
    /// The identified cable, when `cable_caused`.
    pub cable: Option<String>,
    pub cable_id: Option<u32>,
    /// Overall confidence, `[0, 1]`.
    pub confidence: f64,
    /// Evidence narrative for the analyst.
    pub narrative: String,
}

/// One event on the unified multi-layer timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineEvent {
    pub t: i64,
    /// "cable" | "ip" | "as" | "routing" | "latency".
    pub layer: String,
    pub description: String,
}

/// `UnifiedTimeline`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimelineData {
    pub events: Vec<TimelineEvent>,
    /// Distinct layers represented, sorted.
    pub layers: Vec<String>,
}

/// `CountryImpactTable` row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountryRow {
    pub country: String,
    pub ips_affected: usize,
    pub links_affected: usize,
    pub ases_affected: usize,
    pub as_links_affected: usize,
    pub impact_score: f64,
}

/// `CountryImpactTable`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CountryTableData {
    pub rows: Vec<CountryRow>,
}

impl CountryTableData {
    /// Top-n country codes by impact score.
    pub fn top_countries(&self, n: usize) -> Vec<&str> {
        self.rows.iter().take(n).map(|r| r.country.as_str()).collect()
    }
}

/// `ControlPlaneReport`: an attributed control-plane incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlPlaneReportData {
    /// `"prefix-hijack"` | `"route-leak"` | `"none"`.
    pub kind: String,
    /// The offending AS, when an incident was attributed.
    pub offender: Option<u32>,
    /// Hijacked prefixes (string form), ascending; empty for leaks.
    pub victim_prefixes: Vec<String>,
    pub moas_conflicts: usize,
    pub valley_violations: usize,
    /// Attribution confidence, `[0, 1]`.
    pub confidence: f64,
    /// Evidence narrative for the analyst.
    pub narrative: String,
}

/// `QaReport`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QaData {
    pub passed: bool,
    pub checks: Vec<String>,
    pub notes: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_roundtrip() {
        let v = VerdictData {
            cable_caused: true,
            cable: Some("SeaMeWe-5".into()),
            cable_id: Some(0),
            confidence: 0.92,
            narrative: "latency shift aligned with BGP burst".into(),
        };
        let json = serde_json::to_value(&v).unwrap();
        let back: VerdictData = serde_json::from_value(json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn country_table_top() {
        let t = CountryTableData {
            rows: vec![
                CountryRow {
                    country: "EG".into(),
                    ips_affected: 10,
                    links_affected: 5,
                    ases_affected: 2,
                    as_links_affected: 3,
                    impact_score: 0.8,
                },
                CountryRow {
                    country: "IN".into(),
                    ips_affected: 6,
                    links_affected: 3,
                    ases_affected: 1,
                    as_links_affected: 2,
                    impact_score: 0.5,
                },
            ],
        };
        assert_eq!(t.top_countries(1), vec!["EG"]);
    }
}
