//! The global disaster-zone catalog: where "severe earthquakes and
//! hurricanes globally" actually strike.
//!
//! Real what-if studies use hazard maps (Ring of Fire seismicity, Atlantic
//! and Pacific storm belts); this curated catalog plays that role. Each
//! zone has a name, an epicentre, and a footprint radius; compiling a
//! disaster query instantiates every zone of the requested kinds with the
//! stated failure probability.

use net_model::GeoPoint;
use world::events::DisasterSpec;

/// One hazard zone.
#[derive(Debug, Clone)]
pub struct HazardZone {
    pub name: &'static str,
    pub kind: &'static str,
    pub lat: f64,
    pub lon: f64,
    pub radius_km: f64,
}

/// The catalog: seismic zones follow subduction margins; storm zones
/// follow the tropical cyclone belts.
pub const HAZARD_ZONES: &[HazardZone] = &[
    // Earthquakes — Ring of Fire and Alpide belt.
    HazardZone { name: "Nankai Trough", kind: "earthquake", lat: 34.0, lon: 137.5, radius_km: 450.0 },
    HazardZone { name: "Taiwan Collision", kind: "earthquake", lat: 23.8, lon: 121.2, radius_km: 350.0 },
    HazardZone { name: "Sunda Megathrust", kind: "earthquake", lat: -4.5, lon: 102.0, radius_km: 600.0 },
    HazardZone { name: "Aegean Arc", kind: "earthquake", lat: 37.0, lon: 25.0, radius_km: 400.0 },
    HazardZone { name: "Anatolian Fault", kind: "earthquake", lat: 40.8, lon: 30.5, radius_km: 350.0 },
    HazardZone { name: "San Andreas", kind: "earthquake", lat: 34.2, lon: -118.5, radius_km: 400.0 },
    HazardZone { name: "Makran Margin", kind: "earthquake", lat: 25.2, lon: 62.0, radius_km: 450.0 },
    // Hurricanes / typhoons / cyclones.
    HazardZone { name: "Caribbean Basin", kind: "hurricane", lat: 24.5, lon: -78.0, radius_km: 700.0 },
    HazardZone { name: "US East Coast", kind: "hurricane", lat: 35.0, lon: -75.0, radius_km: 550.0 },
    HazardZone { name: "Western Pacific Typhoon Alley", kind: "hurricane", lat: 20.0, lon: 124.0, radius_km: 800.0 },
    HazardZone { name: "South China Sea", kind: "hurricane", lat: 16.0, lon: 112.0, radius_km: 600.0 },
    HazardZone { name: "Bay of Bengal", kind: "hurricane", lat: 18.0, lon: 89.0, radius_km: 600.0 },
];

/// Instantiates disaster specs for the requested kinds at probability `p`.
pub fn compile(kinds: &[String], p: f64) -> Vec<DisasterSpec> {
    HAZARD_ZONES
        .iter()
        .filter(|z| kinds.iter().any(|k| k.eq_ignore_ascii_case(z.kind)))
        .map(|z| DisasterSpec {
            kind: z.kind.to_string(),
            name: z.name.to_string(),
            footprint: net_model::geo::GeoCircle::new(GeoPoint::of(z.lat, z.lon), z.radius_km),
            failure_prob: p,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_both_kinds() {
        let quakes = HAZARD_ZONES.iter().filter(|z| z.kind == "earthquake").count();
        let storms = HAZARD_ZONES.iter().filter(|z| z.kind == "hurricane").count();
        assert!(quakes >= 5);
        assert!(storms >= 4);
    }

    #[test]
    fn compile_filters_by_kind() {
        let only_quakes = compile(&["earthquake".to_string()], 0.1);
        assert!(only_quakes.iter().all(|d| d.kind == "earthquake"));
        let both = compile(&["earthquake".to_string(), "hurricane".to_string()], 0.1);
        assert_eq!(both.len(), HAZARD_ZONES.len());
        assert!(compile(&["flood".to_string()], 0.1).is_empty());
        for d in &both {
            assert!((d.failure_prob - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zones_have_valid_coordinates() {
        for z in HAZARD_ZONES {
            assert!(net_model::GeoPoint::new(z.lat, z.lon).is_ok(), "{}", z.name);
            assert!(z.radius_km > 0.0);
        }
    }
}
