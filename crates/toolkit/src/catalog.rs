//! The standard capability catalog: every measurement function ArachNet
//! can compose, across the four frameworks plus utility and QA entries.
//!
//! Capability sentences, constraints, cost classes and reliabilities are
//! the curated "measurement API" the agents plan against (§3 of the
//! paper, "Registry: Measurement Capability Encoding").

use llm::protocol::QueryContext;
use registry::{CapabilityEntry, CostClass, DataFormat as F, Param, Registry};
use world::World;

/// Builds the standard registry.
pub fn standard_registry() -> Registry {
    let mut r = Registry::new();
    let mut add = |e: CapabilityEntry| r.register(e).expect("catalog has no duplicates");

    // --- Nautilus: cross-layer cartography --------------------------------
    add(CapabilityEntry::new(
        "nautilus.map_links",
        "nautilus",
        "maps IP links to submarine cables with confidence scores",
        vec![],
        F::MappingTable,
    )
    .with_cost(CostClass::Expensive)
    .with_reliability(0.85)
    .with_tags(&["cable", "mapping", "cross-layer", "submarine"])
    .with_constraint("inference quality depends on geolocation accuracy"));

    add(CapabilityEntry::new(
        "nautilus.dependency_table",
        "nautilus",
        "builds the cable to links/ASes/countries dependency view from a mapping",
        vec![Param::required("mapping", F::MappingTable)],
        F::DependencyTable,
    )
    .with_cost(CostClass::Cheap)
    .with_reliability(0.9)
    .with_tags(&["cable", "dependency", "cross-layer"]));

    add(CapabilityEntry::new(
        "nautilus.resolve_cable",
        "nautilus",
        "resolves a cable system by name in the cartography catalog",
        vec![Param::required("cable_name", F::Text)],
        F::CableRef,
    )
    .with_cost(CostClass::Cheap)
    .with_reliability(0.99)
    .with_tags(&["cable", "lookup", "name"]));

    add(CapabilityEntry::new(
        "nautilus.cable_dependencies",
        "nautilus",
        "extracts the links, ASes and countries depending on one cable",
        vec![
            Param::required("deps", F::DependencyTable),
            Param::required("cable", F::CableRef),
        ],
        F::CableDependencies,
    )
    .with_cost(CostClass::Cheap)
    .with_reliability(0.9)
    .with_tags(&["cable", "dependency", "extract"]));

    // --- Xaminer: resilience analysis --------------------------------------
    add(CapabilityEntry::new(
        "xaminer.process_event",
        "xaminer",
        "processes a failure event (cable, segment or disaster) into failed links and affected entities",
        vec![
            Param::required("event", F::FailureEventSpec),
            Param::required("deps", F::DependencyTable),
        ],
        F::FailureImpact,
    )
    .with_cost(CostClass::Moderate)
    .with_reliability(0.92)
    .with_tags(&["failure", "event", "impact", "core"])
    .with_constraint("handles every event family through one interface"));

    add(CapabilityEntry::new(
        "xaminer.impact_report",
        "xaminer",
        "aggregates a failure impact into normalized per-country and per-AS metrics",
        vec![Param::required("impact", F::FailureImpact)],
        F::ImpactReport,
    )
    .with_cost(CostClass::Cheap)
    .with_reliability(0.95)
    .with_tags(&["impact", "metrics", "aggregate"]));

    add(CapabilityEntry::new(
        "xaminer.country_aggregate",
        "xaminer",
        "extracts the ranked country-level impact table from an impact report",
        vec![Param::required("report", F::ImpactReport)],
        F::CountryImpactTable,
    )
    .with_cost(CostClass::Cheap)
    .with_reliability(0.95)
    .with_tags(&["country", "aggregate", "geographic", "table"]));

    add(CapabilityEntry::new(
        "xaminer.event_impact",
        "xaminer",
        "end-to-end event processing: failure events straight to a country impact table using the current cross-layer mapping",
        vec![Param::required("event", F::FailureEventSpec)],
        F::CountryImpactTable,
    )
    .with_cost(CostClass::Moderate)
    .with_reliability(0.9)
    .with_tags(&["event", "impact", "country", "high-level"])
    .with_constraint("uses the framework's default dependency mapping"));

    add(CapabilityEntry::new(
        "xaminer.cascade",
        "xaminer",
        "propagates an initial failure through load redistribution into a cascade timeline",
        vec![Param::required("impact", F::FailureImpact)],
        F::CascadeTimeline,
    )
    .with_cost(CostClass::Expensive)
    .with_reliability(0.8)
    .with_tags(&["cascade", "propagation", "load"])
    .with_constraint("assumes the documented base-load and overload thresholds"));

    add(CapabilityEntry::new(
        "xaminer.risk_profiles",
        "xaminer",
        "profiles each country's dependency concentration over cable systems",
        vec![Param::required("deps", F::DependencyTable)],
        F::RiskProfiles,
    )
    .with_cost(CostClass::Moderate)
    .with_reliability(0.9)
    .with_tags(&["risk", "resilience", "concentration", "country"]));

    // --- BGP ---------------------------------------------------------------
    add(CapabilityEntry::new(
        "bgp.updates",
        "bgp",
        "fetches the BGP update stream from route collectors for a time window",
        vec![Param::required("window", F::TimeWindow)],
        F::BgpUpdates,
    )
    .with_cost(CostClass::Expensive)
    .with_reliability(0.95)
    .with_tags(&["bgp", "routing", "updates", "collector"]));

    add(CapabilityEntry::new(
        "bgp.rib_snapshot",
        "bgp",
        "captures a RIB snapshot at the end of a time window",
        vec![Param::required("window", F::TimeWindow)],
        F::RibSnapshot,
    )
    .with_cost(CostClass::Expensive)
    .with_reliability(0.95)
    .with_tags(&["bgp", "rib", "snapshot"]));

    add(CapabilityEntry::new(
        "bgp.detect_bursts",
        "bgp",
        "detects statistically significant bursts in a BGP update stream",
        vec![
            Param::required("updates", F::BgpUpdates),
            Param::required("window", F::TimeWindow),
        ],
        F::BgpBursts,
    )
    .with_cost(CostClass::Moderate)
    .with_reliability(0.9)
    .with_tags(&["bgp", "anomaly", "burst", "churn", "non-critical"]));

    add(CapabilityEntry::new(
        "bgp.detect_moas",
        "bgp",
        "detects MOAS conflicts: prefixes announced by more than one origin AS, against the baseline RIB",
        vec![Param::required("updates", F::BgpUpdates)],
        F::MoasConflicts,
    )
    .with_cost(CostClass::Moderate)
    .with_reliability(0.9)
    .with_tags(&["bgp", "moas", "hijack", "origin", "control-plane", "non-critical"])
    .with_constraint("needs the baseline RIB; the stream alone misses silent vantage points"));

    add(CapabilityEntry::new(
        "bgp.valley_violations",
        "bgp",
        "detects announced AS paths violating the valley-free export rule, with the pivot AS attributed",
        vec![Param::required("updates", F::BgpUpdates)],
        F::ValleyViolations,
    )
    .with_cost(CostClass::Moderate)
    .with_reliability(0.9)
    .with_tags(&["bgp", "valley", "export", "control-plane", "non-critical"])
    .with_constraint("paths are checked against the scenario's reference topology"));

    add(CapabilityEntry::new(
        "bgp.reachability_losses",
        "bgp",
        "lists (peer, prefix) pairs withdrawn and never re-announced",
        vec![Param::required("updates", F::BgpUpdates)],
        F::Table,
    )
    .with_cost(CostClass::Cheap)
    .with_reliability(0.9)
    .with_tags(&["bgp", "reachability", "withdrawal"]));

    // --- Traceroute ----------------------------------------------------------
    add(CapabilityEntry::new(
        "traceroute.campaign",
        "traceroute",
        "runs a probe campaign from one region's probes to another region's destinations over a time window",
        vec![
            Param::required("src_region", F::RegionScope),
            Param::required("dst_region", F::RegionScope),
            Param::required("window", F::TimeWindow),
        ],
        F::TracerouteCampaign,
    )
    .with_cost(CostClass::Expensive)
    .with_reliability(0.85)
    .with_tags(&["traceroute", "probe", "campaign", "latency", "paris"])
    .with_constraint("probe coverage follows the platform's regional density"));

    add(CapabilityEntry::new(
        "traceroute.rtt_series",
        "traceroute",
        "buckets a campaign into a mean RTT time series",
        vec![Param::required("campaign", F::TracerouteCampaign)],
        F::RttSeries,
    )
    .with_cost(CostClass::Cheap)
    .with_reliability(0.95)
    .with_tags(&["rtt", "series", "latency"]));

    add(CapabilityEntry::new(
        "traceroute.detect_anomaly",
        "traceroute",
        "detects latency anomalies against a statistical baseline, attributing affected probe/destination pairs",
        vec![Param::required("campaign", F::TracerouteCampaign)],
        F::AnomalyReport,
    )
    .with_cost(CostClass::Moderate)
    .with_reliability(0.85)
    .with_tags(&["anomaly", "latency", "baseline", "statistics", "non-critical"])
    .with_constraint("needs several baseline buckets before the anomaly"));

    // --- Utility (integration / translation layer) ---------------------------
    add(CapabilityEntry::new(
        "util.cable_failure_event",
        "util",
        "builds a full-cable failure event from a resolved cable",
        vec![Param::required("cable", F::CableRef)],
        F::FailureEventSpec,
    )
    .with_cost(CostClass::Cheap)
    .with_reliability(0.99)
    .with_tags(&["event", "cable", "translate"]));

    add(CapabilityEntry::new(
        "util.compile_disasters",
        "util",
        "compiles disaster kinds and a failure probability into concrete events over the global hazard catalog",
        vec![
            Param::required("disasters", F::DisasterSpecs),
            Param::required("failure_probability", F::Scalar),
        ],
        F::FailureEventSpec,
    )
    .with_cost(CostClass::Cheap)
    .with_reliability(0.9)
    .with_tags(&["disaster", "earthquake", "hurricane", "what-if", "compile"]));

    add(CapabilityEntry::new(
        "util.combine_impact_tables",
        "util",
        "combines two country impact tables (independent-event composition of scores)",
        vec![
            Param::required("a", F::CountryImpactTable),
            Param::required("b", F::CountryImpactTable),
        ],
        F::CountryImpactTable,
    )
    .with_cost(CostClass::Cheap)
    .with_reliability(0.95)
    .with_tags(&["combine", "merge", "impact", "aggregate"]));

    add(CapabilityEntry::new(
        "util.corridor_failure_event",
        "util",
        "builds a compound failure of the main cable systems connecting two regions",
        vec![
            Param::required("src_region", F::RegionScope),
            Param::required("dst_region", F::RegionScope),
        ],
        F::FailureEventSpec,
    )
    .with_cost(CostClass::Cheap)
    .with_reliability(0.9)
    .with_tags(&["corridor", "region", "cable", "compound"]));

    add(CapabilityEntry::new(
        "util.score_suspect_cables",
        "util",
        "ranks candidate cables by their presence in anomaly-affected paths, weighted by latency deltas",
        vec![
            Param::required("anomaly", F::AnomalyReport),
            Param::required("deps", F::DependencyTable),
        ],
        F::SuspectRanking,
    )
    .with_cost(CostClass::Moderate)
    .with_reliability(0.85)
    .with_tags(&["forensic", "suspect", "cable", "score", "rank"]));

    add(CapabilityEntry::new(
        "util.correlate_evidence",
        "util",
        "temporally correlates BGP bursts with a latency anomaly onset",
        vec![
            Param::required("bursts", F::BgpBursts),
            Param::required("anomaly", F::AnomalyReport),
        ],
        F::CorrelationReport,
    )
    .with_cost(CostClass::Cheap)
    .with_reliability(0.9)
    .with_tags(&["correlate", "temporal", "evidence", "validation"]));

    add(CapabilityEntry::new(
        "util.synthesize_verdict",
        "util",
        "synthesizes suspect ranking and temporal correlation into a causal verdict with confidence",
        vec![
            Param::required("suspects", F::SuspectRanking),
            Param::required("correlation", F::CorrelationReport),
            Param::required("anomaly", F::AnomalyReport),
        ],
        F::ForensicVerdict,
    )
    .with_cost(CostClass::Cheap)
    .with_reliability(0.9)
    .with_tags(&["forensic", "verdict", "synthesis", "causation", "confidence"]));

    add(CapabilityEntry::new(
        "util.attribute_control_plane",
        "util",
        "attributes a control-plane incident (prefix hijack vs route leak) and identifies the offending AS",
        vec![
            Param::required("moas", F::MoasConflicts),
            Param::required("valleys", F::ValleyViolations),
        ],
        F::ControlPlaneReport,
    )
    .with_cost(CostClass::Cheap)
    .with_reliability(0.9)
    .with_tags(&["hijack", "attribution", "control-plane", "offender", "confidence"]));

    add(CapabilityEntry::new(
        "xaminer.control_plane_impact",
        "xaminer",
        "quantifies which ASes and countries an attributed control-plane incident misdirects",
        vec![Param::required("report", F::ControlPlaneReport)],
        F::CountryImpactTable,
    )
    .with_cost(CostClass::Moderate)
    .with_reliability(0.9)
    .with_tags(&["hijack", "impact", "control-plane", "country", "misdirection"])
    .with_constraint("assessed against the world's quiet topology"));

    add(CapabilityEntry::new(
        "util.build_timeline",
        "util",
        "fuses cascade rounds, routing bursts and latency anomalies into one multi-layer timeline",
        vec![
            Param::required("cascade", F::CascadeTimeline),
            Param::required("bursts", F::BgpBursts),
            Param::required("anomaly", F::AnomalyReport),
        ],
        F::UnifiedTimeline,
    )
    .with_cost(CostClass::Cheap)
    .with_reliability(0.9)
    .with_tags(&["timeline", "synthesis", "cross-layer", "unified"]));

    // --- QA --------------------------------------------------------------------
    add(CapabilityEntry::new(
        "qa.verify_output",
        "qa",
        "verifies a final result: structural integrity, emptiness, basic plausibility",
        vec![Param::required("value", F::Any)],
        F::QaReport,
    )
    .with_cost(CostClass::Cheap)
    .with_reliability(0.99)
    .with_tags(&["qa", "verify", "sanity"]));

    r
}

/// A registry with some functions withheld — case study 1's controlled
/// setup ("we provide the agent with only core Nautilus system functions.
/// We withhold Xaminer's higher-level abstractions").
pub fn restricted_registry(withhold: &[&str]) -> Registry {
    let full = standard_registry();
    let mut r = Registry::new();
    for entry in full.iter() {
        if !withhold.contains(&entry.id.0.as_str()) {
            r.register(entry.clone()).expect("no duplicates");
        }
    }
    r
}

/// Builds the query context (entity-grounding knowledge) for a scenario.
pub fn query_context(world: &World, now: net_model::SimTime, horizon_days: i64) -> QueryContext {
    QueryContext {
        cable_names: world.cables.iter().map(|c| c.name.clone()).collect(),
        now: now.seconds_since_epoch(),
        horizon_days,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_frameworks() {
        let r = standard_registry();
        let fw = r.frameworks();
        for expected in ["nautilus", "xaminer", "bgp", "traceroute", "util", "qa"] {
            assert!(fw.contains(&expected.to_string()), "missing {expected}");
        }
        assert!(r.len() >= 22, "catalog size {}", r.len());
    }

    #[test]
    fn restricted_registry_withholds() {
        let r = restricted_registry(&["xaminer.event_impact"]);
        assert!(!r.contains(&registry::FunctionId::from("xaminer.event_impact")));
        assert!(r.contains(&registry::FunctionId::from("xaminer.process_event")));
        assert_eq!(r.len(), standard_registry().len() - 1);
    }

    #[test]
    fn search_finds_forensic_functions() {
        let r = standard_registry();
        let hits = r.search("rank suspect cables forensic", 3);
        assert_eq!(hits[0].entry.id.0, "util.score_suspect_cables");
    }

    #[test]
    fn context_contains_cable_names() {
        let world = crate::scenarios::standard_world();
        let ctx = query_context(&world, net_model::SimTime(86_400), 10);
        assert!(ctx.cable_names.iter().any(|n| n == "SeaMeWe-5"));
        assert_eq!(ctx.now, 86_400);
    }
}
