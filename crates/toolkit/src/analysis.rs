//! Analytical utilities the generated workflows compose: latency anomaly
//! detection, suspect-cable scoring, evidence correlation and synthesis,
//! control-plane incident attribution, and unified timeline construction.
//!
//! All functions are pure over the [`crate::data`] schemas (plus the BGP
//! substrate's serializable detector outputs), so they can be unit-tested
//! without a world and invoked by the runtime with serialized inputs.

use std::collections::BTreeMap;

use bgp_sim::{MoasConflict, ValleyViolation};

use crate::data::*;

/// Buckets campaign RTTs into a mean series.
pub fn rtt_series(campaign: &CampaignData, bucket_seconds: i64) -> SeriesData {
    assert!(bucket_seconds > 0);
    let mut buckets: BTreeMap<i64, (f64, usize)> = BTreeMap::new();
    for m in &campaign.measurements {
        if let Some(rtt) = m.rtt_ms {
            let b = (m.time - campaign.window_start) / bucket_seconds * bucket_seconds
                + campaign.window_start;
            let e = buckets.entry(b).or_insert((0.0, 0));
            e.0 += rtt;
            e.1 += 1;
        }
    }
    SeriesData {
        bucket_seconds,
        points: buckets.into_iter().map(|(t, (sum, n))| (t, sum / n as f64, n)).collect(),
    }
}

/// Attributes a control-plane incident from the two detector streams.
///
/// MOAS conflicts are hijack evidence: every conflicting origin that is
/// not the prefix's registered owner (per `legit_origins`, prefix in
/// string form) votes for itself as the offender. Valley violations are
/// leak evidence: each violation's pivot AS (where the path illegally
/// turns back up) votes. Hijack evidence takes precedence — a hijack
/// produces MOAS conflicts and no valley violations, a leak the reverse,
/// so genuine incidents separate cleanly.
pub fn attribute_control_plane(
    moas: &[MoasConflict],
    valleys: &[ValleyViolation],
    legit_origins: &BTreeMap<String, u32>,
) -> ControlPlaneReportData {
    // Hijack votes: bogus origins across conflicts.
    let mut bogus_votes: BTreeMap<u32, usize> = BTreeMap::new();
    let mut victim_prefixes: Vec<String> = Vec::new();
    for c in moas {
        let prefix = c.prefix.to_string();
        let owner = legit_origins.get(&prefix).copied();
        for o in &c.origins {
            if owner != Some(o.0) {
                *bogus_votes.entry(o.0).or_default() += 1;
            }
        }
        victim_prefixes.push(prefix);
    }
    victim_prefixes.sort();
    victim_prefixes.dedup();

    // Leak votes: pivot ASes across violations.
    let mut pivot_votes: BTreeMap<u32, usize> = BTreeMap::new();
    for v in valleys {
        if let Some(p) = v.pivot {
            *pivot_votes.entry(p.0).or_default() += 1;
        }
    }

    let top = |votes: &BTreeMap<u32, usize>| -> Option<(u32, usize)> {
        votes.iter().map(|(&a, &n)| (a, n)).max_by_key(|&(a, n)| (n, std::cmp::Reverse(a)))
    };

    if let Some((offender, votes)) = top(&bogus_votes) {
        let confidence = (0.55 + 0.1 * (votes.min(4) as f64)).min(0.95);
        return ControlPlaneReportData {
            kind: "prefix-hijack".into(),
            offender: Some(offender),
            moas_conflicts: moas.len(),
            valley_violations: valleys.len(),
            confidence,
            narrative: format!(
                "{} MOAS conflict(s) observed; AS{offender} originates {} prefix(es) it \
                 does not own",
                moas.len(),
                victim_prefixes.len()
            ),
            victim_prefixes,
        };
    }
    if let Some((offender, votes)) = top(&pivot_votes) {
        let confidence = (0.55 + 0.05 * (votes.min(8) as f64)).min(0.95);
        return ControlPlaneReportData {
            kind: "route-leak".into(),
            offender: Some(offender),
            victim_prefixes: Vec::new(),
            moas_conflicts: moas.len(),
            valley_violations: valleys.len(),
            confidence,
            narrative: format!(
                "{} announced path(s) violate the valley-free export rule, pivoting at \
                 AS{offender}",
                valleys.len()
            ),
        };
    }
    ControlPlaneReportData {
        kind: "none".into(),
        offender: None,
        victim_prefixes: Vec::new(),
        moas_conflicts: moas.len(),
        valley_violations: valleys.len(),
        confidence: 0.9,
        narrative: "no MOAS conflicts and no export-rule violations: control-plane causes \
                    ruled out"
            .into(),
    }
}

/// Statistical latency anomaly detection with per-pair attribution.
///
/// Method (the one the paper's forensic case study describes): establish a
/// quantitative baseline over the early window, flag the first sustained
/// shift exceeding `max(3σ, 5 ms)`, and assess significance as a z-score.
/// Each probe/destination pair is then classified by its before/after
/// means, and its pre-onset link set is recorded for cross-layer joins.
pub fn detect_anomaly(campaign: &CampaignData) -> AnomalyData {
    let bucket_s = 6 * 3600;
    let series = rtt_series(campaign, bucket_s);
    if series.points.len() < 4 {
        return AnomalyData {
            detected: false,
            onset: None,
            baseline_ms: 0.0,
            anomalous_ms: 0.0,
            z_score: 0.0,
            affected_pairs: vec![],
            pre_observed_links: vec![],
            post_observed_links: vec![],
        };
    }

    // Baseline over the first 40% of buckets (at least two).
    let n_base = (series.points.len() * 2 / 5).max(2);
    let base: Vec<f64> = series.points.iter().take(n_base).map(|p| p.1).collect();
    let mean = base.iter().sum::<f64>() / base.len() as f64;
    let var = base.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / base.len() as f64;
    let sd = var.sqrt().max(0.5); // floor avoids zero-variance explosions

    let threshold = mean + (3.0 * sd).max(5.0);

    // First sustained excursion: two consecutive buckets above threshold.
    let mut onset: Option<i64> = None;
    for w in series.points.windows(2) {
        if w[0].1 > threshold && w[1].1 > threshold {
            onset = Some(w[0].0);
            break;
        }
    }

    let (detected, onset_t) = match onset {
        Some(t) => (true, t),
        None => {
            return AnomalyData {
                detected: false,
                onset: None,
                baseline_ms: mean,
                anomalous_ms: mean,
                z_score: 0.0,
                affected_pairs: vec![],
                pre_observed_links: vec![],
                post_observed_links: vec![],
            }
        }
    };

    let after: Vec<f64> =
        series.points.iter().filter(|p| p.0 >= onset_t).map(|p| p.1).collect();
    let anomalous = after.iter().sum::<f64>() / after.len().max(1) as f64;
    let z = (anomalous - mean) / sd;

    // Per-pair attribution.
    #[derive(Default)]
    struct PairAcc<'a> {
        before: Vec<f64>,
        after: Vec<f64>,
        pre_links: Vec<&'a Vec<u32>>,
        post_links: Vec<&'a Vec<u32>>,
    }
    let mut per_pair: BTreeMap<(u32, &str), PairAcc<'_>> = BTreeMap::new();
    for m in &campaign.measurements {
        let entry = per_pair.entry((m.probe, m.dst.as_str())).or_default();
        if let Some(rtt) = m.rtt_ms {
            if m.time < onset_t {
                entry.before.push(rtt);
                entry.pre_links.push(&m.links);
            } else {
                entry.after.push(rtt);
                entry.post_links.push(&m.links);
            }
        }
    }
    let union = |sets: &[&Vec<u32>]| -> Vec<u32> {
        let mut out: Vec<u32> = sets.iter().flat_map(|l| l.iter().copied()).collect();
        out.sort_unstable();
        out.dedup();
        out
    };
    let mut affected = Vec::new();
    let mut pre_observed: std::collections::BTreeSet<u32> = Default::default();
    let mut post_observed: std::collections::BTreeSet<u32> = Default::default();
    for ((probe, dst), acc) in per_pair {
        pre_observed.extend(acc.pre_links.iter().flat_map(|l| l.iter().copied()));
        post_observed.extend(acc.post_links.iter().flat_map(|l| l.iter().copied()));
        if acc.before.is_empty() || acc.after.is_empty() {
            continue;
        }
        let b = acc.before.iter().sum::<f64>() / acc.before.len() as f64;
        let a = acc.after.iter().sum::<f64>() / acc.after.len() as f64;
        let delta = a - b;
        // A pair counts as affected on a shift of 5 ms or 5% of its own
        // baseline, whichever is larger (long-haul baselines are noisy in
        // absolute terms but stable in relative ones).
        if delta > (0.05 * b).max(5.0) {
            affected.push(AffectedPair {
                probe,
                dst: dst.to_string(),
                before_ms: b,
                after_ms: a,
                delta_ms: delta,
                pre_links: union(&acc.pre_links),
                post_links: union(&acc.post_links),
            });
        }
    }

    AnomalyData {
        detected,
        onset: Some(onset_t),
        baseline_ms: mean,
        anomalous_ms: anomalous,
        z_score: z,
        affected_pairs: affected,
        pre_observed_links: pre_observed.into_iter().collect(),
        post_observed_links: post_observed.into_iter().collect(),
    }
}

/// Scores candidate cables by their presence in affected pairs' *vanished*
/// links — pre-onset links that disappeared from post-onset paths —
/// weighted by each pair's latency delta. Corridor-wide congestion slows
/// every pair equally but vanishes no links, so only genuine
/// infrastructure loss accumulates score.
///
/// Parallel systems sharing the vanished segments are then *exonerated by
/// survivors*: each candidate's score is scaled by the fraction of its
/// *observed* links that died. A cable whose attributed links mostly still
/// appear in post-onset paths is demonstrably carrying traffic and cannot
/// be the failed system; the cut cable's attributed links are mostly gone.
pub fn score_suspects(
    anomaly: &AnomalyData,
    cable_links: &BTreeMap<u32, Vec<u32>>,
    cable_names: &BTreeMap<u32, String>,
) -> SuspectData {
    let mut scores: BTreeMap<u32, (f64, std::collections::BTreeSet<u32>)> = BTreeMap::new();
    for pair in &anomaly.affected_pairs {
        let vanished = pair.vanished_links();
        for (cable, links) in cable_links {
            let hits: Vec<u32> =
                vanished.iter().copied().filter(|l| links.contains(l)).collect();
            if !hits.is_empty() {
                let e = scores.entry(*cable).or_default();
                e.0 += pair.delta_ms * hits.len() as f64;
                e.1.extend(hits);
            }
        }
    }

    // Survivor exoneration: scale by the fraction of each cable's observed
    // links that died.
    let pre: std::collections::BTreeSet<u32> =
        anomaly.pre_observed_links.iter().copied().collect();
    let post: std::collections::BTreeSet<u32> =
        anomaly.post_observed_links.iter().copied().collect();
    for (cable, entry) in scores.iter_mut() {
        let links = match cable_links.get(cable) {
            Some(l) => l,
            None => continue,
        };
        let observed =
            links.iter().filter(|l| pre.contains(l) || post.contains(l)).count();
        if observed == 0 {
            continue;
        }
        let live = links.iter().filter(|l| post.contains(l)).count();
        let dead_fraction = 1.0 - live as f64 / observed as f64;
        entry.0 *= dead_fraction.max(0.02);
    }

    let total: f64 = scores.values().map(|(s, _)| s).sum();
    let mut ranked: Vec<SuspectEntry> = scores
        .into_iter()
        .map(|(cable, (score, links))| SuspectEntry {
            cable,
            name: cable_names.get(&cable).cloned().unwrap_or_else(|| format!("cable-{cable}")),
            score: if total > 0.0 { score / total } else { 0.0 },
            evidence_links: links.len(),
        })
        .collect();
    ranked.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap().then(a.cable.cmp(&b.cable)));
    SuspectData { ranked }
}

/// Correlates BGP burst timing with the anomaly onset. `bursts` are burst
/// window start times.
pub fn correlate(bursts: &[i64], burst_count: usize, anomaly: &AnomalyData) -> CorrelationData {
    let onset = anomaly.onset;
    let (aligned, lag) = match (onset, bursts.iter().min_by_key(|b| (**b - onset.unwrap_or(0)).abs())) {
        (Some(o), Some(&closest)) => {
            let lag = closest - o;
            // A routing burst within ±12 h of the latency onset counts as
            // temporally aligned (the onset is bucket-quantized).
            (lag.abs() <= 12 * 3600, Some(lag))
        }
        _ => (false, None),
    };
    let confidence = if aligned {
        0.9
    } else if bursts.is_empty() {
        // No routing churn at all: evidence *against* a cable failure.
        0.1
    } else {
        0.25
    };
    CorrelationData { aligned, lag_seconds: lag, burst_count, onset, confidence }
}

/// Synthesizes the final forensic verdict from the evidence streams.
pub fn synthesize_verdict(
    suspects: &SuspectData,
    correlation: &CorrelationData,
    anomaly: &AnomalyData,
) -> VerdictData {
    if !anomaly.detected {
        return VerdictData {
            cable_caused: false,
            cable: None,
            cable_id: None,
            confidence: 0.9,
            narrative: "no statistically significant latency anomaly was detected; \
                        no cable investigation is warranted"
                .into(),
        };
    }
    let top = suspects.ranked.first();
    let top_score = top.map(|t| t.score).unwrap_or(0.0);
    // Causation requires both evidence streams: a dominant suspect and
    // aligned routing churn.
    let cable_caused = top_score >= 0.35 && correlation.aligned;
    let confidence = (0.5 * top_score + 0.5 * correlation.confidence).clamp(0.0, 1.0);
    let narrative = match (cable_caused, top) {
        (true, Some(t)) => format!(
            "latency rose {:.1} ms (z={:.1}) at t={}; {} of the affected paths' pre-onset \
             links map to {}; BGP churn {} the onset (lag {} s). Verdict: {} failure caused \
             the anomaly.",
            anomaly.anomalous_ms - anomaly.baseline_ms,
            anomaly.z_score,
            anomaly.onset.unwrap_or(0),
            t.evidence_links,
            t.name,
            if correlation.aligned { "aligns with" } else { "does not align with" },
            correlation.lag_seconds.unwrap_or(0),
            t.name,
        ),
        _ => format!(
            "a latency anomaly was detected (z={:.1}) but the evidence does not support a \
             cable failure: top suspect score {:.2}, routing churn aligned: {}. Likely \
             congestion or a non-infrastructure cause.",
            anomaly.z_score, top_score, correlation.aligned,
        ),
    };
    VerdictData {
        cable_caused,
        cable: cable_caused.then(|| top.map(|t| t.name.clone()).unwrap_or_default()),
        cable_id: if cable_caused { top.map(|t| t.cable) } else { None },
        confidence,
        narrative,
    }
}

/// Builds the unified multi-layer timeline from cascade rounds, BGP bursts
/// and the latency anomaly.
pub fn build_timeline(
    cascade_events: &[(i64, String, String)], // (t, layer, description)
    burst_times: &[i64],
    anomaly: &AnomalyData,
) -> TimelineData {
    let mut events: Vec<TimelineEvent> = cascade_events
        .iter()
        .map(|(t, layer, d)| TimelineEvent { t: *t, layer: layer.clone(), description: d.clone() })
        .collect();
    for &b in burst_times {
        events.push(TimelineEvent {
            t: b,
            layer: "routing".into(),
            description: "BGP update burst".into(),
        });
    }
    if let Some(onset) = anomaly.onset {
        events.push(TimelineEvent {
            t: onset,
            layer: "latency".into(),
            description: format!(
                "mean RTT shifted {:.1} ms above baseline",
                anomaly.anomalous_ms - anomaly.baseline_ms
            ),
        });
    }
    events.sort_by(|a, b| a.t.cmp(&b.t).then(a.layer.cmp(&b.layer)));
    let mut layers: Vec<String> = events.iter().map(|e| e.layer.clone()).collect();
    layers.sort();
    layers.dedup();
    TimelineData { events, layers }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a campaign with a latency step at `onset` for half the pairs.
    fn synthetic_campaign(onset: i64) -> CampaignData {
        let mut measurements = Vec::new();
        for probe in 0..4u32 {
            for (di, dst) in ["10.0.0.1", "10.0.16.1"].iter().enumerate() {
                for k in 0..40 {
                    let t = k * 6 * 3600;
                    let shifted = probe % 2 == 0 && t >= onset;
                    let base = 120.0 + probe as f64 + di as f64 * 3.0;
                    let rtt = if shifted { base + 45.0 } else { base };
                    let links = if shifted { vec![9, 10] } else { vec![1, 2] };
                    measurements.push(MeasurementData {
                        probe,
                        dst: dst.to_string(),
                        time: t,
                        rtt_ms: Some(rtt),
                        links,
                    });
                }
            }
        }
        CampaignData {
            src_region: "Europe".into(),
            dst_region: "Asia".into(),
            window_start: 0,
            window_end: 40 * 6 * 3600,
            interval_s: 6 * 3600,
            measurements,
        }
    }

    #[test]
    fn series_buckets_and_averages() {
        let c = synthetic_campaign(i64::MAX);
        let s = rtt_series(&c, 6 * 3600);
        assert_eq!(s.points.len(), 40);
        for (_, mean, n) in &s.points {
            assert_eq!(*n, 8);
            assert!((119.0..130.0).contains(mean));
        }
    }

    #[test]
    fn anomaly_detected_at_step() {
        let onset = 24 * 6 * 3600; // bucket 24 of 40
        let a = detect_anomaly(&synthetic_campaign(onset));
        assert!(a.detected);
        assert_eq!(a.onset, Some(onset));
        assert!(a.z_score > 3.0);
        // Only the even probes shifted: 2 probes × 2 dsts = 4 pairs.
        assert_eq!(a.affected_pairs.len(), 4);
        for p in &a.affected_pairs {
            assert_eq!(p.pre_links, vec![1, 2]);
            assert!(p.delta_ms > 20.0);
        }
    }

    #[test]
    fn quiet_campaign_has_no_anomaly() {
        let a = detect_anomaly(&synthetic_campaign(i64::MAX));
        assert!(!a.detected);
        assert!(a.affected_pairs.is_empty());
    }

    #[test]
    fn suspect_scoring_prefers_the_guilty_cable() {
        let onset = 24 * 6 * 3600;
        let a = detect_anomaly(&synthetic_campaign(onset));
        let cable_links = BTreeMap::from([
            (100u32, vec![1u32, 2]), // guilty: carries the pre-onset links
            (200u32, vec![50, 51]),  // innocent
        ]);
        let names = BTreeMap::from([
            (100u32, "GuiltyCable".to_string()),
            (200u32, "InnocentCable".to_string()),
        ]);
        let s = score_suspects(&a, &cable_links, &names);
        assert_eq!(s.ranked[0].name, "GuiltyCable");
        assert!(s.ranked[0].score > 0.99, "{:?}", s.ranked);
    }

    #[test]
    fn correlation_alignment_window() {
        let a = AnomalyData {
            detected: true,
            onset: Some(100_000),
            baseline_ms: 100.0,
            anomalous_ms: 150.0,
            z_score: 8.0,
            affected_pairs: vec![],
            pre_observed_links: vec![],
            post_observed_links: vec![],
        };
        let aligned = correlate(&[100_000 + 3_600], 40, &a);
        assert!(aligned.aligned);
        assert!(aligned.confidence > 0.8);
        let misaligned = correlate(&[100_000 + 100 * 3_600], 40, &a);
        assert!(!misaligned.aligned);
        let silent = correlate(&[], 0, &a);
        assert!(!silent.aligned);
        assert!(silent.confidence < 0.2);
    }

    #[test]
    fn verdict_requires_both_evidence_streams() {
        let onset = 24 * 6 * 3600;
        let a = detect_anomaly(&synthetic_campaign(onset));
        let suspects = SuspectData {
            ranked: vec![SuspectEntry {
                cable: 1,
                name: "SeaMeWe-5".into(),
                score: 0.9,
                evidence_links: 2,
            }],
        };
        let good_corr = correlate(&[onset + 1800], 30, &a);
        let v = synthesize_verdict(&suspects, &good_corr, &a);
        assert!(v.cable_caused);
        assert_eq!(v.cable.as_deref(), Some("SeaMeWe-5"));
        assert!(v.confidence > 0.7);

        let bad_corr = correlate(&[], 0, &a);
        let v2 = synthesize_verdict(&suspects, &bad_corr, &a);
        assert!(!v2.cable_caused, "without routing corroboration, no causation");
    }

    #[test]
    fn verdict_on_quiet_data_declines_to_blame() {
        let a = detect_anomaly(&synthetic_campaign(i64::MAX));
        let v = synthesize_verdict(&SuspectData::default(), &correlate(&[], 0, &a), &a);
        assert!(!v.cable_caused);
        assert!(v.narrative.contains("no statistically significant"));
    }

    #[test]
    fn timeline_merges_and_sorts_layers() {
        let a = AnomalyData {
            detected: true,
            onset: Some(500),
            baseline_ms: 100.0,
            anomalous_ms: 130.0,
            z_score: 5.0,
            affected_pairs: vec![],
            pre_observed_links: vec![],
            post_observed_links: vec![],
        };
        let t = build_timeline(
            &[(100, "cable".into(), "cut".into()), (300, "ip".into(), "links down".into())],
            &[450],
            &a,
        );
        assert_eq!(t.events.len(), 4);
        assert!(t.events.windows(2).all(|w| w[0].t <= w[1].t));
        assert_eq!(t.layers, vec!["cable", "ip", "latency", "routing"]);
    }
}
