//! The standard tool runtime: dispatches every catalog function onto the
//! substrate crates.
//!
//! Values leave the runtime as **native artifacts** (mapping tables,
//! dependency tables, BGP update streams, impact tables, campaigns) held
//! behind `Arc`s — the Arc-shared [`Value`] model projects them to JSON
//! lazily, only when something actually needs JSON. Arguments come back
//! through [`Value::view`]: zero-copy when the producing step emitted the
//! native type, a JSON deserialization otherwise.
//!
//! Expensive artifacts (cross-layer mapping, BGP update stream, probe
//! campaigns) live in an [`ArtifactStore`] keyed per scenario — shareable
//! across runtimes, sessions and whole engine epochs, exactly as a real
//! deployment caches collector downloads and mapping runs once per
//! dataset, not once per query.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use net_model::{CableId, Region, SimDuration, SimTime, TimeWindow};
use parking_lot::Mutex;
use registry::{DataFormat as F, FunctionId};
use workflow::{ToolError, ToolRuntime, Value, ValueView};
use world::{Scenario, World};

use bgp_sim::{
    detect_moas_conflicts, detect_update_bursts, detect_valley_violations, BgpSimulator,
    BgpUpdate, MoasConflict, ValleyViolation,
};
use nautilus_sim::{DependencyTable, MappingConfig, MappingTable, NautilusMapper};
use traceroute_sim::TracerouteSimulator;
use xaminer_sim::{CascadeConfig, FailureEvent, FailureImpact};

use crate::analysis;
use crate::data::*;
use crate::disasters;

/// One build-once artifact slot.
type ArtifactSlot = Arc<OnceLock<Result<Value, ToolError>>>;

/// A concurrent, shareable cache of expensive measurement artifacts,
/// keyed by artifact id. Each slot is built exactly once — concurrent
/// requesters for the same key block on the builder instead of
/// duplicating the work — and the cached [`Value`]s are Arc-shared, so a
/// hit is a pointer bump.
#[derive(Default)]
pub struct ArtifactStore {
    slots: Mutex<BTreeMap<String, ArtifactSlot>>,
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> Self {
        ArtifactStore::default()
    }

    /// Returns the cached value for `key`, building (once) on a miss.
    ///
    /// Only successes stay cached: a failed build is returned to everyone
    /// who was waiting on that slot, but the slot is evicted so the next
    /// request retries instead of serving the stale error for the store's
    /// lifetime.
    pub fn get_or_build(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<Value, ToolError>,
    ) -> Result<Value, ToolError> {
        let slot = Arc::clone(self.slots.lock().entry(key.to_string()).or_default());
        let result = slot.get_or_init(build).clone();
        if result.is_err() {
            let mut slots = self.slots.lock();
            // Evict only if the key still points at this failed slot (a
            // concurrent retry may already have installed a fresh one).
            if slots.get(key).is_some_and(|current| Arc::ptr_eq(current, &slot)) {
                slots.remove(key);
            }
        }
        result
    }

    /// Number of artifacts cached (or being built).
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().is_empty()
    }

    /// Whether an artifact is cached (or being built) under `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.slots.lock().contains_key(key)
    }
}

/// The process-wide store of **world-level** artifact stores,
/// content-addressed by the world's full [`world::WorldConfig`] (the
/// same bit-exact identity `scenario_forge::WorldCache` keys worlds by).
///
/// Artifacts that depend only on the world — the Nautilus mapping run,
/// the default dependency table — used to live in the per-*scenario*
/// stores, so scenarios sharing one `Arc<World>` (the whole point of the
/// scenario-forge cache) still recomputed the mapping once per scenario
/// key. Keying them by world content identity finishes the job: any
/// number of scenarios, sessions and engines over one world share one
/// mapping run per process.
pub fn world_artifacts(world: &World) -> Arc<ArtifactStore> {
    // Keyed by the full config (bit-exact `Ord`, the same identity the
    // scenario-forge `WorldCache` uses), not the u64 content hash — a
    // hash collision must not silently alias two worlds' artifacts.
    static STORES: OnceLock<Mutex<BTreeMap<world::WorldConfig, Arc<ArtifactStore>>>> =
        OnceLock::new();
    let stores = STORES.get_or_init(|| Mutex::new(BTreeMap::new()));
    Arc::clone(stores.lock().entry(world.config.clone()).or_default())
}

/// The standard runtime over one scenario.
pub struct StandardRuntime {
    scenario: Arc<Scenario>,
    /// Scenario-level artifacts (update streams, campaigns): shared by
    /// every session of this scenario.
    artifacts: Arc<ArtifactStore>,
    /// World-level artifacts (mapping run, default deps): shared by every
    /// scenario over this world — see [`world_artifacts`].
    world_artifacts: Arc<ArtifactStore>,
    /// Optional telemetry sink: cached-artifact probes become
    /// `artifact_cache.hit` / `artifact_cache.miss` counters. Counters
    /// only — store warmth is process-global and arrival-order dependent,
    /// so cache probes must never enter the (byte-stable) trace.
    recorder: Option<Arc<telemetry::Recorder>>,
}

impl StandardRuntime {
    /// A runtime owning a private scenario-level artifact store (the
    /// world-level store is always the shared, content-addressed one).
    pub fn new(scenario: Scenario) -> Self {
        StandardRuntime::shared(Arc::new(scenario), Arc::new(ArtifactStore::new()))
    }

    /// A runtime over a shared scenario and artifact store — the serving
    /// engine hands every session of a scenario the same store, so
    /// artifacts are computed once across all concurrent sessions.
    pub fn shared(scenario: Arc<Scenario>, artifacts: Arc<ArtifactStore>) -> Self {
        let world_artifacts = world_artifacts(&scenario.world);
        StandardRuntime { scenario, artifacts, world_artifacts, recorder: None }
    }

    /// Attach a telemetry recorder (cache hit/miss counters).
    pub fn with_recorder(mut self, recorder: Arc<telemetry::Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// `get_or_build` with hit/miss accounting: the build closure runs
    /// only on a cold slot, so whether it ran *is* the miss signal.
    fn cached(
        &self,
        store: &ArtifactStore,
        key: &str,
        build: impl FnOnce() -> Result<Value, ToolError>,
    ) -> Result<Value, ToolError> {
        let mut built = false;
        let result = store.get_or_build(key, || {
            built = true;
            build()
        });
        if let Some(recorder) = &self.recorder {
            let counter = if built { "artifact_cache.miss" } else { "artifact_cache.hit" };
            recorder.counter_add(counter, 1);
        }
        result
    }

    /// The scenario under measurement.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The scenario-level artifact store backing this runtime.
    pub fn artifacts(&self) -> &Arc<ArtifactStore> {
        &self.artifacts
    }

    /// The world-level artifact store this runtime shares with every
    /// other scenario over the same world.
    pub fn world_artifacts(&self) -> &Arc<ArtifactStore> {
        &self.world_artifacts
    }

    // -- cached artifacts ---------------------------------------------------

    fn mapping_value(&self) -> Result<Value, ToolError> {
        self.cached(&self.world_artifacts, "nautilus.mapping", || {
            let table = NautilusMapper::new(MappingConfig::default())
                .map_world(&self.scenario.world);
            Ok(Value::native(F::MappingTable, table, false))
        })
    }

    fn default_deps_value(&self) -> Result<Value, ToolError> {
        // Derive from the cached mapping artifact — the mapping run is the
        // expensive half and must not be recomputed per dependency table.
        // Both are pure functions of the world, so they live in the
        // world-keyed store.
        let mapping = self.mapping_value()?;
        self.cached(&self.world_artifacts, "nautilus.default_deps", || {
            let m: ValueView<'_, MappingTable> = view_of(&mapping, "cached mapping")?;
            let deps = DependencyTable::from_mapping(&self.scenario.world, &m, 0.2);
            Ok(Value::native(F::DependencyTable, deps, false))
        })
    }

    fn updates_value(&self) -> Result<Value, ToolError> {
        self.cached(&self.artifacts, "bgp.updates_full", || {
            let sim = BgpSimulator::new(&self.scenario);
            let updates = sim.updates();
            let empty = updates.is_empty();
            Ok(Value::native(F::BgpUpdates, updates, empty))
        })
    }

    fn baseline_rib_value(&self) -> Result<Value, ToolError> {
        // The collector RIB at the horizon start: the MOAS detector's
        // baseline. Scenario-level (the timeline could in principle start
        // with an already-active incident).
        self.cached(&self.artifacts, "bgp.rib_baseline", || {
            let sim = BgpSimulator::new(&self.scenario);
            let rib = bgp_sim::RibSnapshot::capture(
                &self.scenario,
                sim.collectors(),
                self.scenario.horizon.start,
            );
            Ok(Value::native(F::RibSnapshot, rib, false))
        })
    }
}

// -- argument helpers --------------------------------------------------------

fn need<'a>(
    args: &'a BTreeMap<String, Value>,
    function: &FunctionId,
    name: &str,
) -> Result<&'a Value, ToolError> {
    args.get(name).ok_or_else(|| ToolError::BadArgument {
        function: function.clone(),
        message: format!("missing argument {name}"),
    })
}

/// Views an argument as `T`: zero-copy for native artifacts of that type,
/// JSON deserialization otherwise.
fn view<'a, T: serde::de::DeserializeOwned + 'static>(
    function: &FunctionId,
    name: &str,
    tv: &'a Value,
) -> Result<ValueView<'a, T>, ToolError> {
    tv.view().map_err(|e| ToolError::BadArgument {
        function: function.clone(),
        message: format!("argument {name}: {e}"),
    })
}

/// Parses an argument into an owned `T` via the JSON projection (for
/// small query-side values: windows, names, scalars).
fn de<T: serde::de::DeserializeOwned>(
    function: &FunctionId,
    name: &str,
    tv: &Value,
) -> Result<T, ToolError> {
    T::deserialize_json(tv.json()).map_err(|e| ToolError::BadArgument {
        function: function.clone(),
        message: format!("argument {name}: {e}"),
    })
}

/// Views an internally cached artifact as `T`.
fn view_of<'a, T: serde::de::DeserializeOwned + 'static>(
    tv: &'a Value,
    what: &str,
) -> Result<ValueView<'a, T>, ToolError> {
    tv.view().map_err(|e| ToolError::Failed {
        function: FunctionId::from("internal.cache"),
        message: format!("{what}: {e}"),
        transient: false,
    })
}

/// Wraps a substrate result as a native (non-empty) artifact value.
fn out<T: serde::Serialize + Send + Sync + 'static>(
    format: F,
    value: T,
) -> Result<Value, ToolError> {
    Ok(Value::native(format, value, false))
}

/// Wraps a sequence-shaped result, preserving JSON emptiness semantics.
fn out_seq<T: serde::Serialize + Send + Sync + 'static>(
    format: F,
    value: Vec<T>,
) -> Result<Value, ToolError> {
    let empty = value.is_empty();
    Ok(Value::native(format, value, empty))
}

#[derive(serde::Deserialize)]
struct WindowArg {
    start: i64,
    end: i64,
}

impl WindowArg {
    fn to_window(&self) -> TimeWindow {
        TimeWindow::new(SimTime(self.start), SimTime(self.end))
    }
}

fn parse_region(function: &FunctionId, name: &str, tv: &Value) -> Result<Region, ToolError> {
    let s: String = de(function, name, tv)?;
    Region::parse(&s).ok_or_else(|| ToolError::BadArgument {
        function: function.clone(),
        message: format!("unknown region {s:?}"),
    })
}

impl ToolRuntime for StandardRuntime {
    fn invoke(
        &self,
        function: &FunctionId,
        args: &BTreeMap<String, Value>,
    ) -> Result<Value, ToolError> {
        let world = &self.scenario.world;
        match function.0.as_str() {
            // ------------------------------------------------ nautilus ----
            "nautilus.map_links" => self.mapping_value(),
            "nautilus.dependency_table" => {
                let mapping: ValueView<'_, MappingTable> =
                    view(function, "mapping", need(args, function, "mapping")?)?;
                let deps = DependencyTable::from_mapping(world, &mapping, 0.2);
                out(F::DependencyTable, deps)
            }
            "nautilus.resolve_cable" => {
                let name: String = de(function, "cable_name", need(args, function, "cable_name")?)?;
                let cable = world.cable_by_name(&name).ok_or_else(|| ToolError::Failed {
                    function: function.clone(),
                    message: format!("cable {name:?} not found in the cartography catalog"),
                    transient: false,
                })?;
                out(F::CableRef, CableRefData { id: cable.id.0, name: cable.name.clone() })
            }
            "nautilus.cable_dependencies" => {
                let deps: ValueView<'_, DependencyTable> =
                    view(function, "deps", need(args, function, "deps")?)?;
                let cable: CableRefData = de(function, "cable", need(args, function, "cable")?)?;
                out(F::CableDependencies, deps.for_cable(CableId(cable.id)))
            }

            // ------------------------------------------------- xaminer ----
            "xaminer.process_event" => {
                let event: ValueView<'_, FailureEvent> =
                    view(function, "event", need(args, function, "event")?)?;
                let deps: ValueView<'_, DependencyTable> =
                    view(function, "deps", need(args, function, "deps")?)?;
                out(F::FailureImpact, xaminer_sim::process_event(world, &deps, &event))
            }
            "xaminer.impact_report" => {
                let impact: ValueView<'_, FailureImpact> =
                    view(function, "impact", need(args, function, "impact")?)?;
                out(F::ImpactReport, xaminer_sim::impact::aggregate(world, &impact))
            }
            "xaminer.country_aggregate" => {
                let report: ValueView<'_, xaminer_sim::ImpactReport> =
                    view(function, "report", need(args, function, "report")?)?;
                out(F::CountryImpactTable, country_table(&report))
            }
            "xaminer.event_impact" => {
                let event: ValueView<'_, FailureEvent> =
                    view(function, "event", need(args, function, "event")?)?;
                let deps_value = self.default_deps_value()?;
                let deps: ValueView<'_, DependencyTable> =
                    view_of(&deps_value, "default deps")?;
                let failure = xaminer_sim::process_event(world, &deps, &event);
                let report = xaminer_sim::impact::aggregate(world, &failure);
                out(F::CountryImpactTable, country_table(&report))
            }
            "xaminer.cascade" => {
                let impact: ValueView<'_, FailureImpact> =
                    view(function, "impact", need(args, function, "impact")?)?;
                let config = CascadeConfig { base_load: 0.75, ..CascadeConfig::default() };
                let timeline = xaminer_sim::cascade::propagate(world, &impact, &config);
                out(F::CascadeTimeline, timeline)
            }
            "xaminer.risk_profiles" => {
                let deps: ValueView<'_, DependencyTable> =
                    view(function, "deps", need(args, function, "deps")?)?;
                out_seq(F::RiskProfiles, xaminer_sim::risk::all_risk_profiles(world, &deps))
            }

            // ----------------------------------------------------- bgp ----
            "bgp.updates" => {
                let w: WindowArg = de(function, "window", need(args, function, "window")?)?;
                let window = w.to_window();
                let full_value = self.updates_value()?;
                let full: ValueView<'_, Vec<BgpUpdate>> =
                    view_of(&full_value, "bgp updates")?;
                let updates: Vec<BgpUpdate> =
                    full.iter().filter(|u| window.contains(u.time)).cloned().collect();
                out_seq(F::BgpUpdates, updates)
            }
            "bgp.rib_snapshot" => {
                let w: WindowArg = de(function, "window", need(args, function, "window")?)?;
                let sim = BgpSimulator::new(&self.scenario);
                let peers: Vec<net_model::Asn> =
                    sim.collectors().iter().take(10).copied().collect();
                let rib = bgp_sim::RibSnapshot::capture(
                    &self.scenario,
                    &peers,
                    w.to_window().end,
                );
                out(F::RibSnapshot, rib)
            }
            "bgp.detect_bursts" => {
                let updates: ValueView<'_, Vec<BgpUpdate>> =
                    view(function, "updates", need(args, function, "updates")?)?;
                let w: WindowArg = de(function, "window", need(args, function, "window")?)?;
                let window = w.to_window();
                let hours = (window.duration().as_seconds() / 3600).clamp(24, 400) as usize;
                let bursts = detect_update_bursts(&updates, window, hours, 3.0);
                out_seq(F::BgpBursts, bursts)
            }
            "bgp.detect_moas" => {
                let updates: ValueView<'_, Vec<BgpUpdate>> =
                    view(function, "updates", need(args, function, "updates")?)?;
                let baseline_value = self.baseline_rib_value()?;
                let baseline: ValueView<'_, bgp_sim::RibSnapshot> =
                    view_of(&baseline_value, "baseline rib")?;
                out_seq(F::MoasConflicts, detect_moas_conflicts(&updates, &baseline))
            }
            "bgp.valley_violations" => {
                let updates: ValueView<'_, Vec<BgpUpdate>> =
                    view(function, "updates", need(args, function, "updates")?)?;
                // Reference topology: the scenario's quiet start, whose
                // adjacency set is a superset of every later instant's.
                let graph =
                    bgp_sim::AsGraph::at_time(&self.scenario, self.scenario.horizon.start);
                out_seq(F::ValleyViolations, detect_valley_violations(&updates, &graph))
            }
            "bgp.reachability_losses" => {
                let updates: ValueView<'_, Vec<BgpUpdate>> =
                    view(function, "updates", need(args, function, "updates")?)?;
                let rows: Vec<serde_json::Value> = bgp_sim::reachability_losses(&updates)
                    .into_iter()
                    .map(|(peer, prefix, t)| {
                        serde_json::json!({
                            "peer": peer.0,
                            "prefix": prefix.to_string(),
                            "withdrawn_at": t.0,
                        })
                    })
                    .collect();
                Ok(Value::new(F::Table, serde_json::Value::Array(rows)))
            }

            // ----------------------------------------------- traceroute ----
            "traceroute.campaign" => {
                let src = parse_region(function, "src_region", need(args, function, "src_region")?)?;
                let dst = parse_region(function, "dst_region", need(args, function, "dst_region")?)?;
                let w: WindowArg = de(function, "window", need(args, function, "window")?)?;
                let key = format!("campaign:{src:?}:{dst:?}:{}:{}", w.start, w.end);
                self.artifacts.get_or_build(&key, || {
                    let campaign = run_campaign(&self.scenario, src, dst, w.to_window());
                    Ok(Value::native(F::TracerouteCampaign, campaign, false))
                })
            }
            "traceroute.rtt_series" => {
                let campaign: ValueView<'_, CampaignData> =
                    view(function, "campaign", need(args, function, "campaign")?)?;
                out(F::RttSeries, analysis::rtt_series(&campaign, 6 * 3600))
            }
            "traceroute.detect_anomaly" => {
                let campaign: ValueView<'_, CampaignData> =
                    view(function, "campaign", need(args, function, "campaign")?)?;
                out(F::AnomalyReport, analysis::detect_anomaly(&campaign))
            }

            // ---------------------------------------------------- util ----
            "util.cable_failure_event" => {
                let cable: CableRefData = de(function, "cable", need(args, function, "cable")?)?;
                out(
                    F::FailureEventSpec,
                    FailureEvent::CableFailure { cable: CableId(cable.id) },
                )
            }
            "util.compile_disasters" => {
                #[derive(serde::Deserialize)]
                struct Kind {
                    kind: String,
                }
                let kinds: Vec<Kind> =
                    de(function, "disasters", need(args, function, "disasters")?)?;
                let p: f64 = de(
                    function,
                    "failure_probability",
                    need(args, function, "failure_probability")?,
                )?;
                let kinds: Vec<String> = kinds.into_iter().map(|k| k.kind).collect();
                let specs = disasters::compile(&kinds, p);
                if specs.is_empty() {
                    return Err(ToolError::Failed {
                        function: function.clone(),
                        message: format!("no hazard zones match kinds {kinds:?}"),
                        transient: false,
                    });
                }
                let event = FailureEvent::Compound(
                    specs.into_iter().map(FailureEvent::Disaster).collect(),
                );
                out(F::FailureEventSpec, event)
            }
            "util.combine_impact_tables" => {
                let a: ValueView<'_, CountryTableData> =
                    view(function, "a", need(args, function, "a")?)?;
                let b: ValueView<'_, CountryTableData> =
                    view(function, "b", need(args, function, "b")?)?;
                out(F::CountryImpactTable, combine_tables(&a, &b))
            }
            "util.corridor_failure_event" => {
                let src = parse_region(function, "src_region", need(args, function, "src_region")?)?;
                let dst = parse_region(function, "dst_region", need(args, function, "dst_region")?)?;
                let cables = corridor_cables(world, src, dst, 3);
                if cables.is_empty() {
                    return Err(ToolError::Failed {
                        function: function.clone(),
                        message: format!("no cable systems connect {src} and {dst}"),
                        transient: false,
                    });
                }
                let event = FailureEvent::Compound(
                    cables
                        .into_iter()
                        .map(|cable| FailureEvent::CableFailure { cable })
                        .collect(),
                );
                out(F::FailureEventSpec, event)
            }
            "util.score_suspect_cables" => {
                let anomaly: ValueView<'_, AnomalyData> =
                    view(function, "anomaly", need(args, function, "anomaly")?)?;
                let deps: ValueView<'_, DependencyTable> =
                    view(function, "deps", need(args, function, "deps")?)?;
                let mut cable_links: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
                let mut names: BTreeMap<u32, String> = BTreeMap::new();
                for cable in deps.cables() {
                    let entry = deps.for_cable(cable);
                    cable_links
                        .insert(cable.0, entry.links.iter().map(|l| l.0).collect());
                    names.insert(cable.0, world.cable(cable).name.clone());
                }
                out(
                    F::SuspectRanking,
                    analysis::score_suspects(&anomaly, &cable_links, &names),
                )
            }
            "util.correlate_evidence" => {
                let bursts: ValueView<'_, Vec<bgp_sim::UpdateBurst>> =
                    view(function, "bursts", need(args, function, "bursts")?)?;
                let anomaly: ValueView<'_, AnomalyData> =
                    view(function, "anomaly", need(args, function, "anomaly")?)?;
                let times: Vec<i64> = bursts.iter().map(|b| b.window.start.0).collect();
                out(
                    F::CorrelationReport,
                    analysis::correlate(&times, bursts.len(), &anomaly),
                )
            }
            "util.synthesize_verdict" => {
                let suspects: ValueView<'_, SuspectData> =
                    view(function, "suspects", need(args, function, "suspects")?)?;
                let correlation: ValueView<'_, CorrelationData> =
                    view(function, "correlation", need(args, function, "correlation")?)?;
                let anomaly: ValueView<'_, AnomalyData> =
                    view(function, "anomaly", need(args, function, "anomaly")?)?;
                out(
                    F::ForensicVerdict,
                    analysis::synthesize_verdict(&suspects, &correlation, &anomaly),
                )
            }
            "util.attribute_control_plane" => {
                let moas: ValueView<'_, Vec<MoasConflict>> =
                    view(function, "moas", need(args, function, "moas")?)?;
                let valleys: ValueView<'_, Vec<ValleyViolation>> =
                    view(function, "valleys", need(args, function, "valleys")?)?;
                let legit: BTreeMap<String, u32> = world
                    .prefixes
                    .iter()
                    .map(|p| (p.net.to_string(), p.origin.0))
                    .collect();
                out(
                    F::ControlPlaneReport,
                    analysis::attribute_control_plane(&moas, &valleys, &legit),
                )
            }
            "xaminer.control_plane_impact" => {
                let report: ValueView<'_, ControlPlaneReportData> =
                    view(function, "report", need(args, function, "report")?)?;
                out(F::CountryImpactTable, control_plane_impact_table(world, &report))
            }
            "util.build_timeline" => {
                let cascade: ValueView<'_, xaminer_sim::CascadeTimeline> =
                    view(function, "cascade", need(args, function, "cascade")?)?;
                let bursts: ValueView<'_, Vec<bgp_sim::UpdateBurst>> =
                    view(function, "bursts", need(args, function, "bursts")?)?;
                let anomaly: ValueView<'_, AnomalyData> =
                    view(function, "anomaly", need(args, function, "anomaly")?)?;
                // Anchor cascade offsets at the first observed event (or the
                // horizon start for pure what-if analyses).
                let anchor = self
                    .scenario
                    .timeline()
                    .first()
                    .map(|(t, _)| *t)
                    .unwrap_or(self.scenario.horizon.start);
                let mut cascade_events: Vec<(i64, String, String)> = Vec::new();
                for round in &cascade.rounds {
                    let t = (anchor + round.at_offset).0;
                    if !round.newly_failed_links.is_empty() {
                        cascade_events.push((
                            t,
                            if round.round == 0 { "cable".into() } else { "ip".into() },
                            format!(
                                "round {}: {} link(s) failed",
                                round.round,
                                round.newly_failed_links.len()
                            ),
                        ));
                    }
                    if !round.newly_degraded_ases.is_empty() {
                        cascade_events.push((
                            t,
                            "as".into(),
                            format!(
                                "round {}: {} AS(es) degraded",
                                round.round,
                                round.newly_degraded_ases.len()
                            ),
                        ));
                    }
                }
                let burst_times: Vec<i64> = bursts.iter().map(|b| b.window.start.0).collect();
                out(
                    F::UnifiedTimeline,
                    analysis::build_timeline(&cascade_events, &burst_times, &anomaly),
                )
            }

            // ------------------------------------------------------ qa ----
            "qa.verify_output" => {
                let value = need(args, function, "value")?;
                let mut checks = vec!["non-null".to_string()];
                let mut notes = Vec::new();
                // Native artifacts are never null; only JSON payloads need
                // the projection inspected.
                let mut passed = value.is_native() || !value.json().is_null();
                if value.is_empty_payload() {
                    passed = false;
                    notes.push("result payload is empty".to_string());
                } else {
                    checks.push("non-empty".to_string());
                }
                checks.push(format!("declared format {}", value.format));
                out(F::QaReport, QaData { passed, checks, notes })
            }

            _ => Err(ToolError::Unbound(function.clone())),
        }
    }
}

/// Combines two country tables: counts add, scores compose as independent
/// events (`1 − (1−a)(1−b)`), rows re-sort by score.
fn combine_tables(a: &CountryTableData, b: &CountryTableData) -> CountryTableData {
    let mut by_country: BTreeMap<String, CountryRow> = BTreeMap::new();
    for row in a.rows.iter().chain(&b.rows) {
        match by_country.get_mut(&row.country) {
            None => {
                by_country.insert(row.country.clone(), row.clone());
            }
            Some(acc) => {
                acc.ips_affected += row.ips_affected;
                acc.links_affected += row.links_affected;
                acc.ases_affected = acc.ases_affected.max(row.ases_affected);
                acc.as_links_affected += row.as_links_affected;
                acc.impact_score = 1.0 - (1.0 - acc.impact_score) * (1.0 - row.impact_score);
            }
        }
    }
    let mut rows: Vec<CountryRow> = by_country.into_values().collect();
    rows.sort_by(|x, y| {
        y.impact_score.total_cmp(&x.impact_score).then(x.country.cmp(&y.country))
    });
    CountryTableData { rows }
}

/// Builds the country-level impact table for an attributed control-plane
/// incident: per country, how many of its registered ASes are
/// misdirected (hijack capture cone) or path-shifted (leak), scored by
/// that fraction. Physical columns (IPs/links) are zero — nothing fails.
fn control_plane_impact_table(
    world: &world::World,
    report: &ControlPlaneReportData,
) -> CountryTableData {
    use xaminer_sim::ControlPlaneIncident;
    let Some(offender) = report.offender else {
        return CountryTableData { rows: Vec::new() };
    };
    let offender = net_model::Asn(offender);
    let incidents: Vec<ControlPlaneIncident> = match report.kind.as_str() {
        "prefix-hijack" => report
            .victim_prefixes
            .iter()
            .filter_map(|p| net_model::Ipv4Net::parse(p).ok())
            .map(|net| ControlPlaneIncident::PrefixHijack {
                origin: offender,
                victim_prefix: net,
            })
            .collect(),
        "route-leak" => vec![ControlPlaneIncident::RouteLeak { leaker: offender }],
        _ => Vec::new(),
    };

    let mut affected: BTreeMap<net_model::Country, std::collections::BTreeSet<net_model::Asn>> =
        BTreeMap::new();
    for impact in xaminer_sim::control_plane::assess_many(world, &incidents) {
        for asn in impact.affected_ases {
            if let Some(info) = world.as_info(asn) {
                affected.entry(info.country).or_default().insert(asn);
            }
        }
    }

    let mut rows: Vec<CountryRow> = affected
        .into_iter()
        .map(|(country, ases)| {
            let total = world.as_count_in_country(country).max(1);
            CountryRow {
                country: country.code().to_string(),
                ips_affected: 0,
                links_affected: 0,
                ases_affected: ases.len(),
                as_links_affected: 0,
                impact_score: (ases.len() as f64 / total as f64).min(1.0),
            }
        })
        .collect();
    rows.sort_by(|x, y| {
        y.impact_score.total_cmp(&x.impact_score).then(x.country.cmp(&y.country))
    });
    CountryTableData { rows }
}

/// Converts an impact report into the country table schema.
fn country_table(report: &xaminer_sim::ImpactReport) -> CountryTableData {
    CountryTableData {
        rows: report
            .per_country
            .iter()
            .map(|c| CountryRow {
                country: c.country.code().to_string(),
                ips_affected: c.ips_affected,
                links_affected: c.links_affected,
                ases_affected: c.ases_affected,
                as_links_affected: c.as_links_affected,
                impact_score: c.impact_score,
            })
            .collect(),
    }
}

/// The main cable systems connecting two regions, by dependent-link count.
fn corridor_cables(
    world: &world::World,
    src: Region,
    dst: Region,
    limit: usize,
) -> Vec<CableId> {
    let mut scored: Vec<(usize, CableId)> = world
        .cables
        .iter()
        .filter(|c| {
            let regions: Vec<Region> =
                c.landings.iter().map(|&l| world.city(l).region).collect();
            regions.contains(&src) && regions.contains(&dst)
        })
        .map(|c| (world.links_on_cable(c.id).len(), c.id))
        .filter(|(n, _)| *n > 0)
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.into_iter().take(limit).map(|(_, c)| c).collect()
}

/// Runs a probe campaign: up to 16 probes from `src`, up to 12 access-AS
/// destinations in `dst`, two Paris flows per pair, sampled every 8 hours.
/// The flow sweep broadens link coverage (MDA-style), which the forensic
/// suspect scoring depends on.
fn run_campaign(
    scenario: &Scenario,
    src: Region,
    dst: Region,
    window: TimeWindow,
) -> CampaignData {
    let world = &scenario.world;
    let sim = TracerouteSimulator::new(scenario);

    let all_probes: Vec<&world::Probe> =
        world.probes.iter().filter(|p| p.region == src).collect();
    let step = (all_probes.len() / 16).max(1);
    let probes: Vec<&world::Probe> = all_probes.iter().step_by(step).take(16).copied().collect();

    let all_dests: Vec<net_model::Ipv4Addr> = world
        .prefixes
        .iter()
        .filter(|p| {
            world
                .as_info(p.origin)
                .map(|a| a.region == dst && a.tier == world::AsTier::Access)
                == Some(true)
        })
        .map(|p| p.net.host(1))
        .collect();
    let dstep = (all_dests.len() / 12).max(1);
    let dests: Vec<net_model::Ipv4Addr> =
        all_dests.iter().step_by(dstep).take(12).copied().collect();

    let interval = SimDuration::hours(8);
    let mut measurements = Vec::new();
    let mut t = window.start;
    while t < window.end {
        for probe in &probes {
            for &dest in &dests {
                for flow in [0u16, 1] {
                    let fwd =
                        traceroute_sim::path::forwarding_path(&sim, probe.id, dest, t, flow);
                    let trace =
                        traceroute_sim::rtt::execute(&sim, probe.id, dest, t, flow, &fwd);
                    measurements.push(MeasurementData {
                        probe: probe.id.0,
                        dst: dest.to_string(),
                        time: t.0,
                        rtt_ms: trace.end_to_end_rtt(),
                        links: fwd.links().iter().map(|l| l.0).collect(),
                    });
                }
            }
        }
        t = t + interval;
    }

    CampaignData {
        src_region: src.name().to_string(),
        dst_region: dst.name().to_string(),
        window_start: window.start.0,
        window_end: window.end.0,
        interval_s: interval.as_seconds(),
        measurements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    fn tv(format: F, v: serde_json::Value) -> Value {
        Value::new(format, v)
    }

    fn invoke(
        rt: &StandardRuntime,
        id: &str,
        args: Vec<(&str, Value)>,
    ) -> Result<Value, ToolError> {
        let map: BTreeMap<String, Value> =
            args.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        rt.invoke(&FunctionId::from(id), &map)
    }

    #[test]
    fn resolve_and_fail_cable() {
        let rt = StandardRuntime::new(scenarios::cs1_scenario());
        let cable = invoke(
            &rt,
            "nautilus.resolve_cable",
            vec![("cable_name", tv(F::Text, serde_json::json!("SeaMeWe-5")))],
        )
        .unwrap();
        let c: CableRefData = cable.parse().unwrap();
        assert_eq!(c.name, "SeaMeWe-5");

        let missing = invoke(
            &rt,
            "nautilus.resolve_cable",
            vec![("cable_name", tv(F::Text, serde_json::json!("Atlantis Express")))],
        );
        assert!(matches!(missing, Err(ToolError::Failed { .. })));

        let event = invoke(&rt, "util.cable_failure_event", vec![("cable", cable)]).unwrap();
        assert_eq!(event.format, F::FailureEventSpec);
    }

    #[test]
    fn cs1_manual_chain_produces_country_table() {
        let rt = StandardRuntime::new(scenarios::cs1_scenario());
        let mapping = invoke(&rt, "nautilus.map_links", vec![]).unwrap();
        assert!(mapping.is_native(), "mapping crosses boundaries natively");
        let deps =
            invoke(&rt, "nautilus.dependency_table", vec![("mapping", mapping)]).unwrap();
        let cable = invoke(
            &rt,
            "nautilus.resolve_cable",
            vec![("cable_name", tv(F::Text, serde_json::json!("SeaMeWe-5")))],
        )
        .unwrap();
        let event =
            invoke(&rt, "util.cable_failure_event", vec![("cable", cable)]).unwrap();
        let impact = invoke(
            &rt,
            "xaminer.process_event",
            vec![("event", event), ("deps", deps)],
        )
        .unwrap();
        let report = invoke(&rt, "xaminer.impact_report", vec![("impact", impact)]).unwrap();
        let table =
            invoke(&rt, "xaminer.country_aggregate", vec![("report", report)]).unwrap();
        let t: CountryTableData = table.parse().unwrap();
        assert!(!t.rows.is_empty());
        assert!(t.rows[0].impact_score >= t.rows.last().unwrap().impact_score);
    }

    #[test]
    fn event_impact_is_one_call() {
        let rt = StandardRuntime::new(scenarios::cs2_scenario());
        let disasters = tv(
            F::DisasterSpecs,
            serde_json::json!([{"kind": "earthquake", "qualifier": "severe"},
                               {"kind": "hurricane", "qualifier": "globally"}]),
        );
        let event = invoke(
            &rt,
            "util.compile_disasters",
            vec![
                ("disasters", disasters),
                ("failure_probability", tv(F::Scalar, serde_json::json!(0.1))),
            ],
        )
        .unwrap();
        let table = invoke(&rt, "xaminer.event_impact", vec![("event", event)]).unwrap();
        let t: CountryTableData = table.parse().unwrap();
        assert!(!t.rows.is_empty(), "a 12-zone catalog at 10% must hit something");
    }

    #[test]
    fn default_deps_reuses_the_cached_mapping_artifact() {
        let rt = StandardRuntime::new(scenarios::cs2_scenario());
        let event = invoke(
            &rt,
            "util.compile_disasters",
            vec![
                (
                    "disasters",
                    tv(F::DisasterSpecs, serde_json::json!([{"kind": "earthquake"}])),
                ),
                ("failure_probability", tv(F::Scalar, serde_json::json!(0.1))),
            ],
        )
        .unwrap();
        invoke(&rt, "xaminer.event_impact", vec![("event", event)]).unwrap();
        // Mapping and default deps are *world-level* artifacts now: they
        // live in the world-keyed store, not the scenario store.
        assert!(rt.artifacts().is_empty(), "no scenario-level artifacts for event_impact");
        assert!(rt.world_artifacts().contains("nautilus.mapping"));
        assert!(rt.world_artifacts().contains("nautilus.default_deps"));
        // And the mapping the store holds is the same one map_links serves.
        let m1 = invoke(&rt, "nautilus.map_links", vec![]).unwrap();
        let m2 = invoke(&rt, "nautilus.map_links", vec![]).unwrap();
        assert!(m1.is_native());
        let p1: *const MappingTable = m1.native_ref::<MappingTable>().unwrap();
        let p2: *const MappingTable = m2.native_ref::<MappingTable>().unwrap();
        assert!(std::ptr::eq(p1, p2), "map_links serves the cached artifact");
    }

    #[test]
    fn scenarios_sharing_a_world_share_the_mapping_artifact() {
        // The PR-5 bugfix: cs1 (quiet) and cs3 (two cable cuts) are
        // different scenarios with private scenario stores over the same
        // Arc<World> — the Nautilus mapping run must be computed once.
        let rt1 = StandardRuntime::new(scenarios::cs1_scenario());
        let rt3 = StandardRuntime::new(scenarios::cs3_scenario());
        assert!(Arc::ptr_eq(rt1.world_artifacts(), rt3.world_artifacts()));
        let m1 = invoke(&rt1, "nautilus.map_links", vec![]).unwrap();
        let m3 = invoke(&rt3, "nautilus.map_links", vec![]).unwrap();
        let p1: *const MappingTable = m1.native_ref::<MappingTable>().unwrap();
        let p3: *const MappingTable = m3.native_ref::<MappingTable>().unwrap();
        assert!(std::ptr::eq(p1, p3), "one mapping run across scenarios sharing a world");
    }

    #[test]
    fn artifact_store_retries_after_a_failed_build() {
        let store = ArtifactStore::new();
        let err = store.get_or_build("k", || {
            Err(ToolError::Failed {
                function: FunctionId::from("t.flaky"),
                message: "transient".into(),
                transient: true,
            })
        });
        assert!(err.is_err());
        assert!(store.is_empty(), "failed slots are evicted");
        // The next request rebuilds and the success stays cached.
        let ok = store
            .get_or_build("k", || Ok(Value::new(F::Scalar, serde_json::json!(1))))
            .unwrap();
        assert_eq!(ok.json(), &serde_json::json!(1));
        let cached = store
            .get_or_build("k", || panic!("must not rebuild a cached success"))
            .unwrap();
        assert_eq!(cached, ok);
    }

    #[test]
    fn shared_artifact_store_is_computed_once_across_runtimes() {
        let scenario = Arc::new(scenarios::cs1_scenario());
        let store = Arc::new(ArtifactStore::new());
        let rt1 = StandardRuntime::shared(Arc::clone(&scenario), Arc::clone(&store));
        let rt2 = StandardRuntime::shared(Arc::clone(&scenario), Arc::clone(&store));

        let m1 = invoke(&rt1, "nautilus.map_links", vec![]).unwrap();
        let m2 = invoke(&rt2, "nautilus.map_links", vec![]).unwrap();
        assert!(store.is_empty(), "the mapping lives in the world store, not the scenario one");
        // Both runtimes serve the same native artifact.
        let p1: *const MappingTable = m1.native_ref::<MappingTable>().unwrap();
        let p2: *const MappingTable = m2.native_ref::<MappingTable>().unwrap();
        assert!(std::ptr::eq(p1, p2), "artifact is shared, not recomputed");
    }

    #[test]
    fn corridor_event_connects_europe_asia() {
        let rt = StandardRuntime::new(scenarios::cs3_scenario());
        let event = invoke(
            &rt,
            "util.corridor_failure_event",
            vec![
                ("src_region", tv(F::RegionScope, serde_json::json!("Europe"))),
                ("dst_region", tv(F::RegionScope, serde_json::json!("Asia"))),
            ],
        )
        .unwrap();
        let ev: FailureEvent = event.parse().unwrap();
        match ev {
            FailureEvent::Compound(events) => {
                assert!((1..=3).contains(&events.len()));
            }
            other => panic!("expected compound, got {other:?}"),
        }
    }

    #[test]
    fn bgp_pipeline_detects_cs3_bursts() {
        let rt = StandardRuntime::new(scenarios::cs3_scenario());
        let window = tv(F::TimeWindow, serde_json::json!({"start": 0, "end": 10 * 86_400}));
        let updates = invoke(&rt, "bgp.updates", vec![("window", window.clone())]).unwrap();
        assert!(updates.is_native(), "update stream crosses natively");
        let bursts = invoke(
            &rt,
            "bgp.detect_bursts",
            vec![("updates", updates), ("window", window)],
        )
        .unwrap();
        let b: Vec<bgp_sim::UpdateBurst> = bursts.parse().unwrap();
        assert!(!b.is_empty(), "two cable cuts must burst");
    }

    #[test]
    fn control_plane_chain_attributes_the_cs5_hijack() {
        let rt = StandardRuntime::new(scenarios::cs5_hijack_scenario());
        let (hijacker, victim_prefix) = scenarios::cs5_actors(&rt.scenario().world);
        let window = tv(F::TimeWindow, serde_json::json!({"start": 0, "end": 10 * 86_400}));
        let updates = invoke(&rt, "bgp.updates", vec![("window", window)]).unwrap();

        let moas =
            invoke(&rt, "bgp.detect_moas", vec![("updates", updates.clone())]).unwrap();
        let conflicts: Vec<bgp_sim::MoasConflict> = moas.parse().unwrap();
        assert!(!conflicts.is_empty(), "the hijack must surface as a MOAS conflict");
        assert!(conflicts.iter().any(|c| c.prefix == victim_prefix));
        assert!(conflicts.iter().any(|c| c.origins.contains(&net_model::Asn(hijacker.0))));

        let valleys =
            invoke(&rt, "bgp.valley_violations", vec![("updates", updates)]).unwrap();
        let violations: Vec<bgp_sim::ValleyViolation> = valleys.parse().unwrap();
        assert!(violations.is_empty(), "a pure hijack violates no export rule");

        let report = invoke(
            &rt,
            "util.attribute_control_plane",
            vec![("moas", moas), ("valleys", valleys)],
        )
        .unwrap();
        let r: ControlPlaneReportData = report.parse().unwrap();
        assert_eq!(r.kind, "prefix-hijack");
        assert_eq!(r.offender, Some(hijacker.0), "the hijacker is identified");
        assert!(r.confidence > 0.5);
        assert!(r.victim_prefixes.contains(&victim_prefix.to_string()));

        let table =
            invoke(&rt, "xaminer.control_plane_impact", vec![("report", report)]).unwrap();
        let t: CountryTableData = table.parse().unwrap();
        assert!(!t.rows.is_empty(), "the capture cone touches some countries");
        assert!(t.rows.iter().all(|row| row.links_affected == 0), "nothing physically fails");
    }

    #[test]
    fn unknown_function_is_unbound() {
        let rt = StandardRuntime::new(scenarios::cs1_scenario());
        assert!(matches!(
            invoke(&rt, "frobnicate.all", vec![]),
            Err(ToolError::Unbound(_))
        ));
    }

    #[test]
    fn qa_flags_empty_results() {
        let rt = StandardRuntime::new(scenarios::cs1_scenario());
        let bad = invoke(
            &rt,
            "qa.verify_output",
            vec![("value", tv(F::Table, serde_json::json!([])))],
        )
        .unwrap();
        let qa: QaData = bad.parse().unwrap();
        assert!(!qa.passed);

        let good = invoke(
            &rt,
            "qa.verify_output",
            vec![("value", tv(F::Table, serde_json::json!([{"x": 1}])))],
        )
        .unwrap();
        let qa: QaData = good.parse().unwrap();
        assert!(qa.passed);

        // Native sequence artifacts keep JSON emptiness semantics.
        let empty_native = Value::native(F::BgpBursts, Vec::<u32>::new(), true);
        let qa: QaData = invoke(&rt, "qa.verify_output", vec![("value", empty_native)])
            .unwrap()
            .parse()
            .unwrap();
        assert!(!qa.passed);
    }
}
