//! Scenario blueprints: the pure-data output of family expansion.
//!
//! A blueprint separates the two halves of a scenario so the expensive
//! half can be shared: the [`WorldConfig`] is the world's content
//! address (any number of blueprints may name the same config), and the
//! event script is cheap to resolve per blueprint. Realization composes
//! them into a [`world::Scenario`].

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use world::{Scenario, World, WorldConfig};

use crate::cache::WorldCache;
use crate::script::ScriptStep;

/// One fully-specified scenario, before any world is generated.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBlueprint {
    /// Unique within a family expansion; the engine keys the scenario
    /// as `"<family-id>/<name>"`.
    pub name: String,
    /// Content address of the world this scenario plays out in.
    pub config: WorldConfig,
    /// Horizon length in days (`now` sits at the end, as in
    /// [`Scenario::quiet`]).
    pub horizon_days: i64,
    /// The incident script, resolved against the generated world.
    pub script: Vec<ScriptStep>,
}

/// The serializable identity of a blueprint's timeline (the script as
/// data plus the world's content hash) — what the determinism suite
/// compares byte-for-byte across expansions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlueprintSpec {
    pub name: String,
    pub world_hash: u64,
    pub horizon_days: i64,
    pub script: Vec<ScriptStep>,
}

impl ScenarioBlueprint {
    /// The world's content address ([`WorldConfig::content_hash`]).
    pub fn world_hash(&self) -> u64 {
        self.config.content_hash()
    }

    /// The serializable spec (see [`BlueprintSpec`]).
    pub fn spec(&self) -> BlueprintSpec {
        BlueprintSpec {
            name: self.name.clone(),
            world_hash: self.world_hash(),
            horizon_days: self.horizon_days,
            script: self.script.clone(),
        }
    }

    /// Composes the blueprint with an already-generated world. The world
    /// must be the one the config names (debug-asserted against the full
    /// config, not just the seed); script steps resolve against it in
    /// order, so the realized event ids are deterministic.
    pub fn realize(&self, world: Arc<World>) -> Scenario {
        debug_assert_eq!(
            world.config, self.config,
            "blueprint {:?} realized against a world from another config",
            self.name
        );
        let resolved: Vec<_> =
            self.script.iter().flat_map(|step| step.resolve(&world)).collect();
        let mut scenario = Scenario::quiet(world, self.horizon_days);
        for (kind, at, until) in resolved {
            scenario.push_event(kind, at, until);
        }
        scenario
    }

    /// Realizes through a [`WorldCache`]: blueprints sharing a config
    /// share one generation (and one `Arc<World>`).
    pub fn forge(&self, cache: &WorldCache) -> Scenario {
        self.realize(cache.get_or_generate(&self.config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::CableTarget;

    fn blueprint() -> ScenarioBlueprint {
        ScenarioBlueprint {
            name: "corridor-cut".into(),
            config: WorldConfig { seed: 7, ..WorldConfig::default() },
            horizon_days: 10,
            script: vec![ScriptStep::CutCables {
                target: CableTarget::Named("SeaMeWe-5".into()),
                at_hour: 24 * 4,
                until_hour: None,
            }],
        }
    }

    #[test]
    fn forge_shares_the_world_across_blueprints() {
        let cache = WorldCache::new();
        let a = blueprint().forge(&cache);
        let b = ScenarioBlueprint { name: "other".into(), ..blueprint() }.forge(&cache);
        assert!(Arc::ptr_eq(&a.world, &b.world));
        assert_eq!(cache.generations(), 1);
        assert_eq!(a.events.len(), 1);
        assert!(!a.links_down_at(a.now).is_empty(), "the cut is live at now");
    }

    #[test]
    fn spec_is_stable_across_clones() {
        let b = blueprint();
        assert_eq!(b.spec(), b.clone().spec());
        assert_eq!(b.world_hash(), b.config.content_hash());
    }
}
