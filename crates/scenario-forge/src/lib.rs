//! # scenario-forge — parameterized scenario families over cached worlds
//!
//! The workflow engine is only as useful as the breadth of measurement
//! scenarios it can pose. This crate turns scenario authoring from
//! "hand-seed one world, hand-place one event" into a **library of
//! deterministic, parameterized scenario families**:
//!
//! * a [`Family`] is a named generator (regional blackout, multi-cable
//!   cut cascade, national censorship, transit de-peering, IXP outage,
//!   seasonal eyeball growth, submarine-cable repair window, corridor
//!   congestion storm, festoon buildout, targeted prefix hijack,
//!   accidental transit leak) that expands a [`FamilyParams`] into a
//!   fleet of [`ScenarioBlueprint`]s;
//! * a [`ScenarioBlueprint`] is pure data: a [`world::WorldConfig`]
//!   naming the world, plus an **event script** ([`ScriptStep`]) whose
//!   targets ("the top-2 Europe–Asia corridor cables", "every cable
//!   landing in Egypt", "the Asian region hub") resolve against the
//!   generated world deterministically;
//! * the [`WorldCache`] is a **content-addressed** `Arc<World>` cache
//!   keyed by the config's bit-exact identity: N blueprints that share a
//!   config pay for one generation, and every realized scenario holds
//!   the *same* `Arc<World>` (witnessed by `Arc::ptr_eq`). Slots are
//!   build-once `OnceLock`s, the same shape as `toolkit::ArtifactStore`:
//!   concurrent requesters for one config block on the single builder
//!   instead of duplicating the (hundreds of milliseconds) generation.
//!
//! Everything is a pure function of [`FamilyParams`]: equal params
//! expand to byte-identical blueprints and realize byte-identical
//! scenarios, across runs and platforms — the property the
//! `forge_determinism` suite pins.

pub mod blueprint;
pub mod cache;
pub mod compose;
pub mod families;
pub mod script;

pub use blueprint::ScenarioBlueprint;
pub use cache::{global_cache, SharedWorldCache, WorldCache};
pub use compose::{compose, merge_scripts, ComposeError};
pub use families::{Family, FamilyParams};
pub use script::{AsTarget, CableTarget, DisasterSite, ScriptStep};
