//! The content-addressed world cache.
//!
//! [`world::generate`] is the serving stack's remaining cold-start cost:
//! a full world (physical + network + measurement layers) takes hundreds
//! of milliseconds to build. Scenario families multiply scenarios much
//! faster than they multiply *worlds* — a ten-scenario fleet typically
//! names two or three distinct [`WorldConfig`]s — so the cache keys
//! generated worlds by the config's bit-exact content identity
//! ([`WorldConfig::canonical_bits`]) and hands every matching request
//! the same `Arc<World>`.
//!
//! Slots are build-once `OnceLock`s behind a short-lived map lock, the
//! same shape as `toolkit::ArtifactStore`: the slot map is only locked
//! long enough to clone a slot handle, and concurrent requesters for
//! one config block on that slot's single builder instead of generating
//! the world twice. Generation is infallible, so unlike the artifact
//! store there is no error-eviction path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use world::{generate, World, WorldConfig};

/// One build-once world slot.
type WorldSlot = Arc<OnceLock<Arc<World>>>;

/// A concurrent, shareable cache of generated worlds, content-addressed
/// by [`WorldConfig`]. A hit is a pointer bump; a miss generates exactly
/// once no matter how many threads race on the same config.
#[derive(Default)]
pub struct WorldCache {
    slots: Mutex<BTreeMap<WorldConfig, WorldSlot>>,
    /// How many worlds have actually been generated (diagnostics: the
    /// cache-sharing tests and the bench trajectory read this).
    generations: AtomicUsize,
}

impl WorldCache {
    /// An empty cache.
    pub fn new() -> Self {
        WorldCache::default()
    }

    /// The shared world for `config`, generating (once) on a miss.
    pub fn get_or_generate(&self, config: &WorldConfig) -> Arc<World> {
        let slot = Arc::clone(self.slots.lock().entry(config.clone()).or_default());
        Arc::clone(slot.get_or_init(|| {
            self.generations.fetch_add(1, Ordering::Relaxed);
            Arc::new(generate(config))
        }))
    }

    /// The cached world for `config`, if one is already built.
    pub fn get(&self, config: &WorldConfig) -> Option<Arc<World>> {
        let slot = Arc::clone(self.slots.lock().get(config)?);
        slot.get().cloned()
    }

    /// Number of distinct configs with a slot (built or being built).
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().is_empty()
    }

    /// How many worlds this cache has actually generated — stays below
    /// [`WorldCache::len`]-many requests whenever configs repeat.
    pub fn generations(&self) -> usize {
        self.generations.load(Ordering::Relaxed)
    }

    /// Content hashes of every cached config, ascending (diagnostics).
    pub fn content_hashes(&self) -> Vec<u64> {
        let mut hashes: Vec<u64> =
            self.slots.lock().keys().map(|c| c.content_hash()).collect();
        hashes.sort_unstable();
        hashes
    }
}

/// The process-wide world cache. `toolkit::scenarios` routes the
/// standard evaluation world through it, so case studies, benches and
/// engine fleets in one process all share a single generation per
/// config.
pub fn global_cache() -> &'static WorldCache {
    static CACHE: OnceLock<WorldCache> = OnceLock::new();
    CACHE.get_or_init(WorldCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_the_same_arc_and_generates_once() {
        let cache = WorldCache::new();
        let config = WorldConfig { seed: 7, ..WorldConfig::default() };
        let a = cache.get_or_generate(&config);
        let b = cache.get_or_generate(&config);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.generations(), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&config).is_some());
    }

    #[test]
    fn distinct_configs_get_distinct_worlds() {
        let cache = WorldCache::new();
        let a = cache.get_or_generate(&WorldConfig { seed: 1, ..WorldConfig::default() });
        let b = cache.get_or_generate(&WorldConfig { seed: 2, ..WorldConfig::default() });
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.generations(), 2);
        assert_eq!(cache.content_hashes().len(), 2);
    }

    #[test]
    fn get_misses_before_generation() {
        let cache = WorldCache::new();
        assert!(cache.is_empty());
        assert!(cache.get(&WorldConfig::default()).is_none());
    }
}
