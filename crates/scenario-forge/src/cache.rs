//! The content-addressed world cache.
//!
//! [`world::generate`] is the serving stack's remaining cold-start cost:
//! a full world (physical + network + measurement layers) takes hundreds
//! of milliseconds to build. Scenario families multiply scenarios much
//! faster than they multiply *worlds* — a ten-scenario fleet typically
//! names two or three distinct [`WorldConfig`]s — so the cache keys
//! generated worlds by the config's bit-exact content identity
//! ([`WorldConfig::canonical_bits`]) and hands every matching request
//! the same `Arc<World>`.
//!
//! Slots are build-once `OnceLock`s behind a short-lived map lock, the
//! same shape as `toolkit::ArtifactStore`: the slot map is only locked
//! long enough to clone a slot handle, and concurrent requesters for
//! one config block on that slot's single builder instead of generating
//! the world twice. Generation is infallible, so unlike the artifact
//! store there is no error-eviction path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use world::{generate, World, WorldConfig};

/// One build-once world slot.
type WorldSlot = Arc<OnceLock<Arc<World>>>;

/// A concurrent, shareable cache of generated worlds, content-addressed
/// by [`WorldConfig`]. A hit is a pointer bump; a miss generates exactly
/// once no matter how many threads race on the same config.
#[derive(Default)]
pub struct WorldCache {
    slots: Mutex<BTreeMap<WorldConfig, WorldSlot>>,
    /// How many worlds have actually been generated (diagnostics: the
    /// cache-sharing tests and the bench trajectory read this).
    generations: AtomicUsize,
}

impl WorldCache {
    /// An empty cache.
    pub fn new() -> Self {
        WorldCache::default()
    }

    /// The shared world for `config`, generating (once) on a miss.
    pub fn get_or_generate(&self, config: &WorldConfig) -> Arc<World> {
        let slot = Arc::clone(self.slots.lock().entry(config.clone()).or_default());
        Arc::clone(slot.get_or_init(|| {
            self.generations.fetch_add(1, Ordering::SeqCst);
            Arc::new(generate(config))
        }))
    }

    /// The cached world for `config`, if one is already built.
    pub fn get(&self, config: &WorldConfig) -> Option<Arc<World>> {
        let slot = Arc::clone(self.slots.lock().get(config)?);
        slot.get().cloned()
    }

    /// Number of distinct configs with a slot (built or being built).
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().is_empty()
    }

    /// How many worlds this cache has actually generated — stays below
    /// [`WorldCache::len`]-many requests whenever configs repeat.
    pub fn generations(&self) -> usize {
        self.generations.load(Ordering::SeqCst)
    }

    /// Content hashes of every cached config, ascending (diagnostics).
    pub fn content_hashes(&self) -> Vec<u64> {
        let mut hashes: Vec<u64> =
            self.slots.lock().keys().map(|c| c.content_hash()).collect();
        hashes.sort_unstable();
        hashes
    }
}

/// The process-wide world cache. `toolkit::scenarios` routes the
/// standard evaluation world through it, and `arachnet::Engine` delegates
/// through a [`SharedWorldCache`] view, so case studies, benches and
/// engine fleets in one process all share a single generation per
/// config.
pub fn global_cache() -> &'static WorldCache {
    static CACHE: OnceLock<WorldCache> = OnceLock::new();
    CACHE.get_or_init(WorldCache::new)
}

/// A per-owner view over a shared [`WorldCache`] (usually the process
/// global): generation delegates to the shared cache — so a process
/// mixing case-study scenarios with engine fleets pays **one** build per
/// config instead of one per cache — while the view keeps its own
/// deterministic stats hook.
///
/// The hook counts the *distinct configs first requested through this
/// view*: exactly the number of generations a private cache would have
/// performed for this owner, regardless of what other owners (or earlier
/// tests in the process) already warmed in the shared cache. That keeps
/// per-engine diagnostics deterministic; [`SharedWorldCache::shared`]
/// exposes the underlying cache for process-wide truth.
pub struct SharedWorldCache {
    shared: &'static WorldCache,
    requested: Mutex<std::collections::BTreeSet<WorldConfig>>,
}

impl SharedWorldCache {
    /// A view over the process-wide [`global_cache`].
    pub fn over_global() -> SharedWorldCache {
        SharedWorldCache::over(global_cache())
    }

    /// A view over an explicit shared cache.
    pub fn over(shared: &'static WorldCache) -> SharedWorldCache {
        SharedWorldCache { shared, requested: Mutex::new(std::collections::BTreeSet::new()) }
    }

    /// The shared world for `config` — generated at most once per
    /// *process*, and recorded against this view's stats.
    pub fn get_or_generate(&self, config: &WorldConfig) -> Arc<World> {
        self.requested.lock().insert(config.clone());
        self.shared.get_or_generate(config)
    }

    /// Distinct configs requested through this view — the number of
    /// generations a private cache would have performed for this owner.
    /// Deterministic regardless of what else warmed the shared cache.
    pub fn generations(&self) -> usize {
        self.requested.lock().len()
    }

    /// Alias of [`SharedWorldCache::generations`], mirroring
    /// [`WorldCache::len`]'s "distinct configs held" reading.
    pub fn len(&self) -> usize {
        self.generations()
    }

    /// Whether nothing was requested through this view yet.
    pub fn is_empty(&self) -> bool {
        self.requested.lock().is_empty()
    }

    /// The underlying shared cache (process-wide stats live there).
    pub fn shared(&self) -> &'static WorldCache {
        self.shared
    }

    /// Content hashes of every config requested through this view,
    /// ascending.
    pub fn content_hashes(&self) -> Vec<u64> {
        let mut hashes: Vec<u64> =
            self.requested.lock().iter().map(|c| c.content_hash()).collect();
        hashes.sort_unstable();
        hashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_the_same_arc_and_generates_once() {
        let cache = WorldCache::new();
        let config = WorldConfig { seed: 7, ..WorldConfig::default() };
        let a = cache.get_or_generate(&config);
        let b = cache.get_or_generate(&config);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.generations(), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&config).is_some());
    }

    #[test]
    fn distinct_configs_get_distinct_worlds() {
        let cache = WorldCache::new();
        let a = cache.get_or_generate(&WorldConfig { seed: 1, ..WorldConfig::default() });
        let b = cache.get_or_generate(&WorldConfig { seed: 2, ..WorldConfig::default() });
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.generations(), 2);
        assert_eq!(cache.content_hashes().len(), 2);
    }

    #[test]
    fn get_misses_before_generation() {
        let cache = WorldCache::new();
        assert!(cache.is_empty());
        assert!(cache.get(&WorldConfig::default()).is_none());
    }

    #[test]
    fn shared_view_counts_deterministically_and_shares_arcs() {
        // Two views over the global cache: each counts its own distinct
        // requests (as if it owned a private cache), but both hand out
        // the *same* Arc — one generation per process per config.
        let a = SharedWorldCache::over_global();
        let b = SharedWorldCache::over_global();
        assert!(a.is_empty());
        let config = WorldConfig { seed: 90_001, ..WorldConfig::default() };
        let wa = a.get_or_generate(&config);
        let wb = b.get_or_generate(&config);
        assert!(Arc::ptr_eq(&wa, &wb), "views share the process-wide generation");
        assert_eq!(a.generations(), 1);
        assert_eq!(b.generations(), 1, "a warm shared cache still counts the request");
        // Re-requesting through one view does not inflate its count.
        let _ = a.get_or_generate(&config);
        assert_eq!(a.generations(), 1);
        assert_eq!(a.len(), 1);
        assert_eq!(a.content_hashes(), vec![config.content_hash()]);
        // The view's stats see only its own traffic.
        let other = WorldConfig { seed: 90_002, ..WorldConfig::default() };
        let _ = b.get_or_generate(&other);
        assert_eq!(b.generations(), 2);
        assert_eq!(a.generations(), 1);
    }
}
