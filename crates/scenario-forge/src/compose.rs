//! Blueprint composition: merging several event scripts into one
//! scenario with interacting incidents.
//!
//! A composed blueprint is how a campaign asks "what does a prefix
//! hijack look like *while* a cable cascade is reconverging?" — the
//! component blueprints must name the same world (composition never
//! invents a third world), their scripts are merged into one timeline,
//! and the merge order is canonical: steps sort by onset hour, then by
//! the [`stable_hash`] of their serialized form, then by the serialized
//! form itself. The result is a total, content-determined order —
//! `compose([a, b])` and `compose([b, a])` are byte-identical, and no
//! ordering decision ever depends on map iteration or pointer identity.
//! That matters beyond aesthetics: realized event ids follow script
//! order, and probabilistic disaster draws are keyed by event id, so an
//! unstable merge would change which segments fail.

use world::events::stable_hash;

use crate::blueprint::ScenarioBlueprint;
use crate::script::ScriptStep;

/// Why a composition was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComposeError {
    /// No component blueprints were supplied.
    Empty,
    /// Two components name different worlds; composition requires one
    /// shared [`world::WorldConfig`] (the hashes are the components'
    /// content addresses).
    ConfigMismatch { left: u64, right: u64 },
}

impl std::fmt::Display for ComposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComposeError::Empty => write!(f, "composition needs at least one blueprint"),
            ComposeError::ConfigMismatch { left, right } => write!(
                f,
                "composed blueprints must share a world config \
                 (found {left:#018x} and {right:#018x})"
            ),
        }
    }
}

/// The onset hour a script step fires at (its primary sort key).
fn onset_hour(step: &ScriptStep) -> i64 {
    match step {
        ScriptStep::CutCables { at_hour, .. }
        | ScriptStep::Earthquake { at_hour, .. }
        | ScriptStep::Hurricane { at_hour, .. }
        | ScriptStep::Congestion { at_hour, .. }
        | ScriptStep::HijackPrefixes { at_hour, .. }
        | ScriptStep::LeakRoutes { at_hour, .. } => *at_hour,
    }
}

/// Merges several scripts into one canonically ordered timeline. The
/// order is a pure function of step *content*: onset hour first, then
/// the stable hash of the serialized step, then the serialization
/// itself as the final total-order tiebreaker.
pub fn merge_scripts(parts: &[&[ScriptStep]]) -> Vec<ScriptStep> {
    let mut keyed: Vec<(i64, u64, String, ScriptStep)> = parts
        .iter()
        .flat_map(|script| script.iter())
        .map(|step| {
            let json = serde_json::to_string(step).unwrap_or_default();
            let words: Vec<u64> = json.as_bytes().iter().map(|&b| b as u64).collect();
            (onset_hour(step), stable_hash(&words), json, step.clone())
        })
        .collect();
    keyed.sort_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));
    keyed.into_iter().map(|(_, _, _, step)| step).collect()
}

/// Composes several blueprints over one shared world into a single
/// blueprint whose script is the canonical merge of the components'
/// scripts and whose horizon is the longest component horizon.
pub fn compose(
    name: impl Into<String>,
    parts: &[&ScenarioBlueprint],
) -> Result<ScenarioBlueprint, ComposeError> {
    let first = parts.first().ok_or(ComposeError::Empty)?;
    for part in &parts[1..] {
        if part.config != first.config {
            return Err(ComposeError::ConfigMismatch {
                left: first.world_hash(),
                right: part.world_hash(),
            });
        }
    }
    let scripts: Vec<&[ScriptStep]> = parts.iter().map(|p| p.script.as_slice()).collect();
    Ok(ScenarioBlueprint {
        name: name.into(),
        config: first.config.clone(),
        horizon_days: parts.iter().map(|p| p.horizon_days).max().unwrap_or(2),
        script: merge_scripts(&scripts),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{Family, FamilyParams};

    fn parts() -> (ScenarioBlueprint, ScenarioBlueprint) {
        let params = FamilyParams::default();
        let cascade = Family::CableCutCascade.expand(&params).remove(0);
        let hijack = Family::TargetedPrefixHijack.expand(&params).remove(0);
        (cascade, hijack)
    }

    #[test]
    fn compose_is_order_insensitive() {
        let (a, b) = parts();
        let ab = compose("x", &[&a, &b]).unwrap();
        let ba = compose("x", &[&b, &a]).unwrap();
        assert_eq!(ab, ba);
        assert_eq!(ab.script.len(), a.script.len() + b.script.len());
    }

    #[test]
    fn compose_keeps_the_shared_config_and_longest_horizon() {
        let (a, b) = parts();
        let mut long = b.clone();
        long.horizon_days = a.horizon_days + 5;
        let c = compose("x", &[&a, &long]).unwrap();
        assert_eq!(c.config, a.config);
        assert_eq!(c.horizon_days, a.horizon_days + 5);
    }

    #[test]
    fn compose_rejects_mismatched_worlds() {
        let (a, _) = parts();
        let other_params = FamilyParams { seed: 7, ..FamilyParams::default() };
        let other = Family::CableCutCascade.expand(&other_params).remove(0);
        let err = compose("x", &[&a, &other]).unwrap_err();
        assert!(matches!(err, ComposeError::ConfigMismatch { .. }));
        assert_eq!(compose("x", &[]).unwrap_err(), ComposeError::Empty);
    }

    #[test]
    fn merged_script_is_onset_ordered() {
        let (a, b) = parts();
        let c = compose("x", &[&a, &b]).unwrap();
        let hours: Vec<i64> = c.script.iter().map(onset_hour).collect();
        let mut sorted = hours.clone();
        sorted.sort();
        assert_eq!(hours, sorted);
    }
}
