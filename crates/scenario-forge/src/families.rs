//! The scenario family library.
//!
//! A [`Family`] is a deterministic generator: [`Family::expand`] maps a
//! [`FamilyParams`] to a fleet of [`ScenarioBlueprint`]s with no hidden
//! state — every choice (which region, which corridor, which country)
//! is a pure function of the params via [`world::events::stable_hash`].
//! Equal params produce byte-identical fleets on every run and
//! platform; different seeds rotate every selection.
//!
//! Families deliberately span both scenario dimensions:
//!
//! * **event-script families** perturb the *timeline* of a shared world
//!   (blackouts, cascades, censorship, outages, repair windows,
//!   congestion storms) — their blueprints all name the same
//!   [`WorldConfig`], so a whole fleet pays for one world generation;
//! * **world-structure families** perturb the *world itself*
//!   (de-peering, eyeball growth, festoon buildout) — their blueprints
//!   name distinct configs, which is exactly what the content-addressed
//!   cache is for.

use net_model::Region;
use world::events::stable_hash;
use world::{AsTier, WorldConfig};

use crate::blueprint::ScenarioBlueprint;
use crate::script::{AsTarget, CableTarget, DisasterSite, ScriptStep};

/// The knobs every family expansion is a pure function of.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyParams {
    /// Master seed: drives the world seed and every family-level
    /// selection (regions, corridors, countries, cables).
    pub seed: u64,
    /// Severity in `[0, 1]` (clamped): footprint radii, failure
    /// probabilities, cut counts, congestion magnitudes scale with it.
    pub intensity: f64,
    /// How many scenarios the family expands into (at least 1).
    pub variants: usize,
    /// Scenario horizon length in days.
    pub horizon_days: i64,
}

impl Default for FamilyParams {
    fn default() -> Self {
        FamilyParams { seed: 42, intensity: 0.5, variants: 3, horizon_days: 10 }
    }
}

impl FamilyParams {
    /// The `draw`-th member of a Monte Carlo sweep rooted at these
    /// params: the seed is re-derived through [`stable_hash`] (so
    /// consecutive draws decorrelate fully) while every other knob is
    /// kept. `reseed(0) == self` — draw zero is the root itself, which
    /// keeps single-member ensembles byte-compatible with direct
    /// expansion.
    pub fn reseed(&self, draw: u64) -> FamilyParams {
        if draw == 0 {
            return self.clone();
        }
        FamilyParams {
            seed: stable_hash(&[0x0053_5745_4550_u64, self.seed, draw]), // "SWEEP"
            ..self.clone()
        }
    }

    /// Content identity of the params (floats by bit pattern) — the
    /// `params_hash` a campaign provenance record carries.
    pub fn content_hash(&self) -> u64 {
        stable_hash(&[
            self.seed,
            self.intensity.to_bits(),
            self.variants as u64,
            self.horizon_days as u64,
        ])
    }

    fn intensity(&self) -> f64 {
        self.intensity.clamp(0.0, 1.0)
    }

    fn variants(&self) -> usize {
        self.variants.max(1)
    }

    /// The base world config every event-script family shares.
    fn base_config(&self) -> WorldConfig {
        WorldConfig { seed: self.seed, ..WorldConfig::default() }
    }

    /// Deterministic selector: a pure function of the params' seed, the
    /// family tag and a salt.
    fn pick(&self, tag: u64, salt: u64) -> u64 {
        stable_hash(&[0x0046_4F52_4745_u64, self.seed, tag, salt]) // "FORGE"
    }
}

/// Curated cable systems every world contains (the repair-window family
/// rotates through them).
const REPAIRABLE_CABLES: [&str; 6] =
    ["SeaMeWe-5", "AAE-1", "SeaMeWe-4", "FALCON", "2Africa", "MAREA"];

/// Inter-region corridors with enough parallel systems to cascade over.
const CORRIDORS: [(Region, Region); 6] = [
    (Region::Europe, Region::Asia),
    (Region::Europe, Region::NorthAmerica),
    (Region::Asia, Region::NorthAmerica),
    (Region::Europe, Region::Africa),
    (Region::Asia, Region::Oceania),
    (Region::NorthAmerica, Region::SouthAmerica),
];

fn region_slug(r: Region) -> String {
    r.name().to_ascii_lowercase().replace(' ', "-")
}

/// A parameterized scenario family. `expand` is deterministic in
/// [`FamilyParams`]; see the module docs for the family taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// A disaster footprint over a region's hub takes out its landings.
    RegionalBlackout,
    /// Staggered cuts down a corridor's parallel systems (the 2022
    /// AAE-1/SeaMeWe-5 pattern, generalized).
    CableCutCascade,
    /// A country severs its own submarine connectivity; cross-region
    /// latency degrades as traffic detours.
    NationalCensorship,
    /// A structurally de-peered world: same geography, thinner
    /// transit-to-transit peering mesh.
    TransitDePeering,
    /// A short, total outage at a region's interconnection hub.
    IxpOutage,
    /// An eyeball-growth world (denser probes and access networks) with
    /// recurring peak-hour congestion surges.
    SeasonalEyeballGrowth,
    /// A cable fails and is repaired inside the horizon — the timeline
    /// contains both the failure and the recovery.
    CableRepairWindow,
    /// Rolling congestion surges across several corridors at once.
    CorridorCongestionStorm,
    /// An infrastructure-buildout world: extra regional festoon systems
    /// on the same curated backbone.
    FestoonBuildout,
    /// A transit AS in one region originates an access network's
    /// prefixes in another — the classic (partial) prefix hijack, live
    /// at `now` so forensic queries can observe the MOAS split.
    TargetedPrefixHijack,
    /// A mid-tier transit AS accidentally re-exports its full table to
    /// peers and providers for a bounded window (leaks get noticed and
    /// fixed), so the stream shows both the leak and the recovery churn.
    AccidentalTransitLeak,
}

impl Family {
    /// Every family, in canonical order.
    pub const ALL: [Family; 11] = [
        Family::RegionalBlackout,
        Family::CableCutCascade,
        Family::NationalCensorship,
        Family::TransitDePeering,
        Family::IxpOutage,
        Family::SeasonalEyeballGrowth,
        Family::CableRepairWindow,
        Family::CorridorCongestionStorm,
        Family::FestoonBuildout,
        Family::TargetedPrefixHijack,
        Family::AccidentalTransitLeak,
    ];

    /// Stable kebab-case identifier (the engine's key prefix).
    pub fn id(&self) -> &'static str {
        match self {
            Family::RegionalBlackout => "regional-blackout",
            Family::CableCutCascade => "cable-cut-cascade",
            Family::NationalCensorship => "national-censorship",
            Family::TransitDePeering => "transit-depeering",
            Family::IxpOutage => "ixp-outage",
            Family::SeasonalEyeballGrowth => "seasonal-eyeball-growth",
            Family::CableRepairWindow => "cable-repair-window",
            Family::CorridorCongestionStorm => "corridor-congestion-storm",
            Family::FestoonBuildout => "festoon-buildout",
            Family::TargetedPrefixHijack => "targeted-prefix-hijack",
            Family::AccidentalTransitLeak => "accidental-transit-leak",
        }
    }

    /// One-line description for catalogs and reports.
    pub fn description(&self) -> &'static str {
        match self {
            Family::RegionalBlackout => {
                "disaster footprint over a region hub fails its cable landings"
            }
            Family::CableCutCascade => "staggered multi-cable cuts down one corridor",
            Family::NationalCensorship => {
                "a country cuts its submarine landings; detour congestion follows"
            }
            Family::TransitDePeering => "a world with a thinner transit peering mesh",
            Family::IxpOutage => "a short total outage at a region's interconnection hub",
            Family::SeasonalEyeballGrowth => {
                "denser eyeballs and probes with recurring peak-hour congestion"
            }
            Family::CableRepairWindow => "a cable fails and is repaired inside the horizon",
            Family::CorridorCongestionStorm => "rolling congestion across several corridors",
            Family::FestoonBuildout => "extra regional festoon systems on the same backbone",
            Family::TargetedPrefixHijack => {
                "a transit AS originates an access network's prefixes (MOAS hijack)"
            }
            Family::AccidentalTransitLeak => {
                "a transit AS leaks its full table to peers and providers, then recovers"
            }
        }
    }

    /// Numeric tag mixed into every deterministic selection this family
    /// makes (so two families never make correlated picks).
    fn tag(&self) -> u64 {
        Family::ALL.iter().position(|f| f == self).expect("family in ALL") as u64 + 1
    }

    /// Expands the params into this family's scenario fleet.
    pub fn expand(&self, params: &FamilyParams) -> Vec<ScenarioBlueprint> {
        let n = params.variants();
        let intensity = params.intensity();
        let horizon = params.horizon_days.max(2);
        let mid_hour = 24 * horizon / 2;
        let tag = self.tag();
        let offset = params.pick(tag, 0) as usize;

        (0..n)
            .map(|i| {
                let mut config = params.base_config();
                let mut script = Vec::new();
                let name;
                match self {
                    Family::RegionalBlackout => {
                        let region = Region::ALL[(offset + i) % Region::ALL.len()];
                        name = format!("v{i}-{}", region_slug(region));
                        script.push(ScriptStep::Earthquake {
                            site: DisasterSite::RegionHub(region),
                            radius_km: 400.0 + 800.0 * intensity,
                            failure_prob: 0.55 + 0.45 * intensity,
                            at_hour: mid_hour,
                            until_hour: None,
                        });
                    }
                    Family::CableCutCascade => {
                        let (a, b) = CORRIDORS[(offset + i) % CORRIDORS.len()];
                        name = format!("v{i}-{}-{}", region_slug(a), region_slug(b));
                        let cuts = 2 + (intensity * 3.0).trunc() as usize;
                        // Stagger the cuts across the middle third of the
                        // horizon so the whole cascade is live at `now`
                        // even on short horizons.
                        let start = 24 * horizon / 3;
                        let step = (24 * horizon / (3 * cuts as i64)).max(2);
                        for rank in 0..cuts {
                            script.push(ScriptStep::CutCables {
                                target: CableTarget::CorridorRank { a, b, rank },
                                at_hour: start + (rank as i64) * step,
                                until_hour: None,
                            });
                        }
                    }
                    Family::NationalCensorship => {
                        let coastal: Vec<net_model::country::CountryInfo> =
                            net_model::country::all_countries()
                                .into_iter()
                                .filter(|c| c.coastal)
                                .collect();
                        let info = coastal[(offset + i) % coastal.len()];
                        name = format!("v{i}-{}", info.code.code().to_ascii_lowercase());
                        script.push(ScriptStep::CutCables {
                            target: CableTarget::LandingIn(info.code),
                            at_hour: mid_hour,
                            until_hour: None,
                        });
                        let far = if info.region == Region::Europe {
                            Region::Asia
                        } else {
                            Region::Europe
                        };
                        script.push(ScriptStep::Congestion {
                            from: info.region,
                            to: far,
                            extra_ms: 20.0 + 50.0 * intensity,
                            at_hour: mid_hour,
                            until_hour: None,
                        });
                    }
                    Family::TransitDePeering => {
                        let step = intensity * (i + 1) as f64 / n as f64;
                        config.transit_peering_prob = 0.5 * (1.0 - 0.9 * step);
                        name = format!("v{i}-depeering");
                    }
                    Family::IxpOutage => {
                        let region = Region::ALL[(offset + i) % Region::ALL.len()];
                        name = format!("v{i}-{}", region_slug(region));
                        script.push(ScriptStep::Earthquake {
                            site: DisasterSite::RegionHub(region),
                            radius_km: 150.0,
                            failure_prob: 1.0,
                            at_hour: mid_hour,
                            until_hour: Some(mid_hour + 48),
                        });
                    }
                    Family::SeasonalEyeballGrowth => {
                        config.probe_scale = 1.0 + intensity * (i + 1) as f64;
                        config.access_per_country = 2 + (intensity * 2.0).round() as usize;
                        name = format!("v{i}-growth");
                        // One peak-hour surge per evening, capped by the
                        // horizon so every surge falls before `now`.
                        for day in 0..(horizon - 1).min(3) {
                            script.push(ScriptStep::Congestion {
                                from: Region::Europe,
                                to: Region::NorthAmerica,
                                extra_ms: 8.0 + 25.0 * intensity,
                                at_hour: 18 + 24 * day,
                                until_hour: Some(24 + 24 * day),
                            });
                        }
                    }
                    Family::CableRepairWindow => {
                        let cable =
                            REPAIRABLE_CABLES[(offset + i) % REPAIRABLE_CABLES.len()];
                        name = format!(
                            "v{i}-{}",
                            cable.to_ascii_lowercase().replace(' ', "-")
                        );
                        // Fail at one fifth of the horizon and finish the
                        // repair by four fifths, so both the outage and
                        // the recovery are observable before `now`.
                        let cut_at = (24 * horizon / 5).max(12);
                        let latest_end = 24 * horizon * 4 / 5;
                        let repair_hours = (24 * (2 + (6.0 * (1.0 - intensity)).trunc() as i64))
                            .min(latest_end - cut_at)
                            .max(6);
                        script.push(ScriptStep::CutCables {
                            target: CableTarget::Named(cable.to_string()),
                            at_hour: cut_at,
                            until_hour: Some(cut_at + repair_hours),
                        });
                    }
                    Family::CorridorCongestionStorm => {
                        name = format!("v{i}-storm");
                        let surges = 2 + (intensity * 4.0).trunc() as usize;
                        // Roll the surges across the middle half of the
                        // horizon (each lasts up to 8h, clamped to fit).
                        let start = 24 * horizon / 4;
                        let step = (24 * horizon / (2 * surges as i64)).max(2);
                        for j in 0..surges {
                            let (a, b) = CORRIDORS[(offset + i + j) % CORRIDORS.len()];
                            let at_hour = start + (j as i64) * step;
                            script.push(ScriptStep::Congestion {
                                from: a,
                                to: b,
                                extra_ms: 15.0 + 40.0 * intensity,
                                at_hour,
                                until_hour: Some(at_hour + step.min(8)),
                            });
                        }
                    }
                    Family::FestoonBuildout => {
                        config.festoon_cables = 30 + 15 * (i + 1);
                        name = format!("v{i}-buildout");
                    }
                    Family::TargetedPrefixHijack => {
                        // Victim and hijacker rotate through distinct
                        // regions; intensity widens the hijack from one
                        // prefix to the victim's whole announcement set.
                        let vr = Region::ALL[(offset + i) % Region::ALL.len()];
                        // The next region along: always distinct from vr.
                        let hr = Region::ALL[(offset + i + 1) % Region::ALL.len()];
                        name = format!("v{i}-{}-vs-{}", region_slug(hr), region_slug(vr));
                        script.push(ScriptStep::HijackPrefixes {
                            hijacker: AsTarget::TierRank {
                                region: hr,
                                tier: AsTier::Transit,
                                rank: i % 2,
                            },
                            victim: AsTarget::TierRank {
                                region: vr,
                                tier: AsTier::Access,
                                rank: i % 3,
                            },
                            prefixes: 1 + (intensity * 3.0).trunc() as usize,
                            at_hour: mid_hour,
                            until_hour: None,
                        });
                    }
                    Family::AccidentalTransitLeak => {
                        let region = Region::ALL[(offset + i) % Region::ALL.len()];
                        name = format!("v{i}-{}", region_slug(region));
                        // Leaks get noticed: the window closes within a
                        // day, well before `now`, so both the onset and
                        // the withdrawal churn are observable.
                        let duration = 6 + (18.0 * intensity).trunc() as i64;
                        script.push(ScriptStep::LeakRoutes {
                            leaker: AsTarget::TierRank {
                                region,
                                tier: AsTier::Transit,
                                rank: i % 2,
                            },
                            at_hour: mid_hour,
                            until_hour: Some(mid_hour + duration),
                        });
                    }
                }
                ScenarioBlueprint {
                    name,
                    config,
                    horizon_days: horizon,
                    script,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn every_family_expands_to_the_requested_fleet() {
        let params = FamilyParams::default();
        for family in Family::ALL {
            let fleet = family.expand(&params);
            assert_eq!(fleet.len(), params.variants, "{}", family.id());
            let names: BTreeSet<&str> =
                fleet.iter().map(|b| b.name.as_str()).collect();
            assert_eq!(names.len(), fleet.len(), "{} names unique", family.id());
        }
    }

    #[test]
    fn family_ids_are_unique_and_kebab_case() {
        let ids: BTreeSet<&str> = Family::ALL.iter().map(|f| f.id()).collect();
        assert_eq!(ids.len(), Family::ALL.len());
        for id in ids {
            assert!(id.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }

    #[test]
    fn event_script_families_share_one_config() {
        let params = FamilyParams::default();
        let shared: BTreeSet<u64> = [
            Family::RegionalBlackout,
            Family::CableCutCascade,
            Family::NationalCensorship,
            Family::IxpOutage,
            Family::CableRepairWindow,
            Family::CorridorCongestionStorm,
            Family::TargetedPrefixHijack,
            Family::AccidentalTransitLeak,
        ]
        .iter()
        .flat_map(|f| f.expand(&params))
        .map(|b| b.world_hash())
        .collect();
        assert_eq!(shared.len(), 1, "one world config across eight families");
    }

    #[test]
    fn control_plane_families_script_the_new_steps() {
        let params = FamilyParams::default();
        for bp in Family::TargetedPrefixHijack.expand(&params) {
            assert_eq!(bp.script.len(), 1, "{}", bp.name);
            assert!(
                matches!(bp.script[0], ScriptStep::HijackPrefixes { until_hour: None, .. }),
                "hijacks persist through the horizon"
            );
        }
        for bp in Family::AccidentalTransitLeak.expand(&params) {
            assert_eq!(bp.script.len(), 1, "{}", bp.name);
            let ScriptStep::LeakRoutes { at_hour, until_hour: Some(until), .. } = bp.script[0]
            else {
                panic!("leaks are bounded");
            };
            assert!(until > at_hour);
            assert!(until <= 24 * params.horizon_days, "recovery inside the horizon");
        }
    }

    #[test]
    fn world_structure_families_vary_the_config() {
        let params = FamilyParams::default();
        for family in
            [Family::TransitDePeering, Family::SeasonalEyeballGrowth, Family::FestoonBuildout]
        {
            let hashes: BTreeSet<u64> =
                family.expand(&params).iter().map(|b| b.world_hash()).collect();
            assert_eq!(hashes.len(), params.variants, "{}", family.id());
        }
    }

    #[test]
    fn expansion_is_deterministic_and_seed_sensitive() {
        let params = FamilyParams::default();
        for family in Family::ALL {
            assert_eq!(family.expand(&params), family.expand(&params));
        }
        let reseeded = FamilyParams { seed: 7, ..FamilyParams::default() };
        let a: Vec<_> = Family::RegionalBlackout.expand(&params);
        let b: Vec<_> = Family::RegionalBlackout.expand(&reseeded);
        assert_ne!(a, b, "seed rotates the selections");
    }

    #[test]
    fn scripted_events_fit_inside_the_horizon() {
        // `now` sits at the end of the horizon, so a step that fires at
        // or after `24 * horizon_days` would be invisible to every
        // query. Check the script hours directly (no world generation
        // needed) across short, minimal and default horizons.
        for horizon_days in [2i64, 3, 10] {
            let params = FamilyParams {
                intensity: 1.0, // widest scripts: most cuts, most surges
                horizon_days,
                ..FamilyParams::default()
            };
            let end_hour = 24 * horizon_days;
            for family in Family::ALL {
                for bp in family.expand(&params) {
                    for step in &bp.script {
                        let (at, until) = match step {
                            ScriptStep::CutCables { at_hour, until_hour, .. }
                            | ScriptStep::Earthquake { at_hour, until_hour, .. }
                            | ScriptStep::Hurricane { at_hour, until_hour, .. }
                            | ScriptStep::Congestion { at_hour, until_hour, .. }
                            | ScriptStep::HijackPrefixes { at_hour, until_hour, .. }
                            | ScriptStep::LeakRoutes { at_hour, until_hour, .. } => {
                                (*at_hour, *until_hour)
                            }
                        };
                        assert!(
                            (0..end_hour).contains(&at),
                            "{}/{}: event at hour {at} outside horizon {horizon_days}d",
                            family.id(),
                            bp.name
                        );
                        if let Some(until) = until {
                            assert!(until > at, "{}/{}: empty window", family.id(), bp.name);
                        }
                    }
                    // The repair family's point is recovery *inside* the
                    // horizon: its bounded windows must close before now.
                    if family == Family::CableRepairWindow {
                        for step in &bp.script {
                            if let ScriptStep::CutCables { until_hour: Some(u), .. } = step {
                                assert!(*u < end_hour, "repair ends after now");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn reseed_sweeps_decorrelate_but_draw_zero_is_identity() {
        let root = FamilyParams::default();
        assert_eq!(root.reseed(0), root);
        let seeds: BTreeSet<u64> = (0..32).map(|d| root.reseed(d).seed).collect();
        assert_eq!(seeds.len(), 32, "32 draws give 32 distinct seeds");
        for d in 1..4 {
            let p = root.reseed(d);
            assert_eq!(p.intensity, root.intensity);
            assert_eq!(p.variants, root.variants);
            assert_eq!(p.horizon_days, root.horizon_days);
            assert_eq!(p, root.reseed(d), "reseed is deterministic");
        }
    }

    #[test]
    fn params_hash_tracks_every_knob() {
        let root = FamilyParams::default();
        assert_eq!(root.content_hash(), root.clone().content_hash());
        let variations = [
            FamilyParams { seed: 7, ..root.clone() },
            FamilyParams { intensity: 0.9, ..root.clone() },
            FamilyParams { variants: 5, ..root.clone() },
            FamilyParams { horizon_days: 12, ..root.clone() },
        ];
        let hashes: BTreeSet<u64> = std::iter::once(root.content_hash())
            .chain(variations.iter().map(|p| p.content_hash()))
            .collect();
        assert_eq!(hashes.len(), 5, "every knob moves the hash");
    }

    #[test]
    fn intensity_is_clamped() {
        let wild = FamilyParams { intensity: 42.0, ..FamilyParams::default() };
        let calm = FamilyParams { intensity: 1.0, ..FamilyParams::default() };
        assert_eq!(
            Family::RegionalBlackout.expand(&wild),
            Family::RegionalBlackout.expand(&calm)
        );
    }
}
