//! Event scripts: world-independent descriptions of what goes wrong.
//!
//! A family cannot name a [`world::Event`] directly — event kinds carry
//! dense ids (`CableId`) that only exist once a world is generated, and
//! which world that is depends on the blueprint's config. A
//! [`ScriptStep`] therefore names its targets *structurally* ("the
//! cables landing in Egypt", "the top-2 Europe–Asia corridor systems",
//! "the Asian region hub") and resolves against a concrete [`World`]
//! deterministically: same world, same script, same events — always.

use net_model::{Asn, CableId, Country, GeoPoint, Region, SimDuration, SimTime};
use net_model::geo::GeoCircle;
use serde::{Deserialize, Serialize};
use world::{AsTier, EventKind, World};

/// Which cables a cut targets. Resolution is total (unknown names or
/// out-of-range ranks resolve to no cables) and deterministic (results
/// in ascending [`CableId`] order, corridor ranks by descending
/// capacity with id as tie-break).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CableTarget {
    /// A cable by its (case-insensitive) name, e.g. `"SeaMeWe-5"`.
    Named(String),
    /// Every cable with at least one landing in the country.
    LandingIn(Country),
    /// The `rank`-th (0-based) cable on the corridor between two
    /// regions, ranked by descending capacity then ascending id.
    CorridorRank { a: Region, b: Region, rank: usize },
}

impl CableTarget {
    /// The cables this target names in `world`, ascending id.
    pub fn resolve(&self, world: &World) -> Vec<CableId> {
        match self {
            CableTarget::Named(name) => {
                world.cable_by_name(name).map(|c| c.id).into_iter().collect()
            }
            CableTarget::LandingIn(country) => world
                .cables
                .iter()
                .filter(|c| {
                    c.landings.iter().any(|&city| world.city(city).country == *country)
                })
                .map(|c| c.id)
                .collect(),
            CableTarget::CorridorRank { a, b, rank } => {
                let mut corridor: Vec<&world::Cable> = world
                    .cables
                    .iter()
                    .filter(|c| {
                        let touches = |r: Region| {
                            c.landings.iter().any(|&city| world.city(city).region == r)
                        };
                        touches(*a) && touches(*b)
                    })
                    .collect();
                corridor.sort_by(|x, y| {
                    y.capacity_tbps
                        .total_cmp(&x.capacity_tbps)
                        .then(x.id.cmp(&y.id))
                });
                corridor.get(*rank).map(|c| c.id).into_iter().collect()
            }
        }
    }
}

/// Which AS a control-plane incident names. Resolution is total
/// (regions/tiers with too few ASes resolve to nothing) and
/// deterministic: ASes of the tier registered in the region, ranked by
/// **descending announced-prefix count** (the juicier target / the
/// bigger leaker) with ascending ASN as the tie-break.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AsTarget {
    /// The `rank`-th (0-based) AS of the tier in the region, by the
    /// ranking above.
    TierRank { region: Region, tier: AsTier, rank: usize },
}

impl AsTarget {
    /// The AS this target names in `world`, if any.
    pub fn resolve(&self, world: &World) -> Option<Asn> {
        match self {
            AsTarget::TierRank { region, tier, rank } => {
                let mut candidates: Vec<(usize, Asn)> = world
                    .ases
                    .iter()
                    .filter(|a| a.region == *region && a.tier == *tier)
                    .map(|a| {
                        let prefixes =
                            world.prefixes.iter().filter(|p| p.origin == a.asn).count();
                        (prefixes, a.asn)
                    })
                    .collect();
                candidates.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
                candidates.get(*rank).map(|(_, asn)| *asn)
            }
        }
    }
}

/// Where a disaster footprint is centred.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DisasterSite {
    /// An explicit coordinate.
    Fixed(GeoPoint),
    /// The region's hub city (the world generator's interconnection
    /// anchor for that region).
    RegionHub(Region),
}

impl DisasterSite {
    /// The concrete centre in `world`.
    pub fn resolve(&self, world: &World) -> GeoPoint {
        match self {
            DisasterSite::Fixed(p) => *p,
            DisasterSite::RegionHub(region) => {
                let hub = world::cities::region_hub(&world.cities, *region);
                world.city(hub).location
            }
        }
    }
}

/// One scripted incident. Times are hour offsets from the scenario
/// epoch; `until_hour: None` persists through the horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScriptStep {
    /// Cut every cable the target resolves to.
    CutCables { target: CableTarget, at_hour: i64, until_hour: Option<i64> },
    /// An earthquake footprint; exposed assets fail with `failure_prob`.
    Earthquake {
        site: DisasterSite,
        radius_km: f64,
        failure_prob: f64,
        at_hour: i64,
        until_hour: Option<i64>,
    },
    /// A hurricane footprint (same mechanics, different label).
    Hurricane {
        site: DisasterSite,
        radius_km: f64,
        failure_prob: f64,
        at_hour: i64,
        until_hour: Option<i64>,
    },
    /// Extra one-way latency between two regions.
    Congestion {
        from: Region,
        to: Region,
        extra_ms: f64,
        at_hour: i64,
        until_hour: Option<i64>,
    },
    /// The hijacker originates up to `prefixes` of the victim's announced
    /// prefixes, in ascending prefix order. Resolves to one
    /// [`EventKind::PrefixHijack`] per hijacked prefix; nothing if
    /// `prefixes` is zero, either AS target resolves to nothing, the
    /// targets coincide, or the victim announces no prefix.
    HijackPrefixes {
        hijacker: AsTarget,
        victim: AsTarget,
        prefixes: usize,
        at_hour: i64,
        until_hour: Option<i64>,
    },
    /// The leaker re-exports its best routes to every neighbour for the
    /// window — the accidental "full table to my peers" leak.
    LeakRoutes { leaker: AsTarget, at_hour: i64, until_hour: Option<i64> },
}

/// A resolved incident, ready to push onto a scenario timeline.
pub type ResolvedEvent = (EventKind, SimTime, Option<SimTime>);

fn at(hour: i64) -> SimTime {
    SimTime::EPOCH + SimDuration::hours(hour)
}

impl ScriptStep {
    /// Expands the step into concrete timeline events for `world`.
    pub fn resolve(&self, world: &World) -> Vec<ResolvedEvent> {
        match self {
            ScriptStep::CutCables { target, at_hour, until_hour } => target
                .resolve(world)
                .into_iter()
                .map(|cable| {
                    (EventKind::CableCut { cable }, at(*at_hour), until_hour.map(at))
                })
                .collect(),
            ScriptStep::Earthquake { site, radius_km, failure_prob, at_hour, until_hour } => {
                vec![(
                    EventKind::Earthquake {
                        footprint: GeoCircle::new(site.resolve(world), *radius_km),
                        failure_prob: *failure_prob,
                    },
                    at(*at_hour),
                    until_hour.map(at),
                )]
            }
            ScriptStep::Hurricane { site, radius_km, failure_prob, at_hour, until_hour } => {
                vec![(
                    EventKind::Hurricane {
                        footprint: GeoCircle::new(site.resolve(world), *radius_km),
                        failure_prob: *failure_prob,
                    },
                    at(*at_hour),
                    until_hour.map(at),
                )]
            }
            ScriptStep::Congestion { from, to, extra_ms, at_hour, until_hour } => {
                vec![(
                    EventKind::CongestionSurge { from: *from, to: *to, extra_ms: *extra_ms },
                    at(*at_hour),
                    until_hour.map(at),
                )]
            }
            ScriptStep::HijackPrefixes { hijacker, victim, prefixes, at_hour, until_hour } => {
                let (Some(hijacker), Some(victim)) =
                    (hijacker.resolve(world), victim.resolve(world))
                else {
                    return Vec::new();
                };
                if hijacker == victim {
                    return Vec::new();
                }
                let mut victim_nets: Vec<_> = world
                    .prefixes
                    .iter()
                    .filter(|p| p.origin == victim)
                    .map(|p| p.net)
                    .collect();
                victim_nets.sort();
                victim_nets
                    .into_iter()
                    .take(*prefixes)
                    .map(|net| {
                        (
                            EventKind::PrefixHijack { origin: hijacker, victim_prefix: net },
                            at(*at_hour),
                            until_hour.map(at),
                        )
                    })
                    .collect()
            }
            ScriptStep::LeakRoutes { leaker, at_hour, until_hour } => leaker
                .resolve(world)
                .map(|leaker| {
                    (EventKind::RouteLeak { leaker }, at(*at_hour), until_hour.map(at))
                })
                .into_iter()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use world::{generate, WorldConfig};

    fn test_world() -> World {
        generate(&WorldConfig { seed: 7, ..WorldConfig::default() })
    }

    #[test]
    fn named_target_matches_cable_by_name() {
        let w = test_world();
        let ids = CableTarget::Named("SeaMeWe-5".into()).resolve(&w);
        assert_eq!(ids, vec![w.cable_by_name("SeaMeWe-5").unwrap().id]);
        assert!(CableTarget::Named("No Such System".into()).resolve(&w).is_empty());
    }

    #[test]
    fn landing_target_matches_scan() {
        let w = test_world();
        let eg = Country(*b"EG");
        let ids = CableTarget::LandingIn(eg).resolve(&w);
        assert!(!ids.is_empty(), "Egypt is a landing hub");
        for id in &ids {
            assert!(w
                .cable(*id)
                .landings
                .iter()
                .any(|&c| w.city(c).country == eg));
        }
        assert!(ids.windows(2).all(|p| p[0] < p[1]), "ascending ids");
    }

    #[test]
    fn corridor_ranks_are_distinct_and_capacity_ordered() {
        let w = test_world();
        let rank = |r| {
            CableTarget::CorridorRank { a: Region::Europe, b: Region::Asia, rank: r }
                .resolve(&w)
        };
        let (r0, r1) = (rank(0), rank(1));
        assert_eq!(r0.len(), 1);
        assert_eq!(r1.len(), 1);
        assert_ne!(r0[0], r1[0]);
        assert!(w.cable(r0[0]).capacity_tbps >= w.cable(r1[0]).capacity_tbps);
        assert!(rank(10_000).is_empty(), "out-of-range rank resolves to nothing");
    }

    #[test]
    fn as_target_ranks_by_prefix_count_and_is_total() {
        let w = test_world();
        let rank = |r| {
            AsTarget::TierRank { region: Region::Asia, tier: world::AsTier::Transit, rank: r }
                .resolve(&w)
        };
        let (r0, r1) = (rank(0), rank(1));
        let (a0, a1) = (r0.expect("Asia has transit ASes"), r1.expect("more than one"));
        assert_ne!(a0, a1);
        let prefixes =
            |asn| w.prefixes.iter().filter(|p| p.origin == asn).count();
        assert!(prefixes(a0) >= prefixes(a1), "rank 0 announces at least as many prefixes");
        let info = w.as_info(a0).unwrap();
        assert_eq!(info.region, Region::Asia);
        assert_eq!(info.tier, world::AsTier::Transit);
        assert_eq!(rank(10_000), None, "out-of-range rank resolves to nothing");
    }

    #[test]
    fn hijack_and_leak_steps_resolve_to_control_plane_events() {
        let w = test_world();
        let hijack = ScriptStep::HijackPrefixes {
            hijacker: AsTarget::TierRank {
                region: Region::Europe,
                tier: world::AsTier::Transit,
                rank: 0,
            },
            victim: AsTarget::TierRank {
                region: Region::Asia,
                tier: world::AsTier::Access,
                rank: 0,
            },
            prefixes: 2,
            at_hour: 48,
            until_hour: None,
        };
        let events = hijack.resolve(&w);
        assert!(!events.is_empty() && events.len() <= 2, "got {}", events.len());
        for (kind, at, until) in &events {
            let EventKind::PrefixHijack { origin, victim_prefix } = kind else {
                panic!("expected a hijack, got {kind:?}");
            };
            let legit =
                w.prefixes.iter().find(|p| p.net == *victim_prefix).expect("real prefix");
            assert_ne!(legit.origin, *origin, "hijacker must not be the owner");
            assert_eq!(*at, SimTime::EPOCH + SimDuration::hours(48));
            assert_eq!(*until, None);
        }

        let leak = ScriptStep::LeakRoutes {
            leaker: AsTarget::TierRank {
                region: Region::Europe,
                tier: world::AsTier::Transit,
                rank: 1,
            },
            at_hour: 24,
            until_hour: Some(36),
        };
        let events = leak.resolve(&w);
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].0, EventKind::RouteLeak { .. }));

        // Unresolvable targets resolve to no events, not a panic.
        let nothing = ScriptStep::LeakRoutes {
            leaker: AsTarget::TierRank {
                region: Region::Oceania,
                tier: world::AsTier::Tier1,
                rank: 50,
            },
            at_hour: 24,
            until_hour: None,
        };
        assert!(nothing.resolve(&w).is_empty());
    }

    #[test]
    fn steps_resolve_to_timed_events() {
        let w = test_world();
        let step = ScriptStep::CutCables {
            target: CableTarget::Named("AAE-1".into()),
            at_hour: 48,
            until_hour: Some(96),
        };
        let events = step.resolve(&w);
        assert_eq!(events.len(), 1);
        let (kind, at, until) = &events[0];
        assert!(matches!(kind, EventKind::CableCut { .. }));
        assert_eq!(*at, SimTime::EPOCH + SimDuration::hours(48));
        assert_eq!(*until, Some(SimTime::EPOCH + SimDuration::hours(96)));

        let quake = ScriptStep::Earthquake {
            site: DisasterSite::RegionHub(Region::Asia),
            radius_km: 300.0,
            failure_prob: 1.0,
            at_hour: 24,
            until_hour: None,
        };
        assert_eq!(quake.resolve(&w).len(), 1);
    }
}
