//! Forge determinism and cache-sharing, pinned.
//!
//! * Equal [`FamilyParams`] must expand to **byte-identical** blueprints
//!   (compared through their serialized specs) and realize
//!   byte-identical worlds and event scripts across independent runs.
//! * Distinct seeds must produce distinct world content hashes (and
//!   genuinely different worlds).
//! * The [`WorldCache`] must hand every concurrent requester of one
//!   config the *same* `Arc<World>` — one generation — at 1, 2 and 8
//!   worker threads.

use std::sync::Arc;

use proptest::prelude::*;

use scenario_forge::{Family, FamilyParams, WorldCache};
use world::{generate, World, WorldConfig};

/// A stable structural fingerprint of a generated world: every layer's
/// identifying fields folded through `world::events::stable_hash`. Two
/// worlds with equal fingerprints are byte-identical for every field a
/// scenario can observe.
fn world_fingerprint(w: &World) -> u64 {
    let mut parts: Vec<u64> = vec![w.seed];
    parts.push(w.cities.len() as u64);
    for cable in &w.cables {
        parts.push(cable.id.0 as u64);
        parts.push(cable.name.len() as u64);
        parts.extend(cable.name.bytes().map(u64::from));
        parts.extend(cable.landings.iter().map(|c| c.0 as u64));
        for seg in &cable.segments {
            parts.push(seg.a.0 as u64);
            parts.push(seg.b.0 as u64);
            parts.push(seg.length_km.to_bits());
        }
    }
    for a in &w.ases {
        parts.push(a.asn.0 as u64);
        parts.extend(a.presence.iter().map(|c| c.0 as u64));
    }
    for r in &w.relationships {
        parts.push(r.a.0 as u64);
        parts.push(r.b.0 as u64);
    }
    for l in &w.links {
        parts.push(l.a.asn.0 as u64);
        parts.push(l.b.asn.0 as u64);
        parts.push(l.a.city.0 as u64);
        parts.push(l.b.city.0 as u64);
        parts.push(l.latency_ms.to_bits());
    }
    for p in &w.probes {
        parts.push(p.asn.0 as u64);
        parts.push(p.city.0 as u64);
        parts.push(p.addr.0 as u64);
    }
    world::events::stable_hash(&parts)
}

fn params_strategy() -> impl Strategy<Value = FamilyParams> {
    (any::<u64>(), 0u8..=10, 1usize..=3, 3i64..=14).prop_map(
        |(seed, intensity, variants, horizon_days)| FamilyParams {
            seed,
            intensity: f64::from(intensity) / 10.0,
            variants,
            horizon_days,
        },
    )
}

fn family_strategy() -> impl Strategy<Value = Family> {
    (0usize..Family::ALL.len()).prop_map(|i| Family::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Expansion is a pure function of the params: two independent
    /// expansions serialize to the same bytes, and re-seeding changes
    /// the world addresses.
    #[test]
    fn equal_params_expand_byte_identically(
        params in params_strategy(),
        family in family_strategy(),
    ) {
        let a = family.expand(&params);
        let b = family.expand(&params);
        prop_assert_eq!(&a, &b);
        let bytes = |fleet: &[scenario_forge::ScenarioBlueprint]| -> String {
            fleet.iter()
                .map(|bp| serde_json::to_string(&bp.spec()).expect("spec serializes"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        prop_assert_eq!(bytes(&a), bytes(&b));

        // Distinct seeds produce distinct world content hashes for every
        // blueprint in the fleet.
        let reseeded = FamilyParams { seed: params.seed.wrapping_add(1), ..params.clone() };
        let c = family.expand(&reseeded);
        for (x, y) in a.iter().zip(&c) {
            prop_assert_ne!(x.world_hash(), y.world_hash());
        }
    }
}

proptest! {
    // World generation is hundreds of milliseconds, so the end-to-end
    // realization property runs fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Realizing the same blueprint twice — through two *independent*
    /// generations, no cache — produces byte-identical worlds and event
    /// scripts.
    #[test]
    fn equal_params_realize_byte_identical_scenarios(
        params in params_strategy(),
        family in family_strategy(),
    ) {
        let fleet = family.expand(&params);
        let blueprint = &fleet[0];
        let s1 = blueprint.realize(Arc::new(generate(&blueprint.config)));
        let s2 = blueprint.realize(Arc::new(generate(&blueprint.config)));
        prop_assert_eq!(world_fingerprint(&s1.world), world_fingerprint(&s2.world));
        prop_assert_eq!(&s1.events, &s2.events);
        prop_assert_eq!(
            serde_json::to_string(&s1.spec()).expect("spec serializes"),
            serde_json::to_string(&s2.spec()).expect("spec serializes")
        );
        prop_assert_eq!(s1.now, s2.now);
        prop_assert_eq!(s1.horizon, s2.horizon);
    }
}

#[test]
fn distinct_seeds_generate_distinct_worlds() {
    let a = generate(&WorldConfig { seed: 1, ..WorldConfig::default() });
    let b = generate(&WorldConfig { seed: 2, ..WorldConfig::default() });
    assert_ne!(world_fingerprint(&a), world_fingerprint(&b));
}

#[test]
fn cache_hands_one_arc_to_every_thread() {
    for threads in [1usize, 2, 8] {
        let cache = WorldCache::new();
        let config = WorldConfig { seed: 1000 + threads as u64, ..WorldConfig::default() };
        let worlds: Vec<Arc<World>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| scope.spawn(|| cache.get_or_generate(&config)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });
        for w in &worlds {
            assert!(Arc::ptr_eq(w, &worlds[0]), "{threads} threads");
        }
        assert_eq!(cache.generations(), 1, "{threads} threads, one generation");
        assert_eq!(cache.len(), 1);
    }
}

#[test]
fn control_plane_families_realize_into_control_plane_events() {
    let cache = WorldCache::new();
    let params = FamilyParams::default();

    // Expansion is byte-identical across runs (the two new families ride
    // the same determinism contract as the original nine).
    for family in [Family::TargetedPrefixHijack, Family::AccidentalTransitLeak] {
        let a = family.expand(&params);
        let b = family.expand(&params);
        assert_eq!(a, b);
        let bytes = |fleet: &[scenario_forge::ScenarioBlueprint]| -> String {
            fleet
                .iter()
                .map(|bp| serde_json::to_string(&bp.spec()).expect("spec serializes"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(bytes(&a), bytes(&b));
    }

    // Realized hijack scenarios carry PrefixHijack events that are live
    // at `now` and name prefixes the victim actually announces.
    let hijack_fleet = Family::TargetedPrefixHijack.expand(&params);
    let mut hijack_events = 0usize;
    for bp in &hijack_fleet {
        let scenario = bp.forge(&cache);
        for e in &scenario.events {
            let world::EventKind::PrefixHijack { origin, victim_prefix } = &e.kind else {
                panic!("{}: unexpected event {:?}", bp.name, e.kind);
            };
            hijack_events += 1;
            let legit = scenario
                .world
                .prefixes
                .iter()
                .find(|p| p.net == *victim_prefix)
                .expect("hijacked prefix exists in the world");
            assert_ne!(legit.origin, *origin);
            assert!(e.active_at(scenario.now), "hijack live at now");
        }
        assert!(!scenario.control_plane_at(scenario.now).is_quiet());
    }
    assert!(hijack_events > 0, "the fleet must hijack something");

    // Realized leak scenarios carry bounded RouteLeak events whose
    // windows close inside the horizon.
    for bp in Family::AccidentalTransitLeak.expand(&params) {
        let scenario = bp.forge(&cache);
        assert!(!scenario.events.is_empty(), "{}: leaker must resolve", bp.name);
        for e in &scenario.events {
            assert!(matches!(e.kind, world::EventKind::RouteLeak { .. }));
            let until = e.until.expect("leaks are bounded");
            assert!(scenario.horizon.contains(e.at));
            assert!(until <= scenario.horizon.end);
        }
    }

    // Both families script over the shared base config: one generation.
    assert_eq!(cache.generations(), 1);
}

#[test]
fn full_forge_fleet_dedups_worlds_through_the_cache() {
    let cache = WorldCache::new();
    let params = FamilyParams::default();
    let mut scenarios = Vec::new();
    for family in Family::ALL {
        for blueprint in family.expand(&params) {
            scenarios.push((format!("{}/{}", family.id(), blueprint.name), blueprint.forge(&cache)));
        }
    }
    assert_eq!(scenarios.len(), Family::ALL.len() * params.variants);
    // Generations equals the number of *distinct* configs, not scenarios.
    assert_eq!(cache.generations(), cache.len());
    assert!(
        cache.generations() < scenarios.len(),
        "{} scenarios must share {} worlds",
        scenarios.len(),
        cache.generations()
    );
    // The six event-script families share the base config's Arc.
    let base = &scenarios[0].1;
    let sharing = scenarios.iter().filter(|(_, s)| Arc::ptr_eq(&s.world, &base.world)).count();
    assert!(sharing > params.variants, "cross-family world sharing");
}
